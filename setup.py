"""Legacy setup shim.

This environment has no ``wheel`` package, so PEP-660 editable installs
fail; keeping a ``setup.py`` lets ``pip install -e .`` fall back to
``setup.py develop``.  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
