"""LevelDB benchmark workloads as traceable Applications (Figure 7)."""

from repro.leveldb.bench import fillsync, populate, readrandom
from repro.leveldb.db import DBOptions, MiniLevelDB
from repro.tracing.tracer import TracedOS
from repro.workloads.base import Application


class LevelDBFillSync(Application):
    """``fillsync``: N threads insert records into an empty database
    with synchronous WAL commits."""

    roots = ("/db",)

    def __init__(self, nthreads=8, ops_per_thread=50, value_size=100):
        self.nthreads = nthreads
        self.ops_per_thread = ops_per_thread
        self.value_size = value_size
        self.name = "leveldb-fillsync%d" % nthreads

    def setup(self, fs):
        fs.makedirs_now("/db")

    def main(self, osapi):
        database = MiniLevelDB(osapi, "/db/bench", DBOptions(sync=True))
        yield from database.open(0)
        elapsed = yield from fillsync(
            osapi, database, self.nthreads, self.ops_per_thread, self.value_size
        )
        yield from database.close(0)
        return elapsed


class LevelDBReadRandom(Application):
    """``readrandom``: N threads randomly read keys from a
    pre-populated database.

    The population happens during :meth:`setup` (untraced, before the
    snapshot is captured), exactly as the paper pre-populates the
    database before the traced run.
    """

    roots = ("/db",)

    def __init__(
        self, nthreads=8, ops_per_thread=300, nkeys=30000, value_size=1024, seed=7
    ):
        self.nthreads = nthreads
        self.ops_per_thread = ops_per_thread
        self.nkeys = nkeys
        self.value_size = value_size
        self.seed = seed
        self.name = "leveldb-readrandom%d" % nthreads
        self._db = None

    def setup(self, fs):
        fs.makedirs_now("/db")
        setup_os = TracedOS(fs)  # untraced interface

        def _populate():
            database = yield from populate(
                setup_os, 0, "/db/bench", nkeys=self.nkeys,
                value_size=self.value_size,
            )
            # Close everything: descriptors opened during population
            # must not leak into the traced run (the trace would use
            # fds it never opened).
            yield from database.close(0)
            return database

        self._db = fs.engine.run_process(_populate(), name="populate")

    def main(self, osapi):
        database = self._db
        if database is None:
            raise RuntimeError("setup() must run before main()")
        # Rebind the database to the traced interface.  Table caches
        # start cold, as they would in a fresh db_bench process.
        database.osapi = osapi
        database.wal.osapi = osapi
        for table in database.level0 + database.level1:
            table.index_loaded = False
        elapsed = yield from readrandom(
            osapi,
            database,
            self.nthreads,
            self.ops_per_thread,
            seed=self.seed,
            nkeys=self.nkeys,
        )
        # Close table descriptors so the trace is self-contained.
        for table in database.level0 + database.level1:
            if table.fd is not None:
                yield from osapi.call(0, "close", fd=table.fd)
                table.fd = None
        return elapsed
