"""The in-memory write buffer."""


class MemTable(object):
    """A sorted-map stand-in: keys with value sizes.

    Value bytes are synthetic (the VFS stores no file contents), but
    sizes are tracked exactly so flush thresholds and table sizes match
    a real store's I/O volume.
    """

    def __init__(self):
        self.entries = {}
        self.bytes = 0

    def put(self, key, value_size):
        previous = self.entries.get(key)
        if previous is not None:
            self.bytes -= previous
        self.entries[key] = value_size
        self.bytes += value_size + len(key) + 8

    def get(self, key):
        return self.entries.get(key)

    def sorted_items(self):
        return sorted(self.entries.items())

    def __len__(self):
        return len(self.entries)

    def __contains__(self, key):
        return key in self.entries
