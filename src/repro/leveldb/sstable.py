"""Sorted string tables.

A table is one file: data blocks followed by an index block and a
footer.  Block layout is computed exactly (so reads land on realistic
offsets) while the key->block map is mirrored in memory, standing in
for the index contents a real reader would parse.
"""

import bisect

BLOCK_SIZE = 4096
FOOTER_SIZE = 48


class BlockMeta(object):
    __slots__ = ("first_key", "offset", "length")

    def __init__(self, first_key, offset, length):
        self.first_key = first_key
        self.offset = offset
        self.length = length


class SSTable(object):
    """An immutable on-disk table plus its in-memory index mirror."""

    def __init__(self, path, blocks, index_offset, index_length, key_range):
        self.path = path
        self.blocks = blocks  # list[BlockMeta], sorted by first_key
        self.index_offset = index_offset
        self.index_length = index_length
        self.smallest, self.largest = key_range
        self._first_keys = [b.first_key for b in blocks]
        self._keys = None  # filled by the builder: set of keys present
        self.fd = None  # shared descriptor, opened lazily (table cache)
        self.index_loaded = False  # parsed index kept in the table cache

    @property
    def file_size(self):
        return self.index_offset + self.index_length + FOOTER_SIZE

    def may_contain(self, key):
        return self.smallest <= key <= self.largest

    def block_for(self, key):
        """The data block that would hold ``key``."""
        position = bisect.bisect_right(self._first_keys, key) - 1
        if position < 0:
            return None
        return self.blocks[position]

    def has_key(self, key):
        return self._keys is not None and key in self._keys

    def __repr__(self):
        return "<SSTable %s: %d blocks [%s..%s]>" % (
            self.path,
            len(self.blocks),
            self.smallest,
            self.largest,
        )


def build_table(osapi, tid, path, items, sync=True):
    """Write ``items`` (sorted (key, value_size) pairs) as a table file.

    A generator; returns the :class:`SSTable`.  Performs the sequence
    of writes a real table builder issues: one buffered write per data
    block, then the index block, then the footer, then fsync + close.
    """
    if not items:
        raise ValueError("cannot build an empty table")
    fd, err = yield from osapi.call(
        tid, "open", path=path, flags="O_WRONLY|O_CREAT|O_TRUNC", mode=0o644
    )
    if err is not None:
        raise IOError("cannot create table %s: %s" % (path, err))
    blocks = []
    offset = 0
    current = []
    current_bytes = 0

    def _block_nbytes(entries):
        return sum(len(key) + size + 8 for key, size in entries)

    for key, value_size in items:
        current.append((key, value_size))
        current_bytes += len(key) + value_size + 8
        if current_bytes >= BLOCK_SIZE:
            blocks.append(BlockMeta(current[0][0], offset, current_bytes))
            yield from osapi.call(tid, "write", fd=fd, nbytes=current_bytes)
            offset += current_bytes
            current = []
            current_bytes = 0
    if current:
        blocks.append(BlockMeta(current[0][0], offset, current_bytes))
        yield from osapi.call(tid, "write", fd=fd, nbytes=current_bytes)
        offset += current_bytes
    index_length = max(64, 24 * len(blocks))
    yield from osapi.call(tid, "write", fd=fd, nbytes=index_length + FOOTER_SIZE)
    if sync:
        yield from osapi.call(tid, "fsync", fd=fd)
    yield from osapi.call(tid, "close", fd=fd)
    table = SSTable(
        path, blocks, offset, index_length, (items[0][0], items[-1][0])
    )
    table._keys = {key for key, _size in items}
    return table


def read_key(osapi, tid, table, key):
    """Perform the I/O of one point lookup in ``table``.

    Opens the shared descriptor on first use (the table cache), reads
    the index block (usually page-cache resident after the first
    lookup), then the data block.  Returns the value size or None.
    """
    if table.fd is None:
        fd, err = yield from osapi.call(
            tid, "open", path=table.path, flags="O_RDONLY"
        )
        if err is not None:
            raise IOError("cannot open table %s: %s" % (table.path, err))
        table.fd = fd
    if not table.index_loaded:
        # The parsed index block lives in the table cache after the
        # first lookup; only that first lookup reads it from the file.
        yield from osapi.call(
            tid,
            "pread",
            fd=table.fd,
            nbytes=table.index_length,
            offset=table.index_offset,
        )
        table.index_loaded = True
    block = table.block_for(key)
    if block is None:
        return None
    yield from osapi.call(
        tid, "pread", fd=table.fd, nbytes=block.length, offset=block.offset
    )
    if table.has_key(key):
        return True
    return None
