"""The LSM store: WAL + memtable + tables + leader-based group commit."""

from repro.leveldb.memtable import MemTable
from repro.leveldb.sstable import build_table, read_key
from repro.leveldb.wal import WriteAheadLog
from repro.sim.events import Event, WaitEvent


class DBOptions(object):
    """Tuning knobs.

    ``sync``: fsync the WAL on every commit (the ``fillsync``
    benchmark's mode).  ``memtable_bytes``: flush threshold -- small
    values produce many table files, spreading random reads across
    files the way a populated LevelDB does.  ``l0_compaction_trigger``:
    merge the oldest level-0 tables into level 1 when level 0 grows
    past this many files.
    """

    def __init__(
        self,
        sync=False,
        memtable_bytes=256 * 1024,
        l0_compaction_trigger=12,
        compaction_width=4,
    ):
        self.sync = sync
        self.memtable_bytes = memtable_bytes
        self.l0_compaction_trigger = l0_compaction_trigger
        self.compaction_width = compaction_width


class MiniLevelDB(object):
    def __init__(self, osapi, path, options=None):
        self.osapi = osapi
        self.path = path.rstrip("/")
        self.options = options or DBOptions()
        self.memtable = MemTable()
        self.wal = WriteAheadLog(osapi, self.path + "/000001.log")
        self.level0 = []  # newest last
        self.level1 = []  # sorted, non-overlapping
        self._table_seq = 1
        self._manifest_fd = None
        self._queue = []
        self._leader_busy = False
        self.stats = {"commits": 0, "batches": 0, "flushes": 0, "compactions": 0}

    # -- lifecycle ------------------------------------------------------

    def open(self, tid):
        yield from self.osapi.call(tid, "mkdir", path=self.path, mode=0o755)
        fd, err = yield from self.osapi.call(
            tid,
            "open",
            path=self.path + "/MANIFEST-000001",
            flags="O_WRONLY|O_CREAT|O_APPEND",
            mode=0o644,
        )
        if err is not None:
            raise IOError("cannot open manifest: %s" % err)
        self._manifest_fd = fd
        yield from self.wal.open(tid)

    def close(self, tid):
        if self.memtable.entries:
            yield from self._flush(tid)
        yield from self.wal.close(tid)
        if self._manifest_fd is not None:
            yield from self.osapi.call(tid, "close", fd=self._manifest_fd)
            self._manifest_fd = None
        for table in self.level0 + self.level1:
            if table.fd is not None:
                yield from self.osapi.call(tid, "close", fd=table.fd)
                table.fd = None

    # -- writes -----------------------------------------------------------

    def put(self, tid, key, value_size):
        """Insert one record via group commit.

        When several threads write concurrently, the first becomes the
        *leader*: it drains the queue, appends everyone's records as
        one WAL batch (one write + one fsync), applies them to the
        memtable, and wakes the waiters -- real LevelDB's writer
        protocol, and the reason fillsync behaves like a
        single-threaded write workload (section 5.2.2).
        """
        slot = (key, value_size, Event())
        self._queue.append(slot)
        self.stats["commits"] += 1
        if self._leader_busy:
            yield WaitEvent(slot[2])
            return
        self._leader_busy = True
        try:
            while self._queue:
                batch, self._queue = self._queue, []
                items = [(entry[0], entry[1]) for entry in batch]
                yield from self.wal.append_batch(tid, items, self.options.sync)
                self.stats["batches"] += 1
                for key2, size2 in items:
                    self.memtable.put(key2, size2)
                for entry in batch:
                    if not entry[2].is_set:
                        entry[2].set()
                if self.memtable.bytes >= self.options.memtable_bytes:
                    yield from self._flush(tid)
        finally:
            self._leader_busy = False

    def _next_table_path(self):
        self._table_seq += 1
        return "%s/%06d.ldb" % (self.path, self._table_seq)

    def _flush(self, tid):
        """Memtable -> new level-0 table + manifest edit + fresh WAL."""
        items = self.memtable.sorted_items()
        if not items:
            return
        table = yield from build_table(
            self.osapi, tid, self._next_table_path(), items
        )
        self.level0.append(table)
        self.memtable = MemTable()
        yield from self._manifest_edit(tid)
        yield from self.wal.reset(tid)
        self.stats["flushes"] += 1
        if len(self.level0) > self.options.l0_compaction_trigger:
            yield from self._compact(tid)

    def _manifest_edit(self, tid):
        yield from self.osapi.call(tid, "write", fd=self._manifest_fd, nbytes=64)
        yield from self.osapi.call(tid, "fsync", fd=self._manifest_fd)

    def _compact(self, tid):
        """Merge the oldest level-0 tables into one level-1 table."""
        width = min(self.options.compaction_width, len(self.level0))
        victims = self.level0[:width]
        self.level0 = self.level0[width:]
        merged = {}
        for table in victims:  # oldest first; newer overwrite older
            for block in table.blocks:
                yield from read_key(self.osapi, tid, table, block.first_key)
            for key in table._keys:
                merged[key] = 100  # sizes are synthetic post-merge
        items = sorted(merged.items())
        table = yield from build_table(
            self.osapi, tid, self._next_table_path(), items
        )
        self.level1.append(table)
        self.level1.sort(key=lambda t: t.smallest)
        for victim in victims:
            if victim.fd is not None:
                yield from self.osapi.call(tid, "close", fd=victim.fd)
                victim.fd = None
            yield from self.osapi.call(tid, "unlink", path=victim.path)
        yield from self._manifest_edit(tid)
        self.stats["compactions"] += 1

    # -- reads --------------------------------------------------------------

    def get(self, tid, key):
        """Point lookup: memtable, then level 0 newest-first, then level 1."""
        value = self.memtable.get(key)
        if value is not None:
            return value
        for table in reversed(self.level0):
            if table.may_contain(key):
                found = yield from read_key(self.osapi, tid, table, key)
                if found:
                    return found
        for table in self.level1:
            if table.may_contain(key):
                found = yield from read_key(self.osapi, tid, table, key)
                if found:
                    return found
        return None

    @property
    def table_count(self):
        return len(self.level0) + len(self.level1)

    def all_keys(self):
        keys = set(self.memtable.entries)
        for table in self.level0 + self.level1:
            keys |= table._keys
        return keys
