"""The write-ahead log."""


class WriteAheadLog(object):
    """Append-only log of committed batches.

    All methods are generators running on the traced syscall interface,
    so WAL traffic appears in traces exactly like LevelDB's
    ``LOG``/``.log`` file writes.
    """

    RECORD_OVERHEAD = 12  # length + crc header per record

    def __init__(self, osapi, path):
        self.osapi = osapi
        self.path = path
        self.fd = None
        self.offset = 0

    def open(self, tid):
        fd, err = yield from self.osapi.call(
            tid, "open", path=self.path, flags="O_WRONLY|O_CREAT|O_APPEND", mode=0o644
        )
        if err is not None:
            raise IOError("cannot open WAL %s: %s" % (self.path, err))
        self.fd = fd

    def append_batch(self, tid, batch, sync):
        """Write one committed batch; fsync when ``sync`` (fillsync mode)."""
        nbytes = sum(
            len(key) + value_size + self.RECORD_OVERHEAD for key, value_size in batch
        )
        _ret, err = yield from self.osapi.call(
            tid, "write", fd=self.fd, nbytes=max(1, nbytes)
        )
        if err is not None:
            raise IOError("WAL write failed: %s" % err)
        self.offset += nbytes
        if sync:
            _ret, err = yield from self.osapi.call(tid, "fsync", fd=self.fd)
            if err is not None:
                raise IOError("WAL fsync failed: %s" % err)

    def reset(self, tid):
        """Start a fresh log after a memtable flush."""
        if self.fd is not None:
            yield from self.osapi.call(tid, "close", fd=self.fd)
        yield from self.osapi.call(tid, "unlink", path=self.path)
        yield from self.open(tid)
        self.offset = 0

    def close(self, tid):
        if self.fd is not None:
            yield from self.osapi.call(tid, "close", fd=self.fd)
            self.fd = None
