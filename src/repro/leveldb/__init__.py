"""A miniature LevelDB-style LSM key-value store.

Used as the paper's macrobenchmark (section 5.2.2).  It runs entirely
on the simulated VFS through the traced system-call interface, so its
I/O can be traced and replayed like any application.  The structural
properties the evaluation depends on are faithful:

- ``fillsync``: writers funnel through a *leader* that batches their
  records into one WAL append + fsync (real LevelDB's group commit),
  reducing the I/O pattern to a single-threaded write stream;
- ``readrandom``: every thread keeps an independent ``pread``
  outstanding against a shared table-file descriptor cache, which is
  what gives the storage stack queue depth to exploit.
"""

from repro.leveldb.db import DBOptions, MiniLevelDB
from repro.leveldb.bench import fillsync, populate, readrandom

__all__ = ["MiniLevelDB", "DBOptions", "fillsync", "readrandom", "populate"]
