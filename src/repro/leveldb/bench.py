"""The db_bench-style drivers: populate, fillsync, readrandom.

Each driver is a generator (drive with ``engine.run_process``) that
spawns one simulated thread per benchmark thread and returns the
elapsed time once all of them finish, mirroring the workloads
"distributed with LevelDB" used in section 5.2.2.
"""

import random

from repro.leveldb.db import DBOptions, MiniLevelDB
from repro.sim.events import wait_all


def _key(space, index):
    return "k%s-%08d" % (space, index)


def populate(osapi, tid, path, nkeys=2000, value_size=100, options=None):
    """Build a pre-populated database (single-threaded, async writes),
    as the paper's readrandom setup requires.  Returns the open DB."""
    # A small memtable yields many table files, as a long-lived store
    # would have; random reads then scatter across files.
    # fillseq-style population: sequential keys produce non-overlapping
    # tables (as db_bench does), so a point lookup probes one table.
    # The small flush threshold yields a table count proportional to a
    # real multi-gigabyte store's (hundreds of files), which is what
    # keeps concurrent readers from colliding on one file.
    options = options or DBOptions(
        sync=False,
        memtable_bytes=max(8 * 1024, 64 * value_size),
        l0_compaction_trigger=10 ** 9,
    )
    database = MiniLevelDB(osapi, path, options)
    yield from database.open(tid)
    for index in range(nkeys):
        yield from database.put(tid, _key("pop", index), value_size)
    if database.memtable.entries:
        yield from database._flush(tid)
    return database


def fillsync(osapi, database, nthreads=8, ops_per_thread=50, value_size=100):
    """Concurrent synchronous inserts into an empty database."""
    engine = osapi.fs.engine
    start = engine.now

    def writer(tid):
        for index in range(ops_per_thread):
            yield from database.put(
                tid, _key("t%s" % tid, index), value_size
            )

    processes = [
        engine.spawn(writer(tid), name="fillsync-%d" % tid)
        for tid in range(1, nthreads + 1)
    ]
    yield from wait_all([p.done for p in processes])
    return engine.now - start


def readrandom(osapi, database, nthreads=8, ops_per_thread=100, seed=7,
               nkeys=2000):
    """Concurrent random point lookups against a populated database."""
    engine = osapi.fs.engine
    start = engine.now

    def reader(tid):
        rng = random.Random(seed * 1000 + tid)
        for _ in range(ops_per_thread):
            key = _key("pop", rng.randrange(nkeys))
            yield from database.get(tid, key)

    processes = [
        engine.spawn(reader(tid), name="readrandom-%d" % tid)
        for tid in range(1, nthreads + 1)
    ]
    yield from wait_all([p.done for p in processes])
    return engine.now - start
