"""Exception hierarchy shared across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly."""


class ProcessCrashed(SimulationError):
    """A simulated process raised an unhandled exception."""

    def __init__(self, process_name, original):
        super().__init__(
            "simulated process %r crashed: %r" % (process_name, original)
        )
        self.process_name = process_name
        self.original = original


class TraceParseError(ReproError):
    """A trace file could not be parsed."""

    def __init__(self, message, line_number=None, line=None):
        location = "" if line_number is None else " (line %d)" % line_number
        super().__init__(message + location)
        self.line_number = line_number
        self.line = line


class SnapshotError(ReproError):
    """An initial file-tree snapshot is malformed or inconsistent."""


class CompileError(ReproError):
    """The ARTC compiler could not build a benchmark from a trace."""


class ReplayError(ReproError):
    """The ARTC replayer hit an unrecoverable condition."""


class CycleError(ReproError):
    """A dependency graph that should be acyclic contains a cycle.

    ``members`` lists the action indices on one offending cycle, in
    edge order (each element depends on the previous; the last wraps
    around to the first).
    """

    def __init__(self, members, message=None):
        self.members = list(members)
        if message is None:
            message = "dependency graph contains a cycle: %s" % (
                " -> ".join(str(m) for m in self.members + self.members[:1])
            )
        super().__init__(message)


class UnsupportedSyscallError(CompileError):
    """The trace contains a call the registry does not know about."""

    def __init__(self, name):
        super().__init__("unsupported system call: %r" % (name,))
        self.name = name
