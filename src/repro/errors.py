"""Exception hierarchy shared across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly."""


class ProcessCrashed(SimulationError):
    """A simulated process raised an unhandled exception."""

    def __init__(self, process_name, original):
        super().__init__(
            "simulated process %r crashed: %r" % (process_name, original)
        )
        self.process_name = process_name
        self.original = original


class AbortSimulation(ReproError):
    """Control-flow base for exceptions that must unwind the whole
    simulation: the engine's process wrapper re-raises these unchanged
    (instead of wrapping them in :class:`ProcessCrashed`), so a single
    raise anywhere inside the event loop terminates ``engine.run``."""


class MachineCrashed(AbortSimulation):
    """The simulated machine lost power (``--crash-at``).

    Everything in volatile state -- dirty page cache, uncommitted
    journal entries, in-flight requests -- is gone; only what the
    durability tracker saw reach the platter survives.
    """

    def __init__(self, when):
        super().__init__("simulated machine crashed at t=%.6f" % (when,))
        self.when = when


class DeviceError(ReproError):
    """A block request failed at the device (injected EIO & friends).

    Carries the symbolic errno the VFS should surface; the storage
    stack raises it out of ``read``/``fsync`` paths and
    ``FileSystem._run`` converts it to ``(-1, errno)`` like any other
    failed call.
    """

    def __init__(self, errno="EIO", detail=""):
        message = "device error: %s" % errno
        if detail:
            message += " (%s)" % detail
        super().__init__(message)
        self.errno = errno
        self.detail = detail


class TraceError(ReproError, ValueError):
    """A trace file is malformed.

    The single actionable parse error shared by the batch loaders and
    the streaming tailer: the message always carries the line number
    and byte offset of the offending line when they are known, so a
    producer-side bug can be located in the raw file directly.
    (Also a ``ValueError`` for callers that predate the hierarchy.)
    """

    def __init__(self, message, line_number=None, line=None, byte_offset=None):
        location = ""
        if line_number is not None:
            location = " (line %d" % line_number
            if byte_offset is not None:
                location += ", byte %d" % byte_offset
            location += ")"
        elif byte_offset is not None:
            location = " (byte %d)" % byte_offset
        super().__init__(message + location)
        self.line_number = line_number
        self.line = line
        self.byte_offset = byte_offset


class TraceParseError(TraceError):
    """Backwards-compatible name for :class:`TraceError`."""


class SnapshotError(ReproError):
    """An initial file-tree snapshot is malformed or inconsistent."""


class CompileError(ReproError):
    """The ARTC compiler could not build a benchmark from a trace."""


class ReplayError(ReproError):
    """The ARTC replayer hit an unrecoverable condition."""


class ReplayAborted(AbortSimulation):
    """The hardened replayer's watchdog stopped a stalled replay.

    ``members`` carries the dependency-cycle action indices when the
    diagnosis found one (the same analysis as ``artc lint``'s graph
    pass); ``context`` is a free-form diagnosis dict (completed/pending
    counts, stalled threads, critical-path hint) for the report.
    """

    def __init__(self, message, members=None, context=None):
        super().__init__(message)
        self.members = list(members or [])
        self.context = dict(context or {})


class CycleError(ReproError):
    """A dependency graph that should be acyclic contains a cycle.

    ``members`` lists the action indices on one offending cycle, in
    edge order (each element depends on the previous; the last wraps
    around to the first).
    """

    def __init__(self, members, message=None):
        self.members = list(members)
        if message is None:
            message = "dependency graph contains a cycle: %s" % (
                " -> ".join(str(m) for m in self.members + self.members[:1])
            )
        super().__init__(message)


class UnsupportedSyscallError(CompileError):
    """The trace contains a call the registry does not know about."""

    def __init__(self, name):
        super().__init__("unsupported system call: %r" % (name,))
        self.name = name
