"""Translation validation for replay cores (``artc verify`` engine a).

The JIT core (:mod:`repro.artc.codegen`) emits straight-line Python per
thread with three load-bearing specializations: gate checks elided for
actions whose enforced predecessors are all earlier same-thread
actions, completion broadcast batched into per-run decrement passes,
and constants (argument dicts, fd-remap keys, expected return values,
conformance-check forms) bound at codegen time.  Each of those is an
*obligation* this module discharges statically, per replay, instead of
trusting the sampled dynamic byte-identity suite:

- **gate domination**: a gate may be elided only when every enforced
  predecessor (reduced graph when the core waits on it) is an earlier
  action of the same thread;
- **release partition**: the claimed batched-release runs, flattened,
  must equal the serial successor list element-for-element, every run
  member must be owned by the run's thread, adjacent runs must change
  owners (maximality), and a waiting-table probe must be present
  exactly when the run's owner is another thread;
- **constant binding**: the bound kind/step/argument/fd-key/update
  claims must match the installed execution plan -- and the installed
  plan itself must match an independent recompile of every entry
  (:func:`repro.artc.planir.compile_entry`), which catches stale plans
  carried by an artifact;
- **conformance coverage**: every non-META action must carry the
  correct outcome check for its ``(ok, is_read)`` shape, with the
  expected-ret constant equal to the traced return value.

The validator walks the emitter's *claims table*
(:attr:`repro.artc.codegen.JitProgram.facts` -- the IR-derived plan
sequence, not the generated Python text) against obligations derived
independently from the dependency graph and the trace.  The scoreboard
and event cores interpret rather than specialize, so their
certificates cover the shared obligations: plan faithfulness plus the
graph invariants their wait machinery relies on (in-range
duplicate-free predecessor lists, acyclicity under thread sequencing,
and reduction-closure equality).

The result is a :class:`Certificate` per (benchmark, core): a
machine-checkable record of the obligations discharged and every
violation found, embeddable in the ``.artcb`` v2 wrapper.
"""

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.artc import codegen, planir
from repro.core.analysis import find_cycle, thread_edges
from repro.core.reduce import closure_matrix
from repro.lint.report import ERROR, WARNING, Finding, PassResult

#: Certificate serialization format tag.
CERT_FORMAT = "artc-cert-v1"

#: The replay cores a certificate can cover.
CORES = ("events", "scoreboard", "jit")

#: (variant, reduced) program configurations the jit certificate
#: validates -- every shape ``_ReplayRun.run`` can dispatch to.
_JIT_CONFIGS = (("artc", True), ("artc", False), ("free", False),
                ("seq", False))


class Certificate(object):
    """One core's verification outcome for one benchmark.

    ``obligations`` counts the checks discharged by category;
    ``findings`` holds the :class:`~repro.lint.report.Finding` objects
    for every violated obligation.  ``ok`` is True when no finding at
    warning severity or above survived.
    """

    __slots__ = ("core", "label", "key", "obligations", "findings")

    def __init__(self, core: str, label: str, key: Any,
                 obligations: Dict[str, int],
                 findings: Sequence[Finding]) -> None:
        if core not in CORES:
            raise ValueError("unknown replay core %r" % (core,))
        self.core = core
        self.label = label
        self.key = key  # planir.PlanKey
        self.obligations = dict(obligations)
        self.findings = list(findings)

    @property
    def ok(self) -> bool:
        return not any(f.severity in (WARNING, ERROR) for f in self.findings)

    @property
    def n_obligations(self) -> int:
        return sum(self.obligations.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": CERT_FORMAT,
            "core": self.core,
            "label": self.label,
            "key": {
                "source": self.key.source,
                "target": self.key.target,
                "o_excl_fix": self.key.o_excl_fix,
                "fsync_mode": self.key.fsync_mode,
                "ignore_unsupported_hints": self.key.ignore_unsupported_hints,
            },
            "ok": self.ok,
            "obligations": dict(self.obligations),
            "violations": [f.to_dict() for f in self.findings],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Certificate":
        if payload.get("format") != CERT_FORMAT:
            raise ValueError(
                "not a serialized certificate (format %r)"
                % (payload.get("format"),)
            )
        raw = payload["key"]
        key = planir.PlanKey(
            raw["source"], raw["target"], bool(raw["o_excl_fix"]),
            raw["fsync_mode"], bool(raw["ignore_unsupported_hints"]),
        )
        findings = [
            Finding(
                item["check"], item["severity"], item["message"],
                actions=item.get("actions", ()),
                detail=item.get("detail"),
            )
            for item in payload.get("violations", ())
        ]
        return cls(payload["core"], payload.get("label", ""), key,
                   payload.get("obligations", {}), findings)

    def __repr__(self) -> str:
        return "<Certificate %s %s: %d obligations, %d violations>" % (
            self.core, "ok" if self.ok else "REJECTED",
            self.n_obligations, len(self.findings),
        )


# -- obligation derivation (independent of the emitter) ------------------


def enforced_preds(benchmark: Any, reduced: bool) -> List[List[int]]:
    """The predecessor lists a core enforces under ``reduced`` -- the
    same selection rule as ``_ReplayRun.run``."""
    graph = benchmark.graph
    if reduced and graph.reduced_preds is not None:
        return graph.reduced_preds
    return graph.preds


def successor_lists(preds: Sequence[Sequence[int]]) -> List[List[int]]:
    """Invert predecessor lists into per-action successor lists, in
    the destination order the serial release walks them."""
    succs: List[List[int]] = [[] for _ in preds]
    for dst, plist in enumerate(preds):
        for src in plist:
            succs[src].append(dst)
    return succs


def _gate_required(preds: Sequence[int], tid_of: Sequence[Any],
                   idx: int) -> Optional[int]:
    """The witness predecessor forcing a gate at ``idx``, or None when
    every enforced predecessor is an earlier same-thread action."""
    tid = tid_of[idx]
    for src in preds:
        if tid_of[src] != tid or src >= idx:
            return src
    return None


# -- plan faithfulness ---------------------------------------------------


def _entry_shape(entry: Tuple[Any, ...]) -> Tuple[Any, ...]:
    """A comparable summary of one runtime plan entry (handler
    callables dropped: they are a pure function of the step kind)."""
    kind, payload, is_read, upd = entry
    fd_key = None
    steps: Optional[Tuple[Any, ...]] = None
    if kind == planir.STATIC:
        _h, args, step_name, step_kind = payload
        steps = ((step_name, step_kind, args),)
    elif kind == planir.FDREMAP:
        _h, args, fd_key, step_name, step_kind = payload
        fd_key = tuple(fd_key)
        steps = ((step_name, step_kind, args),)
    elif kind == planir.MULTI:
        steps = tuple(
            (step_name, step_kind, args)
            for _h, args, step_name, step_kind in payload
        )
    return (kind, bool(is_read), bool(upd), fd_key, steps)


def verify_plan(benchmark: Any, plan: Any,
                max_findings: int = 25) -> Tuple[List[Finding], int]:
    """Recompile every entry of ``plan`` from the trace and diff it
    against the installed entries.  An installed plan normally *is*
    the recompile (same code path), so any difference means the plan
    was loaded from an artifact that no longer matches this build or
    was corrupted -- the stale-bound-constant hazard."""
    findings: List[Finding] = []
    emulation = planir.emulation_of(plan.key)
    checked = 0
    for action, entry in zip(benchmark.actions, plan.entries):
        checked += 1
        expected = planir.compile_entry(action, plan.key, emulation)
        if _entry_shape(expected) == _entry_shape(entry):
            continue
        if len(findings) < max_findings:
            findings.append(Finding(
                "stale-plan-entry", ERROR,
                "installed plan entry for #%d (%s) does not match an "
                "independent recompile: expected %s, found %s"
                % (action.idx, action.record.name,
                   _describe_entry(expected), _describe_entry(entry)),
                actions=(action.idx,),
                detail={
                    "expected_kind": planir.KIND_NAMES[expected[0]],
                    "found_kind": planir.KIND_NAMES[entry[0]],
                },
            ))
    return findings, checked


def _describe_entry(entry: Tuple[Any, ...]) -> str:
    kind, payload = entry[0], entry[1]
    name = planir.KIND_NAMES[kind]
    if kind == planir.STATIC:
        return "%s %s(%r)" % (name, payload[2], payload[1])
    if kind == planir.FDREMAP:
        return "%s %s(fd@%r, %r)" % (name, payload[3], payload[2], payload[1])
    if kind == planir.MULTI:
        return "%s %s" % (name, "+".join(step[2] for step in payload))
    return name


# -- graph obligations (scoreboard / events wait machinery) --------------


def verify_graph(benchmark: Any, reduced: bool = True,
                 max_findings: int = 25) -> Tuple[List[Finding],
                                                  Dict[str, int]]:
    """The invariants the counter/event wait machinery relies on:
    in-range duplicate-free predecessor lists (a duplicate would
    double-decrement a pending counter), acyclicity under implicit
    thread sequencing (else a thread parks forever), and -- when the
    core waits on the reduced graph -- closure equality with the full
    edge set (else the smaller wait sets enforce a weaker order)."""
    findings: List[Finding] = []
    graph = benchmark.graph
    actions = benchmark.actions
    n = len(actions)
    tid_of = [action.record.tid for action in actions]
    checked = 0

    pred_sets = [("preds", graph.preds)]
    if graph.reduced_preds is not None:
        pred_sets.append(("reduced_preds", graph.reduced_preds))
    structural_ok = True
    for set_name, preds in pred_sets:
        for dst, plist in enumerate(preds):
            checked += 1
            seen = set()
            for src in plist:
                if not (0 <= src < n) or src == dst:
                    structural_ok = False
                    if len(findings) < max_findings:
                        findings.append(Finding(
                            "pred-out-of-range", ERROR,
                            "%s[%d] names predecessor %d outside [0, %d)"
                            % (set_name, dst, src, n),
                            actions=(dst,),
                        ))
                    continue
                if src in seen:
                    structural_ok = False
                    if len(findings) < max_findings:
                        findings.append(Finding(
                            "duplicate-pred-counter", ERROR,
                            "%s[%d] lists predecessor %d twice: the "
                            "pending counter would be decremented twice "
                            "per completion" % (set_name, dst, src),
                            actions=(src, dst),
                        ))
                seen.add(src)

    cycle = None
    if structural_ok:
        implicit = thread_edges(actions)
        enforced = enforced_preds(benchmark, reduced)
        merged = [
            list(plist) + list(extra)
            for plist, extra in zip(enforced, implicit)
        ]
        cycle = find_cycle(merged)
        if cycle is not None:
            findings.append(Finding(
                "replay-deadlock", ERROR,
                "enforced graph plus thread sequencing has a cycle of "
                "%d actions: every core would park forever"
                % len(cycle),
                actions=tuple(cycle),
                detail={"members": list(cycle)},
            ))

    closure_checked = False
    if (structural_ok and cycle is None and reduced
            and graph.reduced_preds is not None):
        closure_checked = True
        full = closure_matrix(n, graph.preds, tid_of)
        small = closure_matrix(n, graph.reduced_preds, tid_of)
        if full != small:
            for idx in range(n):
                if full[idx] != small[idx]:
                    findings.append(Finding(
                        "closure-mismatch", ERROR,
                        "reduced wait sets enforce a different partial "
                        "order starting at action %d" % idx,
                        actions=(idx,),
                    ))
                    break
    stats = {
        "graph_nodes": checked,
        "acyclic": int(cycle is None),
        "closure_checked": int(closure_checked),
    }
    return findings, stats


# -- program-claims validation (jit core) --------------------------------


def validate_program(benchmark: Any, plan: Any, program: Any,
                     reduced: bool = True,
                     max_findings: int = 25) -> Tuple[List[Finding],
                                                      Dict[str, int]]:
    """Check a compiled program's claims table against independently
    derived obligations.  ``program.facts`` records what the emitter
    bound; this function recomputes what it *should* have bound from
    the dependency graph, the plan entries, and the trace records --
    never by calling back into the emitter's own helpers."""
    findings: List[Finding] = []
    actions = benchmark.actions
    entries = plan.entries
    tid_of = [action.record.tid for action in actions]
    synced = program.variant == "artc"
    preds = enforced_preds(benchmark, reduced) if synced else None
    succs = successor_lists(preds) if preds is not None else None
    facts = program.facts
    counts = {"gates": 0, "releases": 0, "bindings": 0, "conformance": 0}

    def report(check: str, severity: str, message: str, idx: int,
               detail: Optional[Dict[str, Any]] = None) -> None:
        if len(findings) < max_findings:
            findings.append(Finding(
                check, severity,
                "[%s] %s" % (program.variant, message),
                actions=(idx,), detail=detail,
            ))

    for action, entry in zip(actions, entries):
        idx = action.idx
        record = action.record
        fact = facts.get(idx)
        if fact is None:
            report("missing-program-facts", ERROR,
                   "action #%d has no claims entry: the generated "
                   "program cannot be validated" % idx, idx)
            continue

        # Gate domination -------------------------------------------------
        counts["gates"] += 1
        if synced and preds is not None:
            witness = _gate_required(preds[idx], tid_of, idx)
            if witness is not None and not fact["gate"]:
                report(
                    "elided-gate", ERROR,
                    "gate elided at #%d but enforced predecessor #%d "
                    "is %s -- the program can run ahead of its "
                    "dependencies"
                    % (idx, witness,
                       "cross-thread" if tid_of[witness] != tid_of[idx]
                       else "not an earlier action"),
                    idx, detail={"witness": witness},
                )
            elif witness is None and fact["gate"]:
                report(
                    "spurious-gate", WARNING,
                    "gate emitted at #%d though every enforced "
                    "predecessor is an earlier same-thread action"
                    % idx, idx,
                )
        elif fact["gate"]:
            report("spurious-gate", ERROR,
                   "unsynchronized variant claims a gate at #%d" % idx,
                   idx)

        # Release partition -----------------------------------------------
        counts["releases"] += len(fact["releases"]) or 1
        if synced and succs is not None:
            _check_releases(fact, succs[idx], tid_of, idx, report)
        elif fact["releases"]:
            report("release-mismatch", ERROR,
                   "unsynchronized variant claims releases at #%d" % idx,
                   idx)

        # Constant binding -------------------------------------------------
        counts["bindings"] += 1
        kind = entry[0]
        if fact["kind"] != kind:
            report("stale-binding", ERROR,
                   "#%d compiled as %s but the plan entry is %s"
                   % (idx, planir.KIND_NAMES[fact["kind"]],
                      planir.KIND_NAMES[kind]), idx)
        elif kind in (planir.STATIC, planir.FDREMAP, planir.MULTI):
            _check_binding(fact, entry, idx, report)
        if bool(fact["update"]) != bool(entry[3]):
            report("stale-binding", ERROR,
                   "#%d fd-map update claim %r does not match the plan "
                   "entry" % (idx, fact["update"]), idx)

        # Conformance coverage --------------------------------------------
        counts["conformance"] += 1
        if kind == planir.META:
            expected_form = "meta"
        elif kind == planir.DYNAMIC:
            expected_form = "dynamic"
        elif not record.ok:
            expected_form = "assess"
        elif entry[2]:
            expected_form = "ok_ret"
        else:
            expected_form = "ok"
        form = fact["conformance"]
        if form is None:
            report("missing-conformance-check", ERROR,
                   "#%d (%s) carries no outcome check: a divergent "
                   "result would go unreported" % (idx, record.name),
                   idx)
        elif form != expected_form:
            report("wrong-conformance-form", ERROR,
                   "#%d (%s) uses conformance form %r, expected %r"
                   % (idx, record.name, form, expected_form), idx)
        elif form == "ok_ret" and fact["expected_ret"] != record.ret:
            report("stale-expected-ret", ERROR,
                   "#%d (%s) compares against expected ret %r but the "
                   "trace recorded %r"
                   % (idx, record.name, fact["expected_ret"], record.ret),
                   idx)
    if len(facts) > len(actions):
        findings.append(Finding(
            "missing-program-facts", ERROR,
            "[%s] claims table covers %d actions, benchmark has %d"
            % (program.variant, len(facts), len(actions)),
        ))
    return findings, counts


def _check_releases(fact: Dict[str, Any], serial: Sequence[int],
                    tid_of: Sequence[Any], idx: int,
                    report: Any) -> None:
    flattened: List[int] = []
    previous_owner: Any = object()
    for owner, members, probe in fact["releases"]:
        flattened.extend(members)
        if not members:
            report("release-mismatch", ERROR,
                   "#%d claims an empty release run for thread %s"
                   % (idx, owner), idx)
            continue
        for succ in members:
            if not (0 <= succ < len(tid_of)) or tid_of[succ] != owner:
                report(
                    "release-owner-mismatch", ERROR,
                    "#%d releases #%s in a run owned by thread %s but "
                    "it belongs to %s: the single probe would miss a "
                    "parked thread"
                    % (idx, succ, owner,
                       tid_of[succ] if 0 <= succ < len(tid_of) else "?"),
                    idx,
                )
        if owner == previous_owner:
            report("release-run-not-maximal", WARNING,
                   "#%d claims adjacent release runs with the same "
                   "owner %s (batching lost)" % (idx, owner), idx)
        previous_owner = owner
        expected_probe = owner != fact["tid"]
        if probe != expected_probe:
            report(
                "release-probe-mismatch", ERROR,
                "#%d run for thread %s %s a waiting-table probe but "
                "the owner %s the releasing thread"
                % (idx, owner,
                   "claims" if probe else "omits",
                   "is" if owner == fact["tid"] else "is not"),
                idx,
            )
    if flattened != list(serial):
        report(
            "release-mismatch", ERROR,
            "#%d batched release decrements %r but the serial "
            "successor list is %r: pending counters would diverge"
            % (idx, flattened, list(serial)), idx,
            detail={"claimed": flattened, "serial": list(serial)},
        )


def _check_binding(fact: Dict[str, Any], entry: Tuple[Any, ...],
                   idx: int, report: Any) -> None:
    kind, payload = entry[0], entry[1]
    if kind == planir.MULTI:
        plan_steps = tuple((sn, sk) for _h, _a, sn, sk in payload)
        plan_args = tuple(args for _h, args, _sn, _sk in payload)
        plan_fd_key = None
    elif kind == planir.FDREMAP:
        _h, args, fd_key, step_name, step_kind = payload
        plan_steps = ((step_name, step_kind),)
        plan_args = (args,)
        plan_fd_key = tuple(fd_key)
    else:
        _h, args, step_name, step_kind = payload
        plan_steps = ((step_name, step_kind),)
        plan_args = (args,)
        plan_fd_key = None
    if fact["steps"] != plan_steps:
        report("stale-binding", ERROR,
               "#%d compiled steps %r but the plan names %r"
               % (idx, fact["steps"], plan_steps), idx)
    if tuple(fact["args"] or ()) != plan_args:
        report("stale-binding", ERROR,
               "#%d bound argument constants that differ from the plan "
               "entry (stale bound constant)" % idx, idx)
    claimed_key = fact["fd_key"]
    if (claimed_key if claimed_key is None else tuple(claimed_key)) \
            != plan_fd_key:
        report("stale-binding", ERROR,
               "#%d bound fd-remap key %r but the plan entry carries %r"
               % (idx, claimed_key, plan_fd_key), idx)


# -- certificates --------------------------------------------------------


def certify(benchmark: Any, core: str, plan: Any = None,
            reduced: bool = True, max_findings: int = 25) -> Certificate:
    """Discharge every obligation ``core`` relies on for ``benchmark``
    and return the :class:`Certificate`."""
    if core not in CORES:
        raise ValueError("unknown replay core %r" % (core,))
    if plan is None:
        plan = planir.default_plan(benchmark)
    findings: List[Finding] = []
    obligations: Dict[str, int] = {}

    plan_findings, n_entries = verify_plan(benchmark, plan, max_findings)
    findings.extend(plan_findings)
    obligations["plan_entries"] = n_entries

    graph_findings, graph_stats = verify_graph(
        benchmark, reduced=reduced, max_findings=max_findings
    )
    findings.extend(graph_findings)
    obligations["graph_nodes"] = graph_stats["graph_nodes"]

    if core == "jit":
        for variant, variant_reduced in _JIT_CONFIGS:
            program = codegen.program_for(
                benchmark, plan, variant, variant_reduced
            )
            prog_findings, counts = validate_program(
                benchmark, plan, program, reduced=variant_reduced,
                max_findings=max_findings,
            )
            findings.extend(prog_findings)
            for key, value in counts.items():
                obligations[key] = obligations.get(key, 0) + value
    return Certificate(core, benchmark.label or "", plan.key,
                       obligations, findings)


def plan_pass(benchmark: Any, plans: Sequence[Any],
              max_findings: int = 25) -> PassResult:
    """An ``artc lint`` pass over embedded execution plans: every plan
    an artifact carried is diffed against an independent recompile, so
    linting a ``.artcb`` exercises the IR it actually ships."""
    findings: List[Finding] = []
    entries = 0
    kind_totals = [0] * len(planir.KIND_NAMES)
    for plan in plans:
        plan_findings, checked = verify_plan(benchmark, plan, max_findings)
        findings.extend(plan_findings)
        entries += checked
        for kind, count in enumerate(plan.kind_counts()):
            kind_totals[kind] += count
    stats: Dict[str, Any] = {"plans": len(plans), "entries": entries}
    for kind, count in enumerate(kind_totals):
        if count:
            stats[planir.KIND_NAMES[kind]] = count
    return PassResult("ir", findings, stats)
