"""Abstract replay: static prediction of replay outcomes and final FS state.

The second ``artc verify`` engine.  Where translation validation
(:mod:`repro.verify.transval`) proves the *generated programs* faithful
to the scoreboard semantics, this module predicts what any faithful
replay must *produce*: the per-action errno outcomes and the final
file-system state digest -- without running the discrete-event
simulator at all.

Abstract domain
---------------

The domain is a flat lattice: a fully concrete summary state (namespace
tree, fd table, per-inode size/xattr/link summaries -- everything the
final-state digest depends on, and nothing timing-dependent) with a
single top element ``UNKNOWN`` above it.  Transfer functions are exact
mirrors of the concrete VFS (:mod:`repro.vfs.filesystem`) and executor
(:mod:`repro.syscalls.execute`) with every timing ``yield`` deleted;
the inode table, fd table, and path resolver are *shared code* with the
concrete interpreter (``repro.vfs.nodes`` / ``repro.vfs.fdtable``), so
only the per-op bodies are mirrored.  Snapshot initialization and
final-state capture reuse :func:`repro.artc.init.initialize` and
:meth:`repro.tracing.snapshot.Snapshot.capture` verbatim.

Whenever an action's effect could depend on scheduling or on simulator
internals the mirror cannot see -- in-flight aio writes racing a
truncate, a raw trace descriptor falling back unmapped into a replay fd
table with different numbering, an op the concrete replay would crash
on -- the interpreter *widens* to top and reports ``UNKNOWN`` for the
remaining actions rather than guessing.  Predictions are therefore
sound by construction: ``exact`` means *every* admissible schedule of
the requested mode produces exactly this digest and these errnos;
``unknown`` promises nothing.

Mode gating
-----------

Trace-order interpretation is one particular linearization.  It speaks
for all schedules of a mode only when every conflicting action pair is
ordered by that mode's constraints -- which is precisely the race scan
of :func:`repro.lint.conflicts.find_races`:

- ``single-threaded`` (and ARTC with ``program_seq``): replay *is*
  trace order; always eligible.
- ``artc``: eligible iff the dependency graph leaves zero races.
- ``temporally-ordered`` / ``unconstrained``: eligible iff the trace
  has zero cross-thread conflicting pairs at all (races under the
  bare ``thread_seq`` rule set).

A multithreaded non-sequential trace that shares its working directory
(``chdir``/``fchdir``) is refused outright: the replay threads share
one ``cwd`` and relative resolution becomes schedule-dependent.
"""

import hashlib
import json
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.deps import build_dependencies
from repro.core.model import Action, TraceModel
from repro.core.modes import ReplayMode, RuleSet
from repro.lint.conflicts import find_races
from repro.syscalls.emulation import DEFAULT_OPTIONS, EmulationOptions, plan_for
from repro.syscalls.registry import spec_for
from repro.tracing.snapshot import Snapshot
from repro.vfs import flags as F
from repro.vfs.errnos import Errno, VfsError
from repro.vfs.fdtable import FDTable, OpenFile
from repro.vfs.nodes import FileType, Inode, InodeTable, Resolved, resolve

#: Outcome sentinel: the abstract interpreter declines to predict.
UNKNOWN = "UNKNOWN"

#: ``Prediction.to_dict()`` format tag.
PREDICTION_FORMAT = "artc-abstract-v1"

Outcome = Optional[str]  # errno string, None for success, or UNKNOWN
OpResult = Tuple[Any, Optional[str]]


class Widened(Exception):
    """The abstract state jumped to top.

    ``scope`` is ``"suffix"`` when everything *before* the widening
    action is still trustworthy, ``"global"`` when the widening cause
    (raw-fd aliasing) could have perturbed unordered earlier actions
    too.
    """

    def __init__(self, reason: str, scope: str = "suffix") -> None:
        super().__init__(reason)
        self.reason = reason
        self.scope = scope


# ----------------------------------------------------------------------
# the abstract file system
# ----------------------------------------------------------------------


class _NullAlloc(object):
    """Stands in for the storage allocator during initialization."""

    def ensure_blocks(self, ino: int, nblocks: int) -> None:
        return None


class _NullStack(object):
    """Timing-free stand-in for the storage stack: just enough surface
    for :func:`repro.artc.init.initialize` and ``_maybe_free``."""

    def __init__(self) -> None:
        self.alloc = _NullAlloc()

    def warm_metadata(self, inos: Sequence[int]) -> None:
        return None

    def drop_file(self, tid: Optional[int], ino: int) -> None:
        return None


class AbstractFS(object):
    """The concrete-summary element of the abstract domain.

    Mirrors :class:`repro.vfs.filesystem.FileSystem` op for op with all
    timing deleted, sharing its inode table, fd table, and resolver.
    Exposes the same initialization surface (``table``, ``stack``,
    ``lookup``, ``exists``, ``*_now``) so snapshot setup and final-state
    capture run the *same code* as the dynamic side.

    Ops raise :class:`VfsError` for modeled failures and
    :class:`Widened` where the concrete outcome is schedule- or
    crash-dependent; otherwise they return ``(ret, err)``.
    """

    def __init__(self, platform: str = "linux") -> None:
        self.platform = platform
        self.table = InodeTable()
        self.fdt = FDTable()
        self.cwd = InodeTable.ROOT_INO
        self.stack = _NullStack()
        # cb_id -> (ino, is_write); ino -> in-flight write cb_ids
        self._aiocbs: Dict[Any, Tuple[int, bool]] = {}
        self._inflight: Dict[int, Set[Any]] = {}
        self._setup_devfs()

    # -- initialization surface (shared with repro.artc.init) ----------

    def _setup_devfs(self) -> None:
        self.mkdir_now("/dev")
        self.mkdir_now("/dev/shm")
        self.mknod_now("/dev/null", "null")
        self.mknod_now("/dev/zero", "zero")
        self.mknod_now("/dev/random", "random")
        self.mknod_now("/dev/urandom", "urandom")
        self.mknod_now("/dev/tty", "tty")
        self.mkdir_now("/tmp")

    def mkdir_now(self, path: str, mode: int = 0o755) -> Inode:
        res = resolve(self.table, self.cwd, path)
        if res.inode is not None:
            if not res.inode.is_dir:
                raise VfsError(Errno.ENOTDIR)
            return res.inode
        child = self.table.alloc(FileType.DIR, mode)
        res.parent.children[res.name] = child.ino
        res.parent.nlink += 1
        return child

    def makedirs_now(self, path: str) -> Inode:
        parts = [p for p in path.split("/") if p]
        built = ""
        inode = self.table.root
        for part in parts:
            built += "/" + part
            inode = self.mkdir_now(built)
        return inode

    def create_file_now(self, path: str, size: int = 0, mode: int = 0o644) -> Inode:
        res = resolve(self.table, self.cwd, path)
        if res.inode is not None:
            res.inode.size = size
            inode = res.inode
        else:
            inode = self.table.alloc(FileType.REG, mode)
            inode.size = size
            res.parent.children[res.name] = inode.ino
        if size > 0:
            self.stack.alloc.ensure_blocks(inode.ino, (size + 4095) // 4096)
        return inode

    def symlink_now(self, target: str, path: str) -> Inode:
        res = resolve(self.table, self.cwd, path, follow_last=False)
        if res.inode is not None:
            raise VfsError(Errno.EEXIST)
        child = self.table.alloc(FileType.SYMLINK, 0o777)
        child.symlink_target = target
        child.size = len(target)
        res.parent.children[res.name] = child.ino
        return child

    def mknod_now(self, path: str, special: str) -> Inode:
        res = resolve(self.table, self.cwd, path, follow_last=False)
        if res.inode is not None:
            return res.inode
        child = self.table.alloc(FileType.CHAR, 0o666)
        child.special = special
        res.parent.children[res.name] = child.ino
        return child

    def unlink_now(self, path: str) -> None:
        res = resolve(self.table, self.cwd, path, follow_last=False)
        if res.inode is None:
            raise VfsError(Errno.ENOENT)
        if res.inode.is_dir:
            res.parent.children.pop(res.name)
            res.parent.nlink -= 1
        else:
            res.parent.children.pop(res.name)
            res.inode.nlink -= 1
        self._maybe_free(res.inode)

    def exists(self, path: str, follow: bool = True) -> bool:
        try:
            res = self._walk(path, follow_last=follow)
        except VfsError:
            return False
        return res.inode is not None

    def lookup(self, path: str, follow: bool = True) -> Optional[Inode]:
        try:
            res = self._walk(path, follow_last=follow)
        except VfsError:
            return None
        return res.inode

    # -- plumbing ------------------------------------------------------

    def _walk(self, path: str, follow_last: bool = True) -> Resolved:
        return resolve(self.table, self.cwd, path, follow_last=follow_last)

    def _maybe_free(self, inode: Inode) -> None:
        if inode.nlink <= 0 and inode.open_count == 0 and not inode.is_dir:
            if inode.ino in self.table:
                self.table.free(inode.ino)
            self.stack.drop_file(None, inode.ino)

    def _file_of(self, fd: Any, kinds: Tuple[str, ...] = ("file",)) -> OpenFile:
        open_file = self.fdt.get(fd)
        if open_file.kind not in kinds:
            raise VfsError(Errno.EBADF)
        return open_file

    def _inode_of(self, open_file: OpenFile) -> Inode:
        if open_file.ino is None:
            # A pipe descriptor where the concrete op would do
            # ``table.get(None)`` and crash the replay outright.
            raise Widened("pipe-descriptor-crash")
        return self.table.get(open_file.ino)

    def _xattr_missing_errno(self) -> str:
        return Errno.ENODATA if self.platform == "linux" else Errno.ENOATTR

    def _size_guard(self, inode: Inode) -> None:
        """Reading (or overwriting) ``inode.size`` while aio writes are
        in flight is schedule-dependent: widen instead of guessing."""
        if self._inflight.get(inode.ino):
            raise Widened("aio-write-in-flight")

    def _cut(self, inode: Inode, length: int) -> None:
        if length < 0:
            raise VfsError(Errno.EINVAL)
        self._size_guard(inode)
        inode.size = length

    # -- mirrored ops --------------------------------------------------

    def op_open(self, path: str, flags: int, mode: int = 0o644) -> OpResult:
        follow = not (flags & (F.O_NOFOLLOW | F.O_SYMLINK))
        res = self._walk(path, follow_last=follow)
        inode = res.inode
        accmode = flags & F.O_ACCMODE
        wants_write = accmode in (F.O_WRONLY, F.O_RDWR)
        if inode is None:
            if res.name is None:
                raise VfsError(Errno.EISDIR)
            if not (flags & F.O_CREAT):
                raise VfsError(Errno.ENOENT)
            inode = self.table.alloc(FileType.REG, mode)
            res.parent.children[res.name] = inode.ino
        else:
            if (flags & F.O_CREAT) and (flags & F.O_EXCL):
                raise VfsError(Errno.EEXIST)
            if inode.is_symlink and not follow and not (flags & F.O_SYMLINK):
                raise VfsError(Errno.ELOOP)
            if inode.is_dir:
                if wants_write:
                    raise VfsError(Errno.EISDIR)
            elif flags & F.O_DIRECTORY:
                raise VfsError(Errno.ENOTDIR)
            if (flags & F.O_TRUNC) and wants_write and inode.is_reg:
                self._cut(inode, 0)
        kind = "dir" if inode.is_dir else "file"
        open_file = OpenFile(inode.ino, flags, kind=kind, path=path)
        inode.open_count += 1
        fd = self.fdt.alloc(open_file)
        return fd, None

    def op_creat(self, path: str, mode: int = 0o644) -> OpResult:
        return self.op_open(path, F.O_WRONLY | F.O_CREAT | F.O_TRUNC, mode)

    def op_close(self, fd: Any) -> OpResult:
        self.fdt.get(fd)
        last = self.fdt.remove(fd)
        if last is not None and last.kind in ("file", "dir"):
            inode = self.table.get(last.ino)
            inode.open_count -= 1
            self._maybe_free(inode)
        return 0, None

    def op_dup(self, fd: Any) -> OpResult:
        newfd = self.fdt.dup(fd, None)
        open_file = self.fdt.get(newfd)
        if open_file.kind in ("file", "dir"):
            self.table.get(open_file.ino).open_count += 1
        return newfd, None

    def op_rw(self, fd: Any, nbytes: int, offset: Optional[int],
              is_write: bool) -> OpResult:
        open_file = self.fdt.get(fd)
        if open_file.kind == "dir":
            raise VfsError(Errno.EISDIR)
        if open_file.kind.startswith("pipe"):
            if (open_file.kind == "pipe_w") != is_write:
                raise VfsError(Errno.EBADF)
            return nbytes, None
        accmode = open_file.flags & F.O_ACCMODE
        if is_write and accmode == F.O_RDONLY:
            raise VfsError(Errno.EBADF)
        if not is_write and accmode == F.O_WRONLY:
            raise VfsError(Errno.EBADF)
        inode = self.table.get(open_file.ino)
        if inode.ftype == FileType.CHAR:
            # Char-device I/O never touches the shared offset.
            if is_write:
                return nbytes, None
            return (0 if inode.special == "null" else nbytes), None
        at = open_file.offset if offset is None else offset
        if is_write:
            if (open_file.flags & F.O_APPEND) and offset is None:
                self._size_guard(inode)
                at = inode.size
            inode.size = max(inode.size, at + nbytes)
            done = nbytes
        else:
            if offset is None:
                # The shared-offset advance below depends on the size.
                self._size_guard(inode)
            done = max(0, min(nbytes, inode.size - at))
        if offset is None:
            open_file.offset = at + done
        return done, None

    def op_lseek(self, fd: Any, offset: int, whence: int) -> OpResult:
        open_file = self.fdt.get(fd)
        if open_file.kind.startswith("pipe"):
            raise VfsError(Errno.ESPIPE)
        inode = self._inode_of(open_file)
        if whence == F.SEEK_SET:
            new = offset
        elif whence == F.SEEK_CUR:
            new = open_file.offset + offset
        elif whence == F.SEEK_END:
            self._size_guard(inode)
            new = inode.size + offset
        else:
            raise VfsError(Errno.EINVAL)
        if new < 0:
            raise VfsError(Errno.EINVAL)
        open_file.offset = new
        return new, None

    def op_fsync(self, fd: Any) -> OpResult:
        self._file_of(fd, kinds=("file", "dir"))
        return 0, None

    def op_sync(self) -> OpResult:
        return 0, None

    def op_stat(self, path: str, follow: bool = True) -> OpResult:
        res = self._walk(path, follow_last=follow)
        if res.inode is None:
            raise VfsError(Errno.ENOENT)
        return 0, None

    def op_fstat(self, fd: Any) -> OpResult:
        self.fdt.get(fd)
        return 0, None

    def op_readlink(self, path: str) -> OpResult:
        res = self._walk(path, follow_last=False)
        if res.inode is None:
            raise VfsError(Errno.ENOENT)
        if not res.inode.is_symlink:
            raise VfsError(Errno.EINVAL)
        return res.inode.symlink_target, None

    def op_getdents(self, fd: Any) -> OpResult:
        open_file = self._file_of(fd, kinds=("dir",))
        inode = self.table.get(open_file.ino)
        return sorted(inode.children), None

    def op_fstatfs(self, fd: Any) -> OpResult:
        self.fdt.get(fd)
        return 0, None

    def op_mkdir(self, path: str, mode: int = 0o755) -> OpResult:
        res = self._walk(path, follow_last=False)
        if res.inode is not None or res.name is None:
            raise VfsError(Errno.EEXIST)
        child = self.table.alloc(FileType.DIR, mode)
        res.parent.children[res.name] = child.ino
        res.parent.nlink += 1
        return 0, None

    def op_rmdir(self, path: str) -> OpResult:
        res = self._walk(path, follow_last=False)
        if res.inode is None:
            raise VfsError(Errno.ENOENT)
        if not res.inode.is_dir:
            raise VfsError(Errno.ENOTDIR)
        if res.inode.children:
            raise VfsError(Errno.ENOTEMPTY)
        if res.name is None:
            raise VfsError(Errno.EINVAL)
        del res.parent.children[res.name]
        res.parent.nlink -= 1
        self.table.free(res.inode.ino)
        return 0, None

    def op_unlink(self, path: str) -> OpResult:
        res = self._walk(path, follow_last=False)
        if res.inode is None:
            raise VfsError(Errno.ENOENT)
        if res.inode.is_dir:
            raise VfsError(Errno.EISDIR)
        del res.parent.children[res.name]
        res.inode.nlink -= 1
        self._maybe_free(res.inode)
        return 0, None

    def op_rename(self, old: str, new: str) -> OpResult:
        src = self._walk(old, follow_last=False)
        if src.inode is None:
            raise VfsError(Errno.ENOENT)
        dst = self._walk(new, follow_last=False)
        if dst.name is None and dst.inode is not src.inode:
            raise VfsError(Errno.EEXIST)
        if src.inode.is_dir:
            probe = dst.parent
            seen: Set[int] = set()
            while probe.ino not in seen:
                seen.add(probe.ino)
                if probe is src.inode:
                    raise VfsError(Errno.EINVAL)
                parent = self._parent_of(probe)
                if parent is None or parent is probe:
                    break
                probe = parent
        if dst.inode is not None:
            if dst.inode is src.inode:
                return 0, None
            if dst.inode.is_dir:
                if not src.inode.is_dir:
                    raise VfsError(Errno.EISDIR)
                if dst.inode.children:
                    raise VfsError(Errno.ENOTEMPTY)
                del dst.parent.children[dst.name]
                dst.parent.nlink -= 1
                self.table.free(dst.inode.ino)
            else:
                if src.inode.is_dir:
                    raise VfsError(Errno.ENOTDIR)
                del dst.parent.children[dst.name]
                dst.inode.nlink -= 1
                self._maybe_free(dst.inode)
        del src.parent.children[src.name]
        dst.parent.children[dst.name] = src.inode.ino
        if src.inode.is_dir and src.parent is not dst.parent:
            src.parent.nlink -= 1
            dst.parent.nlink += 1
        return 0, None

    def _parent_of(self, inode: Inode) -> Optional[Inode]:
        for candidate in list(self.table._inodes.values()):
            if candidate.is_dir and candidate.children:
                if inode.ino in candidate.children.values():
                    return candidate
        return None

    def op_link(self, target: str, path: str) -> OpResult:
        src = self._walk(target)
        if src.inode is None:
            raise VfsError(Errno.ENOENT)
        if src.inode.is_dir:
            raise VfsError(Errno.EPERM)
        dst = self._walk(path, follow_last=False)
        if dst.inode is not None:
            raise VfsError(Errno.EEXIST)
        dst.parent.children[dst.name] = src.inode.ino
        src.inode.nlink += 1
        return 0, None

    def op_symlink(self, target: str, path: str) -> OpResult:
        dst = self._walk(path, follow_last=False)
        if dst.inode is not None:
            raise VfsError(Errno.EEXIST)
        child = self.table.alloc(FileType.SYMLINK, 0o777)
        child.symlink_target = target
        child.size = len(target)
        dst.parent.children[dst.name] = child.ino
        return 0, None

    def op_truncate(self, path: str, length: int) -> OpResult:
        res = self._walk(path)
        if res.inode is None:
            raise VfsError(Errno.ENOENT)
        if res.inode.is_dir:
            raise VfsError(Errno.EISDIR)
        self._cut(res.inode, length)
        return 0, None

    def op_ftruncate(self, fd: Any, length: int) -> OpResult:
        open_file = self._file_of(fd)
        inode = self.table.get(open_file.ino)
        self._cut(inode, length)
        return 0, None

    def op_chmod(self, path: str, mode: int) -> OpResult:
        res = self._walk(path)
        if res.inode is None:
            raise VfsError(Errno.ENOENT)
        res.inode.mode = mode
        return 0, None

    def op_fchmod(self, fd: Any, mode: int) -> OpResult:
        open_file = self.fdt.get(fd)
        self._inode_of(open_file).mode = mode
        return 0, None

    def op_touch_path(self, path: str) -> OpResult:
        res = self._walk(path)
        if res.inode is None:
            raise VfsError(Errno.ENOENT)
        return 0, None

    def op_futimes(self, fd: Any) -> OpResult:
        self.fdt.get(fd)
        return 0, None

    def op_chdir(self, path: str) -> OpResult:
        res = self._walk(path)
        if res.inode is None:
            raise VfsError(Errno.ENOENT)
        if not res.inode.is_dir:
            raise VfsError(Errno.ENOTDIR)
        self.cwd = res.inode.ino
        return 0, None

    def op_fchdir(self, fd: Any) -> OpResult:
        open_file = self.fdt.get(fd)
        if open_file.ino is None:
            # Concrete replay sets cwd=None and crashes at the next walk.
            raise Widened("pipe-descriptor-crash")
        self.cwd = open_file.ino
        return 0, None

    def op_getcwd(self) -> OpResult:
        return "/", None

    def op_fadvise(self, fd: Any) -> OpResult:
        self._file_of(fd)
        return 0, None

    def op_fallocate(self, fd: Any, offset: int, length: int) -> OpResult:
        open_file = self._file_of(fd)
        inode = self.table.get(open_file.ino)
        # max() commutes with in-flight aio size maxes: no widening.
        inode.size = max(inode.size, offset + length)
        return 0, None

    def op_flock(self, fd: Any) -> OpResult:
        self.fdt.get(fd)
        return 0, None

    def op_mmap(self, fd: Any, offset: int, length: int) -> OpResult:
        if fd == -1:
            return 0x7F0000000000, None
        open_file = self._file_of(fd)
        inode = self.table.get(open_file.ino)
        return 0x7F0000000000 + inode.ino, None

    def op_trivial(self) -> OpResult:
        return 0, None

    def op_pipe(self) -> OpResult:
        read_end = self.fdt.alloc(OpenFile(None, F.O_RDONLY, kind="pipe_r"))
        write_end = self.fdt.alloc(OpenFile(None, F.O_WRONLY, kind="pipe_w"))
        return (read_end, write_end), None

    def op_shm_open(self, name: str, flags: int, mode: int) -> OpResult:
        return self.op_open("/dev/shm/" + name.lstrip("/"), flags, mode)

    def op_shm_unlink(self, name: str) -> OpResult:
        return self.op_unlink("/dev/shm/" + name.lstrip("/"))

    def op_getxattr(self, path: str, name: str, follow: bool = True) -> OpResult:
        res = self._walk(path, follow_last=follow)
        if res.inode is None:
            raise VfsError(Errno.ENOENT)
        return self._xattr_get(res.inode, name)

    def op_fgetxattr(self, fd: Any, name: str) -> OpResult:
        open_file = self._file_of(fd, kinds=("file", "dir"))
        return self._xattr_get(self.table.get(open_file.ino), name)

    def _xattr_get(self, inode: Inode, name: str) -> OpResult:
        if name not in inode.xattrs:
            return -1, self._xattr_missing_errno()
        return inode.xattrs[name], None

    def op_setxattr(self, path: str, name: str, size: int,
                    follow: bool = True) -> OpResult:
        res = self._walk(path, follow_last=follow)
        if res.inode is None:
            raise VfsError(Errno.ENOENT)
        res.inode.xattrs[name] = size
        return 0, None

    def op_fsetxattr(self, fd: Any, name: str, size: int) -> OpResult:
        open_file = self._file_of(fd, kinds=("file", "dir"))
        self.table.get(open_file.ino).xattrs[name] = size
        return 0, None

    def op_listxattr(self, path: str, follow: bool = True) -> OpResult:
        res = self._walk(path, follow_last=follow)
        if res.inode is None:
            raise VfsError(Errno.ENOENT)
        return sorted(res.inode.xattrs), None

    def op_flistxattr(self, fd: Any) -> OpResult:
        open_file = self._file_of(fd, kinds=("file", "dir"))
        return sorted(self.table.get(open_file.ino).xattrs), None

    def op_removexattr(self, path: str, name: str,
                       follow: bool = True) -> OpResult:
        res = self._walk(path, follow_last=follow)
        if res.inode is None:
            raise VfsError(Errno.ENOENT)
        if name not in res.inode.xattrs:
            return -1, self._xattr_missing_errno()
        del res.inode.xattrs[name]
        return 0, None

    def op_fremovexattr(self, fd: Any, name: str) -> OpResult:
        open_file = self._file_of(fd, kinds=("file", "dir"))
        inode = self.table.get(open_file.ino)
        if name not in inode.xattrs:
            return -1, self._xattr_missing_errno()
        del inode.xattrs[name]
        return 0, None

    def op_exchangedata(self, path1: str, path2: str) -> OpResult:
        a = self._walk(path1)
        b = self._walk(path2)
        if a.inode is None or b.inode is None:
            raise VfsError(Errno.ENOENT)
        if not (a.inode.is_reg and b.inode.is_reg):
            raise VfsError(Errno.EINVAL)
        self._size_guard(a.inode)
        self._size_guard(b.inode)
        a.inode.size, b.inode.size = b.inode.size, a.inode.size
        return 0, None

    def op_aio_submit(self, cb_id: Any, fd: Any, nbytes: int, offset: int,
                      is_write: bool) -> OpResult:
        open_file = self._file_of(fd)
        inode = self.table.get(open_file.ino)
        self._aiocbs[cb_id] = (inode.ino, is_write)
        if is_write:
            # The completion's only state effect commutes (max), so it
            # can be applied at submit time; size *reads* between here
            # and the matching aio_suspend widen via _size_guard.
            inode.size = max(inode.size, offset + nbytes)
            self._inflight.setdefault(inode.ino, set()).add(cb_id)
        return 0, None

    def op_aio_error(self, cb_id: Any) -> OpResult:
        if cb_id not in self._aiocbs:
            return -1, Errno.EINVAL
        return 0, None

    def op_aio_return(self, cb_id: Any) -> OpResult:
        block = self._aiocbs.pop(cb_id, None)
        if block is None:
            return -1, Errno.EINVAL
        return 0, None

    def op_aio_suspend(self, cb_ids: Sequence[Any]) -> OpResult:
        for cb_id in cb_ids:
            block = self._aiocbs.get(cb_id)
            if block is not None and block[1]:
                pending = self._inflight.get(block[0])
                if pending is not None:
                    pending.discard(cb_id)
                    if not pending:
                        del self._inflight[block[0]]
        return 0, None

    def op_lio_listio(self, raw_ops: Sequence[Dict[str, Any]]) -> OpResult:
        # Eager unpack, mirroring execute.py: a malformed op dict raises
        # KeyError before any submission (-> replay crash -> widening).
        ops = [
            (op["aiocb"], op["fd"], op["nbytes"], op.get("offset", 0),
             op.get("is_write", False))
            for op in raw_ops
        ]
        for aiocb, fd, nbytes, offset, is_write in ops:
            try:
                ret, err = self.op_aio_submit(aiocb, fd, nbytes, offset, is_write)
            except VfsError as exc:
                ret, err = -1, exc.errno
            if err is not None:
                return ret, err
        return 0, None


# ----------------------------------------------------------------------
# kind dispatch, mirroring repro.syscalls.execute.HANDLERS
# ----------------------------------------------------------------------


def _flags_of(args: Dict[str, Any]) -> int:
    value = args.get("flags", 0)
    if isinstance(value, str):
        value = F.parse_flags(value)
    return value


def _k_open(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_open(args["path"], _flags_of(args), args.get("mode", 0o644))


def _k_creat(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_creat(args["path"], args.get("mode", 0o644))


def _k_close(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_close(args["fd"])


def _k_read(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_rw(args["fd"], args["nbytes"], None, False)


def _k_pread(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_rw(args["fd"], args["nbytes"], args["offset"], False)


def _k_write(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_rw(args["fd"], args["nbytes"], None, True)


def _k_pwrite(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_rw(args["fd"], args["nbytes"], args["offset"], True)


def _k_lseek(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_lseek(args["fd"], args["offset"], args.get("whence", F.SEEK_SET))


def _k_fsync(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_fsync(args["fd"])


def _k_sync(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_sync()


def _k_stat(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_stat(args["path"], follow=True)


def _k_lstat(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_stat(args["path"], follow=False)


def _k_fstat(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_fstat(args["fd"])


def _k_access(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_touch_path(args["path"])


def _k_readlink(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_readlink(args["path"])


def _k_statfs(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_touch_path(args["path"])


def _k_fstatfs(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_fstatfs(args["fd"])


def _k_statfs_global(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_touch_path("/")


def _k_mkdir(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_mkdir(args["path"], args.get("mode", 0o755))


def _k_rmdir(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_rmdir(args["path"])


def _k_getdents(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_getdents(args["fd"])


def _k_unlink(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_unlink(args["path"])


def _k_rename(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_rename(args["old"], args["new"])


def _k_link(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_link(args["target"], args["path"])


def _k_symlink(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_symlink(args["target"], args["path"])


def _k_truncate(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_truncate(args["path"], args["length"])


def _k_ftruncate(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_ftruncate(args["fd"], args["length"])


def _k_chmod(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_chmod(args["path"], args.get("mode", 0o644))


def _k_fchmod(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_fchmod(args["fd"], args.get("mode", 0o644))


def _k_chown(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_touch_path(args["path"])


def _k_futimes(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_futimes(args["fd"])


def _k_dup(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_dup(args["fd"])


def _k_fcntl(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    cmd = args.get("cmd", "F_GETFL")
    fd = args["fd"]
    if cmd == "F_FULLFSYNC":
        return fs.op_fsync(fd)
    if cmd in ("F_DUPFD", "F_DUPFD_CLOEXEC"):
        return fs.op_dup(fd)
    if cmd == "F_PREALLOCATE":
        return fs.op_fallocate(fd, 0, args.get("arg", 0) or 0)
    if cmd == "F_RDADVISE":
        return fs.op_fadvise(fd)
    return fs.op_flock(fd)


def _k_flock(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_flock(args["fd"])


def _k_fadvise(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_fadvise(args["fd"])


def _k_fallocate(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_fallocate(args["fd"], args.get("offset", 0), args["length"])


def _k_mmap(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_mmap(args.get("fd", -1), args.get("offset", 0), args["length"])


def _k_trivial(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_trivial()


def _k_pipe(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_pipe()


def _k_shm_open(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_shm_open(
        args["name"], _flags_of(args) or (F.O_RDWR | F.O_CREAT),
        args.get("mode", 0o600),
    )


def _k_shm_unlink(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_shm_unlink(args["name"])


def _k_chdir(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_chdir(args["path"])


def _k_fchdir(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_fchdir(args["fd"])


def _k_getcwd(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_getcwd()


def _k_getattrlist(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_stat(args["path"], follow=True)


def _k_setattrlist(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_touch_path(args["path"])


def _k_fgetattrlist(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_fstat(args["fd"])


def _k_getattrlistbulk(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_getdents(args["fd"])


def _k_exchangedata(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_exchangedata(args["path1"], args["path2"])


def _k_getxattr(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_getxattr(args["path"], args["xname"])


def _k_lgetxattr(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_getxattr(args["path"], args["xname"], follow=False)


def _k_fgetxattr(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_fgetxattr(args["fd"], args["xname"])


def _k_setxattr(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_setxattr(args["path"], args["xname"], args.get("size", 16))


def _k_lsetxattr(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_setxattr(
        args["path"], args["xname"], args.get("size", 16), follow=False
    )


def _k_fsetxattr(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_fsetxattr(args["fd"], args["xname"], args.get("size", 16))


def _k_listxattr(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_listxattr(args["path"])


def _k_llistxattr(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_listxattr(args["path"], follow=False)


def _k_flistxattr(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_flistxattr(args["fd"])


def _k_removexattr(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_removexattr(args["path"], args["xname"])


def _k_lremovexattr(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_removexattr(args["path"], args["xname"], follow=False)


def _k_fremovexattr(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_fremovexattr(args["fd"], args["xname"])


def _k_aio_read(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_aio_submit(
        args["aiocb"], args["fd"], args["nbytes"], args.get("offset", 0), False
    )


def _k_aio_write(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_aio_submit(
        args["aiocb"], args["fd"], args["nbytes"], args.get("offset", 0), True
    )


def _k_aio_error(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_aio_error(args["aiocb"])


def _k_aio_return(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_aio_return(args["aiocb"])


def _k_aio_suspend(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_aio_suspend(args["aiocbs"])


def _k_lio_listio(fs: AbstractFS, args: Dict[str, Any]) -> OpResult:
    return fs.op_lio_listio(args.get("ops", []))


_DISPATCH: Dict[str, Callable[[AbstractFS, Dict[str, Any]], OpResult]] = {
    "open": _k_open,
    "creat": _k_creat,
    "close": _k_close,
    "read": _k_read,
    "pread": _k_pread,
    "write": _k_write,
    "pwrite": _k_pwrite,
    "lseek": _k_lseek,
    "fsync": _k_fsync,
    "fdatasync": _k_fsync,
    "sync": _k_sync,
    "stat": _k_stat,
    "lstat": _k_lstat,
    "fstat": _k_fstat,
    "access": _k_access,
    "readlink": _k_readlink,
    "statfs": _k_statfs,
    "fstatfs": _k_fstatfs,
    "statfs_global": _k_statfs_global,
    "mkdir": _k_mkdir,
    "rmdir": _k_rmdir,
    "getdents": _k_getdents,
    "unlink": _k_unlink,
    "rename": _k_rename,
    "link": _k_link,
    "symlink": _k_symlink,
    "truncate": _k_truncate,
    "ftruncate": _k_ftruncate,
    "chmod": _k_chmod,
    "fchmod": _k_fchmod,
    "chown": _k_chown,
    "fchown": _k_futimes,
    "utimes": _k_chown,
    "futimes": _k_futimes,
    "dup": _k_dup,
    "dup2": _k_dup,
    "fcntl": _k_fcntl,
    "flock": _k_flock,
    "fadvise": _k_fadvise,
    "fallocate": _k_fallocate,
    "mmap": _k_mmap,
    "munmap": _k_trivial,
    "msync": _k_trivial,
    "pipe": _k_pipe,
    "shm_open": _k_shm_open,
    "shm_unlink": _k_shm_unlink,
    "chdir": _k_chdir,
    "fchdir": _k_fchdir,
    "getcwd": _k_getcwd,
    "getattrlist": _k_getattrlist,
    "setattrlist": _k_setattrlist,
    "fgetattrlist": _k_fgetattrlist,
    "fsetattrlist": _k_futimes,
    "getattrlistbulk": _k_getattrlistbulk,
    "getdirentriesattr": _k_getattrlistbulk,
    "exchangedata": _k_exchangedata,
    "stat_extended": _k_stat,
    "lstat_extended": _k_lstat,
    "fstat_extended": _k_fstat,
    "getxattr": _k_getxattr,
    "lgetxattr": _k_lgetxattr,
    "fgetxattr": _k_fgetxattr,
    "setxattr": _k_setxattr,
    "lsetxattr": _k_lsetxattr,
    "fsetxattr": _k_fsetxattr,
    "listxattr": _k_listxattr,
    "llistxattr": _k_llistxattr,
    "flistxattr": _k_flistxattr,
    "removexattr": _k_removexattr,
    "lremovexattr": _k_lremovexattr,
    "fremovexattr": _k_fremovexattr,
    "aio_read": _k_aio_read,
    "aio_write": _k_aio_write,
    "aio_error": _k_aio_error,
    "aio_return": _k_aio_return,
    "aio_suspend": _k_aio_suspend,
    "aio_cancel": _k_aio_error,
    "lio_listio": _k_lio_listio,
}


# ----------------------------------------------------------------------
# the interpreter
# ----------------------------------------------------------------------


class _AbstractRun(object):
    """One trace-order abstract interpretation of a benchmark,
    mirroring the replayer's per-action pipeline
    (``_translate`` -> emulation plan -> steps -> ``_update_maps``)."""

    def __init__(self, benchmark: Any, target: str,
                 emulation: EmulationOptions, o_excl_fix: bool,
                 sequential: bool) -> None:
        self.fs = AbstractFS(platform=target)
        self.source: str = benchmark.platform
        self.target = target
        self.emulation = emulation
        self.o_excl_fix = o_excl_fix
        self.sequential = sequential
        self.fd_map: Dict[Tuple[Any, int], Any] = {}

    def _raw_fd(self, raw: Any) -> None:
        """An fd argument is about to be used untranslated (no mapping
        recorded, or no annotation).  Fine when it cannot alias a live
        replay descriptor, or when the abstract fd table provably
        mirrors the replay's; otherwise widen globally -- aliasing
        side effects could perturb even unordered earlier actions."""
        if isinstance(raw, int) and raw < FDTable.FIRST_FD:
            return  # std streams / -1: absent from every replay fd table
        if self.sequential:
            return  # single replay thread: fd numbering mirrors exactly
        raise Widened("raw-fd-aliasing", scope="global")

    def _translate(self, action: Action) -> Dict[str, Any]:
        record = action.record
        args = dict(record.args)
        ann = action.ann
        if "fd" in ann and "fd" in args:
            key = (args["fd"], ann["fd"])
            if key in self.fd_map:
                args["fd"] = self.fd_map[key]
            else:
                self._raw_fd(args["fd"])
        elif "fd" in args:
            self._raw_fd(args["fd"])
        if "aiocb" in ann and "aiocb" in args:
            args["aiocb"] = "%s@%d" % (args["aiocb"], ann["aiocb"])
        if "aiocb_gens" in ann and "aiocbs" in args:
            args["aiocbs"] = [
                "%s@%d" % (cb, gen)
                for cb, gen in zip(args["aiocbs"], ann["aiocb_gens"])
            ]
        if self.o_excl_fix and record.ok and isinstance(args.get("flags"), str):
            if "O_EXCL" in args["flags"] and "O_CREAT" in args["flags"]:
                args["flags"] = "|".join(
                    part for part in args["flags"].split("|") if part != "O_EXCL"
                )
        return args

    def _update_maps(self, action: Action, ret: Any, err: Optional[str]) -> None:
        if err is not None:
            return
        record = action.record
        ann = action.ann
        if "ret_fd" in ann and isinstance(record.ret, int):
            self.fd_map[(record.ret, ann["ret_fd"])] = ret
        if "newfd_gen" in ann:
            self.fd_map[(record.args["newfd"], ann["newfd_gen"])] = ret
        if "ret_fds" in ann and isinstance(record.ret, (list, tuple)):
            for trace_fd, gen, actual in zip(record.ret, ann["ret_fds"], ret):
                self.fd_map[(trace_fd, gen)] = actual

    def play(self, action: Action) -> Optional[str]:
        """Interpret one action; returns the predicted errno (or None
        for success).  Raises :class:`Widened` when the concrete
        outcome is not statically determined."""
        record = action.record
        try:
            args = self._translate(action)
        except Widened:
            raise
        except Exception as exc:
            # The concrete replayer would crash the same way.
            raise Widened("translate-failed: %r" % (exc,))
        name = record.name
        try:
            if spec_for(name).kind == "dup2":
                name = "dup"
            plan = plan_for(name, args, self.source, self.target, self.emulation)
        except Exception as exc:
            raise Widened("emulation-unplannable: %r" % (exc,))
        if not plan:
            return None  # META: (0, None), no map updates
        ret: Any = 0
        err: Optional[str] = None
        for step_name, step_args in plan:
            try:
                kind = spec_for(step_name).kind
            except Exception as exc:
                raise Widened("unknown-step: %r" % (exc,))
            handler = _DISPATCH.get(kind)
            if handler is None:
                raise Widened("no-abstract-handler: %s" % kind)
            try:
                ret, err = handler(self.fs, step_args)
            except VfsError as exc:
                ret, err = -1, exc.errno
            except Widened:
                raise
            except Exception as exc:
                # Missing argument / malformed value: the executor's
                # eager-unpack turns these into a ReplayError crash.
                raise Widened("step-would-crash: %s: %r" % (step_name, exc))
            if err is not None:
                break
        try:
            self._update_maps(action, ret, err)
        except Exception as exc:
            raise Widened("update-maps-failed: %r" % (exc,))
        return err


# ----------------------------------------------------------------------
# predictions
# ----------------------------------------------------------------------


class Prediction(object):
    """A per-mode static prediction.

    ``status`` is ``"exact"`` (digest and every outcome binding) or
    ``"unknown"``.  ``outcomes[i]`` is the predicted errno of action
    ``i`` -- ``None`` for success, an errno string for a modeled
    failure, or :data:`UNKNOWN`.  ``digest`` is None unless exact.
    ``widened_at`` is the action index where interpretation widened
    (None when it ran to completion or never started)."""

    __slots__ = ("mode", "target", "status", "reason", "digest",
                 "outcomes", "widened_at")

    def __init__(self, mode: str, target: str, status: str,
                 reason: Optional[str], digest: Optional[str],
                 outcomes: List[str], widened_at: Optional[int]) -> None:
        self.mode = mode
        self.target = target
        self.status = status
        self.reason = reason
        self.digest = digest
        self.outcomes = outcomes
        self.widened_at = widened_at

    @property
    def n_unknown(self) -> int:
        return sum(1 for out in self.outcomes if out == UNKNOWN)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": PREDICTION_FORMAT,
            "mode": self.mode,
            "target": self.target,
            "status": self.status,
            "reason": self.reason,
            "digest": self.digest,
            "actions": len(self.outcomes),
            "unknown": self.n_unknown,
            "widened_at": self.widened_at,
            "outcomes": list(self.outcomes),
        }

    def __repr__(self) -> str:
        return "<Prediction %s %s unknown=%d/%d>" % (
            self.mode, self.status, self.n_unknown, len(self.outcomes))


def _unknown(mode: str, target: str, n: int, reason: str) -> Prediction:
    return Prediction(mode, target, "unknown", reason, None,
                      [UNKNOWN] * n, None)


def _model_actions(benchmark: Any) -> List[Action]:
    """Touch-annotated actions (``.artcb``-loaded benchmarks carry
    empty touch lists; the race scan needs real ones). Cached."""
    cached = getattr(benchmark, "_abstract_model_actions", None)
    if cached is None:
        cached = TraceModel(benchmark.to_trace(), benchmark.snapshot).actions
        benchmark._abstract_model_actions = cached
    return cached


def _mode_races(benchmark: Any, mode: str) -> Optional[int]:
    """Unordered conflicting pairs under ``mode``'s constraints, or
    None when the scan was budget-truncated (treated as unknown)."""
    cache: Dict[str, Optional[int]] = getattr(benchmark, "_abstract_races", None) or {}
    if mode in cache:
        return cache[mode]
    actions = _model_actions(benchmark)
    if mode == ReplayMode.ARTC:
        graph = benchmark.graph
    else:  # TEMPORAL / UNCONSTRAINED: only thread order is guaranteed
        graph = build_dependencies(actions, RuleSet.unconstrained())
    scan = find_races(actions, graph, max_findings=0)
    races: Optional[int] = None if scan.truncated else scan.n_races
    cache[mode] = races
    benchmark._abstract_races = cache
    return races


def _has_cwd_ops(benchmark: Any) -> bool:
    for action in benchmark.actions:
        try:
            if spec_for(action.record.name).kind in ("chdir", "fchdir"):
                return True
        except Exception:
            continue  # unregistered call: interpretation widens there
    return False


def predict(benchmark: Any, mode: str, target: Optional[str] = None,
            emulation: Optional[EmulationOptions] = None,
            o_excl_fix: bool = True) -> Prediction:
    """Predict replay outcomes of ``benchmark`` under ``mode`` against
    a ``target`` OS flavor (default: self-replay on the trace's own
    platform), without running the simulator."""
    if mode not in ReplayMode.ALL:
        raise ValueError("unknown replay mode: %r" % (mode,))
    target = target or benchmark.platform
    options = emulation if emulation is not None else DEFAULT_OPTIONS
    actions = benchmark.actions
    n = len(actions)
    multithreaded = len(benchmark.threads) > 1
    sequential = (
        mode == ReplayMode.SINGLE
        or (mode == ReplayMode.ARTC and benchmark.graph.program_seq)
        or not multithreaded
    )
    if not sequential:
        races = _mode_races(benchmark, mode)
        if races is None:
            return _unknown(mode, target, n, "race-scan-truncated")
        if races:
            return _unknown(mode, target, n, "unordered-races: %d" % races)
        if _has_cwd_ops(benchmark):
            return _unknown(mode, target, n, "shared-cwd")
    run = _AbstractRun(benchmark, target, options, o_excl_fix, sequential)
    if benchmark.snapshot is not None:
        try:
            from repro.artc.init import initialize

            initialize(run.fs, benchmark.snapshot)
        except Exception as exc:
            return _unknown(mode, target, n, "init-failed: %r" % (exc,))
    outcomes: List[str] = []
    widened_at: Optional[int] = None
    reason: Optional[str] = None
    for action in actions:
        try:
            err = run.play(action)
        except Widened as wid:
            widened_at = action.idx
            reason = wid.reason
            if wid.scope == "global":
                outcomes = []
            break
        outcomes.append(err)
    while len(outcomes) < n:
        outcomes.append(UNKNOWN)
    if widened_at is None:
        return Prediction(mode, target, "exact", None,
                          digest_of_entries(capture_entries(run.fs)),
                          outcomes, None)
    return Prediction(mode, target, "unknown", reason, None,
                      outcomes, widened_at)


def predict_all(benchmark: Any, modes: Optional[Sequence[str]] = None,
                target: Optional[str] = None) -> List[Prediction]:
    """One prediction per replay mode (default: all four)."""
    return [predict(benchmark, mode, target=target)
            for mode in (modes or ReplayMode.ALL)]


# ----------------------------------------------------------------------
# digests
# ----------------------------------------------------------------------


def capture_entries(fs: Any) -> List[Dict[str, Any]]:
    """Final-state snapshot entries of any FileSystem-shaped object
    (the concrete simulator's or an :class:`AbstractFS`) -- the same
    ``Snapshot.capture`` walk on both sides."""
    return [entry.to_dict() for entry in Snapshot.capture(fs).entries]


def digest_of_entries(entries: Sequence[Any]) -> str:
    """Canonical content digest of a final FS state."""
    items = [entry if isinstance(entry, dict) else entry.to_dict()
             for entry in entries]
    items.sort(key=lambda item: str(item.get("path", "")))
    blob = json.dumps(items, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def fs_digest(fs: Any) -> str:
    """Digest of a live file system's current state."""
    return digest_of_entries(capture_entries(fs))
