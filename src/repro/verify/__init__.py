"""Static verification for replay (``artc verify``).

Two engines over one compiled benchmark:

- **translation validation** (:mod:`repro.verify.transval`): prove the
  replay cores' specializations -- gate elision, batched release,
  bound constants, conformance coverage -- faithful to the scoreboard
  semantics, and emit a machine-checkable :class:`Certificate` per
  (benchmark, core);
- **abstract replay** (:mod:`repro.verify.abstract`): predict per-mode
  errno outcomes and the final FS-state digest without running the
  simulator, reporting ``UNKNOWN`` instead of ever guessing.

:func:`verify_benchmark` runs both, folds the results into the lint
reporting machinery (:class:`repro.lint.report.LintReport`), and --
with ``dynamic=True`` -- cross-checks every exact prediction against a
real replay, turning any contradiction into an ``error`` finding.
"""

from typing import Any, Dict, List, Optional, Sequence

from repro.core.modes import ReplayMode
from repro.lint.report import (
    ERROR,
    INFO,
    Finding,
    LintReport,
    PassResult,
)
from repro.verify.abstract import (
    UNKNOWN,
    AbstractFS,
    Prediction,
    capture_entries,
    digest_of_entries,
    fs_digest,
    predict,
    predict_all,
)
from repro.verify.transval import CORES, Certificate, certify, plan_pass

__all__ = [
    "UNKNOWN",
    "AbstractFS",
    "CORES",
    "Certificate",
    "Prediction",
    "VerifyResult",
    "capture_entries",
    "certify",
    "cross_check",
    "digest_of_entries",
    "fs_digest",
    "plan_pass",
    "predict",
    "predict_all",
    "verify_benchmark",
]


class VerifyResult(object):
    """Aggregate outcome of one ``artc verify`` run."""

    __slots__ = ("report", "certificates", "predictions")

    def __init__(self, report: LintReport,
                 certificates: Sequence[Certificate],
                 predictions: Sequence[Prediction]) -> None:
        self.report = report
        self.certificates = list(certificates)
        self.predictions = list(predictions)

    @property
    def ok(self) -> bool:
        return bool(self.report.clean)

    @property
    def exit_code(self) -> int:
        return int(self.report.exit_code)

    def to_dict(self) -> Dict[str, Any]:
        out = self.report.to_dict()
        out["certificates"] = [c.to_dict() for c in self.certificates]
        out["predictions"] = [p.to_dict() for p in self.predictions]
        return out

    def __repr__(self) -> str:
        return "<VerifyResult %s: %d certificates, %d predictions>" % (
            "ok" if self.ok else "REJECTED",
            len(self.certificates), len(self.predictions),
        )


def cross_check(benchmark: Any, prediction: Prediction, platform: Any,
                seed: int = 0, max_findings: int = 25) -> List[Finding]:
    """Replay ``benchmark`` dynamically under ``prediction.mode`` and
    report every place the static prediction *contradicts* reality.

    ``UNKNOWN`` outcomes and skipped dynamic actions are exempt by
    design; everything else -- per-action errnos and the final-state
    digest -- must agree exactly, so any finding here is a soundness
    bug in the abstract interpreter (or a replay bug it just caught).
    """
    from repro.artc.init import initialize
    from repro.artc.replayer import ReplayConfig, replay

    fs = platform.make_fs(seed=seed)
    if prediction.target != fs.platform:
        prediction = predict(benchmark, prediction.mode, target=fs.platform)
    if benchmark.snapshot is not None:
        initialize(fs, benchmark.snapshot)
    findings: List[Finding] = []
    try:
        report = replay(benchmark, fs, ReplayConfig(mode=prediction.mode))
    except Exception as exc:
        if prediction.status == "exact":
            findings.append(Finding(
                "abstract-dynamic-crash", ERROR,
                "mode %s: prediction is exact but dynamic replay "
                "crashed: %r" % (prediction.mode, exc),
                detail={"mode": prediction.mode, "error": repr(exc)},
            ))
        return findings
    for result in report.results:
        out = prediction.outcomes[result.idx]
        if out == UNKNOWN or result.skipped:
            continue
        if out != result.err:
            if len(findings) < max_findings:
                findings.append(Finding(
                    "abstract-errno-contradiction", ERROR,
                    "mode %s: action #%d (%s) predicted %s but dynamic "
                    "replay returned %s"
                    % (prediction.mode, result.idx, result.name,
                       out or "success", result.err or "success"),
                    actions=(result.idx,),
                    detail={"mode": prediction.mode,
                            "predicted": out, "dynamic": result.err},
                ))
    if prediction.digest is not None:
        dynamic_digest = fs_digest(fs)
        if dynamic_digest != prediction.digest:
            findings.append(Finding(
                "abstract-digest-contradiction", ERROR,
                "mode %s: predicted final-state digest %s.. but dynamic "
                "replay left %s.."
                % (prediction.mode, prediction.digest[:16],
                   dynamic_digest[:16]),
                detail={"mode": prediction.mode,
                        "predicted": prediction.digest,
                        "dynamic": dynamic_digest},
            ))
    return findings


def verify_benchmark(benchmark: Any, cores: Optional[Sequence[str]] = None,
                     modes: Optional[Sequence[str]] = None,
                     dynamic: bool = False, platform: Any = None,
                     seed: int = 0,
                     max_findings: int = 25,
                     jobs: Optional[int] = None) -> VerifyResult:
    """Run both verification engines over ``benchmark``.

    - ``cores``: replay cores to certify (default: all three);
    - ``modes``: replay modes to predict (default: all four);
    - ``dynamic``/``platform``/``seed``: when ``dynamic`` is true,
      cross-check each prediction against a real replay on
      ``platform`` (required; a ``repro.bench`` platform object);
    - ``jobs``: additionally certify the shard core's partition plan
      for that worker count (:mod:`repro.verify.shardcheck`).

    Certificate violations and cross-check contradictions are
    ``error`` findings (exit code 1); ``UNKNOWN`` predictions are
    advisory ``info`` findings and never fail the run.
    """
    if dynamic and platform is None:
        raise ValueError("dynamic cross-check requires a platform")
    report = LintReport(label=benchmark.label or "")
    certificates: List[Certificate] = []
    for core in (cores or CORES):
        cert = certify(benchmark, core, max_findings=max_findings)
        certificates.append(cert)
        report.add(PassResult(
            "transval:%s" % core, cert.findings,
            {"obligations": cert.n_obligations,
             "certified": int(cert.ok)},
        ))
    if jobs:
        from repro.verify.shardcheck import shard_pass

        report.add(shard_pass(benchmark, jobs, max_findings=max_findings))

    target: Optional[str] = None
    if dynamic:
        target = platform.make_fs(seed=seed).platform
    predictions = [
        predict(benchmark, mode, target=target)
        for mode in sorted(modes or ReplayMode.ALL)
    ]
    findings: List[Finding] = []
    for pred in predictions:
        if pred.status == "exact":
            continue
        findings.append(Finding(
            "abstract-unknown", INFO,
            "mode %s: prediction widened to UNKNOWN (%s) for %d/%d "
            "actions" % (pred.mode, pred.reason, pred.n_unknown,
                         len(pred.outcomes)),
            detail={"mode": pred.mode, "reason": pred.reason,
                    "widened_at": pred.widened_at},
        ))
    if dynamic:
        for pred in predictions:
            findings.extend(cross_check(
                benchmark, pred, platform, seed=seed,
                max_findings=max_findings,
            ))
    report.add(PassResult(
        "abstract", findings,
        {"modes": len(predictions),
         "exact": sum(1 for p in predictions if p.status == "exact"),
         "unknown_actions": sum(p.n_unknown for p in predictions),
         "cross_checked": int(dynamic)},
    ))
    return VerifyResult(report, certificates, predictions)
