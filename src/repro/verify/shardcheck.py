"""Shard-plan certification for ``artc verify --jobs N``.

A shard plan is a claim about the sharded replay core's correctness:
that the shards exactly partition the action set, that no resource's
action series (no weakly-connected dependency component) is split
across workers, and that *every* cross-shard thread-sequencing edge is
covered by exactly one shared-memory completion flag with exactly one
producer.  :func:`shard_pass` checks the claim structurally -- the
same validator the runner trusts (:func:`repro.artc.shardplan.check_plan`)
folded into the lint reporting machinery -- so a corrupt or
hand-edited plan (a dropped flag, a duplicated action, an action moved
off its component) is rejected before any worker forks.
"""

from typing import Any, Optional

from repro.artc.shardplan import ShardPlan, check_plan, plan_for
from repro.lint.report import ERROR, INFO, Finding, PassResult

__all__ = ["shard_pass"]


def shard_pass(benchmark: Any, jobs: int,
               plan: Optional[ShardPlan] = None,
               max_findings: int = 25) -> PassResult:
    """Certify the shard plan for ``jobs`` workers (or an explicitly
    supplied ``plan``) against ``benchmark``.

    Every structural violation is an ``error`` finding; a plan clamped
    to one shard (cwd-mutating trace, trivial job count) is reported
    as an advisory ``info`` finding, since single-shard replay is
    always sound.
    """
    if plan is None:
        plan = plan_for(benchmark, jobs)
    findings = []
    for problem in check_plan(benchmark, plan)[:max_findings]:
        findings.append(Finding(
            "shard-plan-invalid", ERROR, problem,
            detail={"jobs": jobs},
        ))
    if plan.stats.get("fallback"):
        findings.append(Finding(
            "shard-plan-fallback", INFO,
            "plan clamped to a single shard: %s" % plan.stats["fallback"],
            detail={"jobs": jobs, "reason": plan.stats["fallback"]},
        ))
    stats = {
        "jobs": jobs,
        "shards": plan.stats.get("shards", plan.n_shards),
        "cross_edges": len(plan.cross_edges),
        "cut_fraction": plan.stats.get("cut_fraction", 0.0),
        "certified": int(not any(f.severity == ERROR for f in findings)),
    }
    return PassResult("shardplan:jobs=%d" % jobs, findings, stats)
