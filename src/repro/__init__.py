"""repro: a reproduction of ROOT/ARTC/Magritte (SOSP '13).

ROOT (Resource-Oriented Ordering for Trace replay) infers ordering
dependencies from a single passively-collected system-call trace by
observing how the traced program manages resources (threads, files,
paths, file descriptors, AIO control blocks).  ARTC compiles a trace
plus an initial file-tree snapshot into a replayable benchmark and
replays it while enforcing the inferred partial order.

Quickstart::

    from repro.sim import Engine
    from repro.storage import HDD, StorageStack
    from repro.vfs import FileSystem
    from repro.tracing import TracedOS, Snapshot
    from repro.artc import compile_trace, replay, ReplayConfig

    engine = Engine()
    fs = FileSystem(engine, StorageStack(engine, HDD(), 1 << 30))
    os_api = TracedOS(fs)
    trace = os_api.start_tracing(label="demo")
    # ... run a workload of os_api.call(...) generators under engine ...
    snapshot = Snapshot.capture(fs, roots=("/data",))
    bench = compile_trace(trace, snapshot)
    # ... initialize a fresh target fs, then:
    report = replay(bench, target_fs, ReplayConfig())

The package layout mirrors the systems described in the paper:

- :mod:`repro.sim` -- discrete-event simulation kernel (the substrate
  that replaces real kernels/disks; see DESIGN.md for the rationale).
- :mod:`repro.storage` -- simulated devices, page cache, I/O schedulers.
- :mod:`repro.vfs` -- an in-memory POSIX file system with errno semantics.
- :mod:`repro.syscalls` -- the system-call registry and Darwin emulation.
- :mod:`repro.tracing` -- trace records, snapshots, and the strace format.
- :mod:`repro.core` -- the ROOT trace model, ordering rules, replay modes.
- :mod:`repro.artc` -- the ARTC compiler, initializer, and replayer.
- :mod:`repro.leveldb` -- a mini LSM key-value store used as a macrobenchmark.
- :mod:`repro.workloads` -- microbenchmarks and the Magritte suite.
- :mod:`repro.bench` -- the experiment harness reproducing every table/figure.
"""

from repro.core.modes import ReplayMode, RuleSet
from repro.core.rules import Rule
from repro.artc.compiler import compile_trace
from repro.artc.replayer import ReplayConfig, replay
from repro.tracing.trace import Trace, TraceRecord
from repro.tracing.snapshot import Snapshot

__version__ = "1.0.0"

__all__ = [
    "Rule",
    "RuleSet",
    "ReplayMode",
    "compile_trace",
    "replay",
    "ReplayConfig",
    "Trace",
    "TraceRecord",
    "Snapshot",
    "__version__",
]
