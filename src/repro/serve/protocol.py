"""The ``artc-serve-v1`` wire protocol.

Requests and responses are single JSON objects.  The native framing is
JSON-lines: one object per ``\\n``-terminated line, responses tagged
with the request's ``id`` and written in completion order (a client
may pipeline requests on one connection).  The same objects travel
over a minimal HTTP/1.1 view -- ``POST /api`` with the request as the
body, or ``GET /metrics`` etc. -- which the server detects by sniffing
the first line of a connection, so one listening socket serves both.

A request::

    {"kind": "replay", "id": 7, "tenant": "ci",
     "timeout": 30.0, "params": {...}}

``kind`` is required.  ``params`` defaults to ``{}``; ``tenant`` to
``"anon"`` (quota accounting); ``id`` is echoed back verbatim;
``timeout`` (seconds, server-enforced) is optional.

A response envelope::

    {"v": "artc-serve-v1", "id": 7, "ok": true, "status": 200,
     "result": {...}, "coalesced": false, "cached": true,
     "shard": 2, "elapsed_ms": 12.3}

or, on failure::

    {"v": "artc-serve-v1", "id": 7, "ok": false, "status": 429,
     "error": {"type": "quota-exceeded", "message": "..."}}

Status codes borrow HTTP semantics (400 bad request, 404 unknown
name, 429 quota, 500 worker fault, 503 shutting down, 504 timeout) so
the HTTP view can reuse them verbatim.

Coalescing keys: :func:`request_key` hashes ``(kind, params)`` -- and
nothing else, so two tenants asking for the same cell share one
execution -- with the same canonical-JSON recipe
:func:`repro.bench.parallel.cell_key` uses for the on-disk result
cache.
"""

import hashlib
import json

#: Protocol identifier, echoed in every response envelope.
PROTOCOL = "artc-serve-v1"

#: Request kinds executed on a worker process (and therefore subject
#: to quotas, coalescing, and timeouts).
WORKER_KINDS = ("compile", "replay", "lint", "profile", "verify", "debug")

#: Request kinds the front-end answers itself.
LOCAL_KINDS = ("ping", "status", "metrics", "shutdown")

KINDS = WORKER_KINDS + LOCAL_KINDS

# -- status codes (HTTP semantics) -------------------------------------

OK = 200
BAD_REQUEST = 400
NOT_FOUND = 404
QUOTA_EXCEEDED = 429
WORKER_ERROR = 500
UNAVAILABLE = 503
TIMEOUT = 504

REASONS = {
    OK: "OK",
    BAD_REQUEST: "Bad Request",
    NOT_FOUND: "Not Found",
    QUOTA_EXCEEDED: "Too Many Requests",
    WORKER_ERROR: "Internal Server Error",
    UNAVAILABLE: "Service Unavailable",
    TIMEOUT: "Gateway Timeout",
}


class ProtocolError(ValueError):
    """A malformed request; ``status`` is the response code to send."""

    def __init__(self, message, status=BAD_REQUEST):
        ValueError.__init__(self, message)
        self.status = status


def normalize_request(obj):
    """Validate and canonicalize one decoded request object.

    Returns ``{"kind", "id", "tenant", "timeout", "params"}`` with
    defaults filled in; raises :class:`ProtocolError` on anything the
    server should 400 rather than crash on.
    """
    if not isinstance(obj, dict):
        raise ProtocolError("request must be a JSON object, not %s"
                            % type(obj).__name__)
    kind = obj.get("kind")
    if not isinstance(kind, str):
        raise ProtocolError("request needs a string 'kind'")
    if kind not in KINDS:
        raise ProtocolError(
            "unknown kind %r; choose from: %s" % (kind, ", ".join(KINDS)),
            status=NOT_FOUND,
        )
    params = obj.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("'params' must be an object")
    tenant = obj.get("tenant", "anon")
    if not isinstance(tenant, str) or not tenant:
        raise ProtocolError("'tenant' must be a non-empty string")
    timeout = obj.get("timeout")
    if timeout is not None:
        if not isinstance(timeout, (int, float)) or timeout <= 0:
            raise ProtocolError("'timeout' must be a positive number")
        timeout = float(timeout)
    return {
        "kind": kind,
        "id": obj.get("id"),
        "tenant": tenant,
        "timeout": timeout,
        "params": params,
    }


def request_key(request):
    """Coalescing/sharding key: a content hash of ``(kind, params)``.

    Tenant, id, and timeout are deliberately excluded -- they describe
    the *requester*, not the work, and identical work must coalesce.
    """
    payload = json.dumps(
        [PROTOCOL, request["kind"], request["params"]],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# -- response envelopes ------------------------------------------------


def ok_response(request_id, result, **extra):
    envelope = {
        "v": PROTOCOL,
        "id": request_id,
        "ok": True,
        "status": OK,
        "result": result,
    }
    envelope.update(extra)
    return envelope


def error_response(request_id, status, error_type, message, **extra):
    envelope = {
        "v": PROTOCOL,
        "id": request_id,
        "ok": False,
        "status": int(status),
        "error": {"type": error_type, "message": message},
    }
    envelope.update(extra)
    return envelope


# -- JSON-lines framing ------------------------------------------------


def encode_line(obj):
    """One wire frame: compact JSON + newline, as bytes."""
    return (json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n").encode(
        "utf-8"
    )


def decode_line(data):
    """Decode one frame; raises :class:`ProtocolError` on junk."""
    try:
        return json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError("undecodable request line: %s" % exc)


# -- the HTTP view -----------------------------------------------------

_HTTP_METHODS = (b"GET ", b"POST ", b"HEAD ", b"PUT ", b"DELETE ", b"OPTIONS ")


def looks_like_http(first_line):
    """Whether a connection's first line opens an HTTP/1.x request."""
    return first_line.startswith(_HTTP_METHODS) and b"HTTP/1." in first_line


def parse_http_head(head):
    """``(method, path, headers)`` from the bytes before the blank
    line; header names are lower-cased."""
    lines = head.split(b"\r\n" if b"\r\n" in head else b"\n")
    try:
        method, path, _version = lines[0].split(None, 2)
    except ValueError:
        raise ProtocolError("malformed HTTP request line")
    headers = {}
    for line in lines[1:]:
        if not line.strip():
            continue
        name, _sep, value = line.partition(b":")
        headers[name.strip().lower().decode("latin-1")] = (
            value.strip().decode("latin-1")
        )
    return method.decode("latin-1"), path.decode("latin-1"), headers


def http_request_from(method, path, headers, body):
    """Translate one HTTP request into a protocol request object.

    - ``GET /healthz`` -> ping; ``GET /metrics`` / ``GET /status`` ->
      the matching local kinds;
    - ``POST /api`` -> the body *is* the request object;
    - ``POST /<kind>`` -> the body is that kind's ``params`` (tenant
      and timeout ride the ``X-Artc-Tenant`` / ``X-Artc-Timeout``
      headers).
    """
    route = path.split("?", 1)[0].rstrip("/") or "/"
    if method == "GET":
        kind = {"/healthz": "ping", "/metrics": "metrics",
                "/status": "status"}.get(route)
        if kind is None:
            raise ProtocolError("no such endpoint: GET %s" % route,
                                status=NOT_FOUND)
        return normalize_request({"kind": kind})
    if method != "POST":
        raise ProtocolError("unsupported method %s" % method)
    try:
        payload = json.loads(body.decode("utf-8")) if body.strip() else {}
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError("undecodable request body: %s" % exc)
    if route == "/api":
        return normalize_request(payload)
    request = {"kind": route.lstrip("/"), "params": payload}
    if "x-artc-tenant" in headers:
        request["tenant"] = headers["x-artc-tenant"]
    if "x-artc-timeout" in headers:
        try:
            request["timeout"] = float(headers["x-artc-timeout"])
        except ValueError:
            raise ProtocolError("bad X-Artc-Timeout header")
    return normalize_request(request)


def http_response(status, payload):
    """A complete ``Connection: close`` HTTP response, as bytes."""
    body = json.dumps(payload, sort_keys=True, indent=1).encode("utf-8") + b"\n"
    head = (
        "HTTP/1.1 %d %s\r\n"
        "Content-Type: application/json\r\n"
        "Content-Length: %d\r\n"
        "Connection: close\r\n"
        "\r\n" % (status, REASONS.get(status, "Unknown"), len(body))
    )
    return head.encode("latin-1") + body
