"""``artc serve``: replay-as-a-service.

A long-lived asyncio daemon that accepts compile / replay / lint /
profile / verify requests over a unix socket or TCP (JSON-lines, with
a minimal HTTP view for humans and probes), multiplexes them across a
**sharded pool of worker processes**, and answers repeat traffic warm
from the content-addressed :class:`~repro.bench.artifacts.ArtifactCache`
so no (app, platform, seed, ruleset) cell is ever compiled twice.

Layout (one module per concern):

- :mod:`repro.serve.protocol` -- the ``artc-serve-v1`` wire protocol:
  request normalization, coalescing keys, response envelopes, status
  codes, and the HTTP sniffing/rendering helpers.
- :mod:`repro.serve.jobs` -- worker-side execution of each request
  kind against the artifact cache (this is the only module the worker
  processes run).
- :mod:`repro.serve.workers` -- the sharded process pool: dispatch,
  per-request timeouts, crash detection, and re-spawn.
- :mod:`repro.serve.batching` -- in-flight request coalescing:
  identical cells in flight at once get one execution and fanned-out
  responses.
- :mod:`repro.serve.quotas` -- per-tenant admission control: max
  in-flight and an actions/sec budget, 429-style rejection.
- :mod:`repro.serve.server` -- the asyncio front-end tying the above
  together, with per-endpoint :mod:`repro.obs` metrics and graceful
  shutdown.
- :mod:`repro.serve.client` -- the blocking client (``artc submit``,
  tests, benchmarks).

See ``docs/SERVICE.md`` for the protocol and operational reference.
"""

from repro.serve.batching import Coalescer
from repro.serve.client import ServeClient, ServeError, submit_many
from repro.serve.protocol import PROTOCOL, request_key
from repro.serve.quotas import QuotaExceeded, QuotaLedger, QuotaPolicy
from repro.serve.server import ArtcServer, ServeConfig, ServerThread, run_server

__all__ = [
    "ArtcServer",
    "Coalescer",
    "PROTOCOL",
    "QuotaExceeded",
    "QuotaLedger",
    "QuotaPolicy",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServerThread",
    "request_key",
    "run_server",
    "submit_many",
]
