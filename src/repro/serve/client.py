"""Blocking client for ``artc serve`` (the ``artc submit`` engine).

Speaks the JSON-lines protocol over a unix socket or TCP.  One
:class:`ServeClient` holds one connection and issues one request at a
time; for concurrent load (tests, benchmarks, the CI smoke job) use
:func:`submit_many`, which opens one connection per thread -- the
daemon multiplexes them across its worker shards.
"""

import json
import socket
import threading


class ServeError(Exception):
    """A non-OK response envelope; carries the whole envelope."""

    def __init__(self, envelope):
        error = envelope.get("error") or {}
        Exception.__init__(
            self,
            "[%s] %s: %s"
            % (envelope.get("status"), error.get("type", "error"),
               error.get("message", "?")),
        )
        self.envelope = envelope
        self.status = envelope.get("status")
        self.error_type = error.get("type")


class ServeClient(object):
    """One connection to an ``artc serve`` daemon.

    ``unix_path`` or ``host``/``port`` pick the transport; ``tenant``
    tags every request for quota accounting; ``timeout`` is the
    *socket* timeout (per-request server-side timeouts travel in the
    request itself via the ``timeout=`` argument of :meth:`request`).
    """

    def __init__(self, unix_path=None, host=None, port=None,
                 tenant="client", timeout=120.0):
        if unix_path is None and port is None:
            raise ValueError("need a unix socket path or a TCP port")
        self.unix_path = unix_path
        self.host = host or "127.0.0.1"
        self.port = port
        self.tenant = tenant
        self.timeout = timeout
        self._sock = None
        self._file = None
        self._next_id = 0
        self._lock = threading.Lock()

    # -- transport -----------------------------------------------------

    def _connect(self):
        if self._sock is not None:
            return
        if self.unix_path:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.unix_path)
        else:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        self._sock = sock
        self._file = sock.makefile("rwb")

    def close(self):
        if self._sock is not None:
            try:
                self._file.close()
                self._sock.close()
            except OSError:
                pass
            self._sock = None
            self._file = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    # -- requests ------------------------------------------------------

    def request(self, kind, params=None, timeout=None, check=True):
        """Send one request; returns the response envelope.

        ``timeout`` is the server-enforced job timeout.  With ``check``
        (the default) a non-OK envelope raises :class:`ServeError`;
        pass ``check=False`` to inspect failures (the quota tests do).
        """
        with self._lock:
            self._connect()
            self._next_id += 1
            request = {
                "kind": kind,
                "id": self._next_id,
                "tenant": self.tenant,
                "params": params or {},
            }
            if timeout is not None:
                request["timeout"] = timeout
            data = (json.dumps(request, sort_keys=True,
                               separators=(",", ":")) + "\n").encode("utf-8")
            self._file.write(data)
            self._file.flush()
            while True:
                line = self._file.readline()
                if not line:
                    raise ConnectionError(
                        "server closed the connection mid-request"
                    )
                envelope = json.loads(line.decode("utf-8"))
                # Responses come back in completion order; with one
                # request outstanding per connection only our id shows
                # up, but skip defensively.
                if envelope.get("id") == self._next_id:
                    break
        if check and not envelope.get("ok"):
            raise ServeError(envelope)
        return envelope

    # -- conveniences --------------------------------------------------

    def ping(self):
        return self.request("ping")["result"]

    def status(self):
        return self.request("status")["result"]

    def metrics(self):
        return self.request("metrics")["result"]["metrics"]

    def shutdown(self):
        return self.request("shutdown")["result"]

    def compile(self, **params):
        return self.request("compile", params)

    def replay(self, **params):
        return self.request("replay", params)

    def lint(self, **params):
        return self.request("lint", params)

    def profile(self, **params):
        return self.request("profile", params)

    def verify(self, **params):
        return self.request("verify", params)


def submit_many(client_kwargs, requests, concurrency=8, tenant="client",
                barrier=False):
    """Fire ``requests`` -- ``(kind, params)`` or ``(kind, params,
    timeout)`` tuples -- across ``concurrency`` threads, one connection
    each; returns envelopes in submission order (never raises: failed
    requests return their error envelopes).

    ``barrier=True`` lines every thread up before its first send, which
    is how the coalescing tests guarantee identical requests are truly
    in flight together.
    """
    results = [None] * len(requests)
    gate = threading.Barrier(min(concurrency, len(requests)) or 1) \
        if barrier else None
    cursor = {"next": 0}
    cursor_lock = threading.Lock()

    def _drain():
        client = ServeClient(tenant=tenant, **client_kwargs)
        first = True
        try:
            while True:
                with cursor_lock:
                    index = cursor["next"]
                    if index >= len(requests):
                        return
                    cursor["next"] = index + 1
                item = requests[index]
                kind, params = item[0], item[1]
                timeout = item[2] if len(item) > 2 else None
                if first and gate is not None:
                    gate.wait(timeout=30.0)
                    first = False
                try:
                    results[index] = client.request(
                        kind, params, timeout=timeout, check=False
                    )
                except Exception as exc:
                    results[index] = {
                        "ok": False, "status": 0,
                        "error": {"type": "client-error", "message": str(exc)},
                    }
        finally:
            client.close()

    threads = [
        threading.Thread(target=_drain, name="artc-submit-%d" % index,
                         daemon=True)
        for index in range(min(concurrency, len(requests)) or 1)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results
