"""The ``artc serve`` asyncio front-end.

One :class:`ArtcServer` binds a unix socket and/or a TCP port, sniffs
each connection (JSON-lines or HTTP), and pushes every worker-kind
request through the same funnel::

    normalize -> quota admit -> coalesce -> shard -> worker -> settle

Local kinds (ping / status / metrics / shutdown) are answered inline.
Every endpoint is measured into a :class:`repro.obs.metrics.Metrics`
registry -- request counters and latency histograms per kind, queue
depth, coalescing and warm-hit counters, quota rejections, worker
re-spawns -- exported verbatim by ``GET /metrics`` and the ``metrics``
request kind (the table lives in ``docs/SERVICE.md``).

Shutdown is graceful: listeners close first, in-flight requests drain
(bounded), then the worker pool is sentinel-stopped.  ``run_server``
wires SIGINT/SIGTERM to that sequence for the CLI;
:class:`ServerThread` runs the same lifecycle on a background thread
for tests and benchmarks.
"""

import asyncio
import os
import threading
import time

from repro.obs.metrics import Metrics
from repro.serve import protocol
from repro.serve.batching import Coalescer
from repro.serve.quotas import QuotaExceeded, QuotaLedger, QuotaPolicy
from repro.serve.workers import ProcessPool, default_worker_count


class ServeConfig(object):
    """Everything one daemon instance needs to know."""

    __slots__ = (
        "unix_path", "host", "port", "workers", "artifact_dir",
        "default_timeout", "quota", "allow_debug", "drain_timeout",
    )

    def __init__(self, unix_path=None, host=None, port=None, workers=None,
                 artifact_dir=None, default_timeout=None, quota=None,
                 allow_debug=False, drain_timeout=10.0):
        if unix_path is None and port is None:
            raise ValueError("serve needs a unix socket path or a TCP port")
        self.unix_path = unix_path
        self.host = host or "127.0.0.1"
        self.port = port
        self.workers = workers or default_worker_count()
        self.artifact_dir = artifact_dir
        self.default_timeout = default_timeout
        self.quota = quota or QuotaPolicy()
        self.allow_debug = allow_debug
        self.drain_timeout = drain_timeout


class ArtcServer(object):
    def __init__(self, config, metrics=None):
        self.config = config
        self.metrics = metrics if metrics is not None else Metrics()
        self.pool = ProcessPool(
            nshards=config.workers,
            artifact_dir=config.artifact_dir,
            allow_debug=config.allow_debug,
            metrics=self.metrics,
        )
        self.quotas = QuotaLedger(config.quota)
        self.coalescer = Coalescer()
        self.started_at = None
        self._servers = []
        self._inflight = set()
        self._stopping = False
        self._stopped = asyncio.Event()

    # -- lifecycle -----------------------------------------------------

    async def start(self):
        self.started_at = time.time()
        await self.pool.start()
        if self.config.unix_path:
            if os.path.exists(self.config.unix_path):
                os.unlink(self.config.unix_path)
            self._servers.append(
                await asyncio.start_unix_server(
                    self._handle_connection, path=self.config.unix_path
                )
            )
        if self.config.port is not None:
            self._servers.append(
                await asyncio.start_server(
                    self._handle_connection,
                    host=self.config.host,
                    port=self.config.port,
                )
            )
        ports = [
            sock.getsockname() for server in self._servers
            for sock in (server.sockets or [])
        ]
        return ports

    @property
    def tcp_port(self):
        """The bound TCP port (useful with ``port=0``), or None."""
        for server in self._servers:
            for sock in server.sockets or []:
                name = sock.getsockname()
                if isinstance(name, tuple):
                    return name[1]
        return None

    async def stop(self):
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        if self._inflight:
            await asyncio.wait(
                list(self._inflight), timeout=self.config.drain_timeout
            )
        await self.pool.stop(drain_timeout=self.config.drain_timeout)
        if self.config.unix_path and os.path.exists(self.config.unix_path):
            try:
                os.unlink(self.config.unix_path)
            except OSError:
                pass
        self._stopped.set()

    async def wait_stopped(self):
        await self._stopped.wait()

    # -- the request funnel --------------------------------------------

    async def handle_request(self, obj):
        """One decoded request object -> one response envelope."""
        counter = self.metrics.counter
        counter("serve.requests_total").inc()
        try:
            request = protocol.normalize_request(obj)
        except protocol.ProtocolError as exc:
            counter("serve.responses.error").inc()
            return protocol.error_response(
                obj.get("id") if isinstance(obj, dict) else None,
                exc.status, "protocol-error", str(exc),
            )
        counter("serve.requests.%s" % request["kind"]).inc()
        started = time.perf_counter()
        if request["kind"] in protocol.LOCAL_KINDS:
            envelope = await self._handle_local(request)
        else:
            envelope = await self._handle_worker_kind(request)
        elapsed = time.perf_counter() - started
        self.metrics.histogram(
            "serve.request_latency_seconds.%s" % request["kind"]
        ).observe(elapsed)
        envelope["elapsed_ms"] = round(elapsed * 1000.0, 3)
        counter(
            "serve.responses.ok" if envelope.get("ok")
            else "serve.responses.error"
        ).inc()
        return envelope

    async def _handle_worker_kind(self, request):
        if self._stopping:
            return protocol.error_response(
                request["id"], protocol.UNAVAILABLE, "shutting-down",
                "server is draining; resubmit elsewhere",
            )
        tenant = request["tenant"]
        try:
            self.quotas.admit(tenant)
        except QuotaExceeded as exc:
            self.metrics.counter("serve.quota.rejected").inc()
            return protocol.error_response(
                request["id"], protocol.QUOTA_EXCEEDED, "quota-exceeded",
                str(exc), reason=exc.reason,
            )
        key = protocol.request_key(request)
        self.metrics.gauge("serve.inflight").add(1)
        reply = None
        try:
            leader, future = self.coalescer.join(key)
            try:
                if leader:
                    timeout = request["timeout"] or self.config.default_timeout
                    reply = await self.pool.submit(key, {
                        "kind": request["kind"], "params": request["params"],
                    }, timeout=timeout)
                else:
                    self.metrics.counter("serve.coalesced_total").inc()
                    reply = await asyncio.shield(future)
            finally:
                if leader:
                    # Success or crash, the leader must wake followers;
                    # a None reply fans out as an internal error.
                    self.coalescer.finish(key, reply)
        finally:
            self.metrics.gauge("serve.inflight").add(-1)
            cost = reply.get("cost_actions") or 0 if isinstance(reply, dict) else 0
            self.quotas.settle(tenant, actions=cost)
        return self._envelope_from(request, reply, coalesced=not leader, key=key)

    def _envelope_from(self, request, reply, coalesced, key):
        """Per-requester envelope around a (possibly shared) worker
        reply."""
        if not isinstance(reply, dict):
            return protocol.error_response(
                request["id"], protocol.WORKER_ERROR, "internal",
                "worker returned %r" % (reply,), coalesced=coalesced,
            )
        if reply.get("ok"):
            cached = reply.get("cached")
            # Cache counters track *executions*; followers share the
            # leader's reply and must not re-count its compile.
            if not coalesced:
                if cached:
                    self.metrics.counter("serve.cache.warm_hits").inc()
                elif cached is False:
                    self.metrics.counter("serve.cache.compiles").inc()
            return protocol.ok_response(
                request["id"], reply.get("result"),
                coalesced=coalesced,
                cached=cached,
                shard=reply.get("shard"),
                key=key[:16],
            )
        error = reply.get("error") or {}
        return protocol.error_response(
            request["id"], reply.get("status", protocol.WORKER_ERROR),
            error.get("type", "internal"),
            error.get("message", "unknown worker failure"),
            coalesced=coalesced,
            key=key[:16],
            **({"traceback": error["traceback"]} if "traceback" in error else {})
        )

    async def _handle_local(self, request):
        kind = request["kind"]
        if kind == "ping":
            return protocol.ok_response(request["id"], {
                "pong": True, "protocol": protocol.PROTOCOL,
            })
        if kind == "metrics":
            return protocol.ok_response(request["id"], {
                "metrics": self.metrics.to_dict(),
            })
        if kind == "status":
            self.metrics.gauge("serve.uptime_seconds").set(
                time.time() - self.started_at
            )
            return protocol.ok_response(request["id"], {
                "protocol": protocol.PROTOCOL,
                "uptime_seconds": time.time() - self.started_at,
                "workers": self.pool.describe(),
                "pool": {
                    "shards": self.pool.nshards,
                    "respawns": self.pool.respawns,
                    "crashes": self.pool.crashes,
                    "timeouts": self.pool.timeouts,
                    "queue_depth": self.pool.queue_depth(),
                },
                "coalescing": {
                    "leaders": self.coalescer.leaders,
                    "coalesced": self.coalescer.coalesced,
                    "inflight_keys": self.coalescer.inflight_keys,
                },
                "quota": self.quotas.snapshot(),
                "metrics": self.metrics.to_dict(),
            })
        if kind == "shutdown":
            asyncio.ensure_future(self.stop())
            return protocol.ok_response(request["id"], {"stopping": True})
        raise AssertionError("unreachable local kind %r" % kind)

    # -- connection handling -------------------------------------------

    async def _handle_connection(self, reader, writer):
        try:
            first = await reader.readline()
            if not first:
                return
            if protocol.looks_like_http(first):
                await self._handle_http(first, reader, writer)
                return
            await self._handle_lines(first, reader, writer)
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Loop teardown cancels handlers still parked in readline
            # (a client that never closed); exit quietly instead of
            # tracebacking after the shutdown banner.
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _handle_lines(self, first, reader, writer):
        """JSON-lines: requests may pipeline; responses go out in
        completion order, tagged by id."""
        lock = asyncio.Lock()
        tasks = set()

        async def _serve_one(line):
            try:
                obj = protocol.decode_line(line)
            except protocol.ProtocolError as exc:
                envelope = protocol.error_response(
                    None, exc.status, "protocol-error", str(exc)
                )
            else:
                envelope = await self.handle_request(obj)
            async with lock:
                writer.write(protocol.encode_line(envelope))
                await writer.drain()

        line = first
        while line:
            if line.strip():
                task = asyncio.ensure_future(_serve_one(line))
                tasks.add(task)
                self._inflight.add(task)
                task.add_done_callback(tasks.discard)
                task.add_done_callback(self._inflight.discard)
            line = await reader.readline()
        if tasks:
            await asyncio.wait(tasks)

    async def _handle_http(self, first, reader, writer):
        """One request per connection, ``Connection: close``."""
        head = bytearray(first)
        while True:
            line = await reader.readline()
            head.extend(line)
            if not line or line in (b"\r\n", b"\n"):
                break
        try:
            method, path, headers = protocol.parse_http_head(bytes(head))
            length = int(headers.get("content-length", "0") or "0")
            body = await reader.readexactly(length) if length else b""
            request = protocol.http_request_from(method, path, headers, body)
        except protocol.ProtocolError as exc:
            writer.write(protocol.http_response(exc.status, {
                "ok": False,
                "error": {"type": "protocol-error", "message": str(exc)},
            }))
            await writer.drain()
            return
        envelope = await self.handle_request(request)
        writer.write(protocol.http_response(envelope["status"], envelope))
        await writer.drain()


# -- entry points ------------------------------------------------------


def run_server(config, ready=None, output=None):
    """Run a daemon until SIGINT/SIGTERM (the ``artc serve`` body).

    ``ready(server)`` fires after the listeners bind; ``output`` is a
    file-like for the banner (default stdout).
    """
    import signal
    import sys

    out = output or sys.stdout

    async def _main():
        server = ArtcServer(config)
        await server.start()
        where = []
        if config.unix_path:
            where.append("unix:%s" % config.unix_path)
        if config.port is not None:
            where.append("http://%s:%d" % (config.host, server.tcp_port))
        print(
            "artc serve: listening on %s (%d workers, artifacts in %s)"
            % (
                " and ".join(where),
                config.workers,
                config.artifact_dir or "default cache dir",
            ),
            file=out,
            flush=True,
        )
        if ready is not None:
            ready(server)
        loop = asyncio.get_event_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    sig, lambda: asyncio.ensure_future(server.stop())
                )
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await server.wait_stopped()
        requests = server.metrics.value("serve.requests_total", 0)
        print(
            "artc serve: stopped after %d requests (%d warm hits, "
            "%d compiles, %d coalesced, %d respawns)"
            % (
                requests,
                server.metrics.value("serve.cache.warm_hits", 0),
                server.metrics.value("serve.cache.compiles", 0),
                server.metrics.value("serve.coalesced_total", 0),
                server.pool.respawns,
            ),
            file=out,
            flush=True,
        )
        return 0

    return asyncio.run(_main())


class ServerThread(object):
    """A daemon on a background thread, for tests and benchmarks.

    ::

        with ServerThread(ServeConfig(unix_path=...)) as handle:
            client = handle.client()
            client.ping()
    """

    def __init__(self, config):
        self.config = config
        self.server = None
        self._loop = None
        self._thread = None
        self._ready = threading.Event()
        self._startup_error = None

    def start(self):
        self._thread = threading.Thread(
            target=self._run, name="artc-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("artc serve thread failed to start in time")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self):
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        server = ArtcServer(self.config)
        try:
            loop.run_until_complete(server.start())
        except Exception as exc:
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self.server = server
        self._ready.set()
        try:
            loop.run_until_complete(server.wait_stopped())
        finally:
            pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    def stop(self):
        if self._loop is None or self.server is None:
            return
        if not self._loop.is_closed():
            asyncio.run_coroutine_threadsafe(self.server.stop(), self._loop)
        self._thread.join(timeout=30.0)

    def client(self, **kwargs):
        from repro.serve.client import ServeClient

        if self.config.unix_path:
            kwargs.setdefault("unix_path", self.config.unix_path)
        else:
            kwargs.setdefault("host", self.config.host)
            kwargs.setdefault("port", self.server.tcp_port)
        return ServeClient(**kwargs)

    def client_kwargs(self):
        if self.config.unix_path:
            return {"unix_path": self.config.unix_path}
        return {"host": self.config.host, "port": self.server.tcp_port}

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()
