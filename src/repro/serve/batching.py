"""In-flight request coalescing.

The daemon's hottest anti-pattern is a thundering herd: K clients ask
for the same (app, platform, seed, ruleset) cell at once, and a naive
server compiles it K times.  The disk-level
:class:`~repro.bench.artifacts.ArtifactCache` cannot help *during* the
first compile -- it only dedupes across time, not across in-flight
requests.  The :class:`Coalescer` closes that window: requests sharing
a :func:`~repro.serve.protocol.request_key` while one is executing get
exactly one execution, and every waiter receives the same reply
envelope when it lands (fanned out, per-requester, by the server).

Results are plain envelope dicts, never exceptions: a failed leader
fails every follower identically, which is the correct semantics --
they asked for the same work.
"""

import asyncio


class _Entry(object):
    __slots__ = ("future", "followers")

    def __init__(self, future):
        self.future = future
        self.followers = 0


class Coalescer(object):
    """Keyed single-flight for asyncio.

    ``join(key)`` returns ``(leader, future)``: the first caller for a
    key becomes the leader (and must eventually ``finish`` it); later
    callers are followers sharing the same future.  Keys clear on
    ``finish``, so a *subsequent* request for the same cell executes
    again (and is then served warm from the artifact cache instead).
    """

    def __init__(self):
        self._inflight = {}
        self.leaders = 0
        self.coalesced = 0

    def join(self, key):
        entry = self._inflight.get(key)
        if entry is not None:
            entry.followers += 1
            self.coalesced += 1
            return False, entry.future
        future = asyncio.get_event_loop().create_future()
        self._inflight[key] = _Entry(future)
        self.leaders += 1
        return True, future

    def finish(self, key, envelope):
        """Resolve a key with its reply envelope, waking every
        follower.  The leader calls this exactly once, success or
        failure."""
        entry = self._inflight.pop(key, None)
        if entry is not None and not entry.future.done():
            entry.future.set_result(envelope)
        return entry.followers if entry is not None else 0

    def abandon(self, key):
        """Leader bookkeeping for a key that never ran (e.g. quota
        rejection after join): drop it without waking anyone."""
        entry = self._inflight.pop(key, None)
        if entry is not None and not entry.future.done():
            entry.future.set_result(None)

    @property
    def inflight_keys(self):
        return len(self._inflight)
