"""Worker-side job execution for ``artc serve``.

This is the only serve module the worker processes import.  Each job
is one request kind applied to a **cell** -- the same
(app, source platform, seed, ruleset) tuple :func:`repro.bench.
harness.replay_matrix` keys its artifact reuse on -- or, for callers
that already hold a compiled benchmark, a ``benchmark`` file path.

Benchmarks are obtained through the content-addressed
:class:`~repro.bench.artifacts.ArtifactCache`: the first request for a
cell traces + compiles and files an ``.artcb``; every later request is
served warm, with a durable sidecar hit recorded as evidence.  On top
of the disk cache each worker keeps an in-memory memo of loaded
benchmarks, so steady-state repeat traffic does not even re-read the
artifact -- it still bumps the hit journal, because "this request was
served without recompiling" is exactly what the journal proves.

Replay jobs mirror ``artc replay`` byte for byte: same fresh target
construction, same snapshot initialization, no cache drop -- so a
serve response's report summary and final FS-state digest are
bit-identical to the CLI's for the same inputs (the serve test suite
and the CI smoke job both assert this).
"""

import time
import traceback

from repro.serve import protocol


class JobError(Exception):
    """A job failed in a way the requester caused (bad name, bad
    params); carries the response status."""

    def __init__(self, message, status=protocol.BAD_REQUEST, error_type="bad-request"):
        Exception.__init__(self, message)
        self.status = status
        self.error_type = error_type


class JobContext(object):
    """Per-worker state: the artifact cache, the benchmark memo, and
    the debug gate."""

    def __init__(self, artifact_dir=None, allow_debug=False):
        from repro.bench.artifacts import ArtifactCache

        self.cache = ArtifactCache(root=artifact_dir)
        self.memo = {}  # artifact key -> CompiledBenchmark
        self.allow_debug = allow_debug
        self.jobs_done = 0
        self.compiles = 0


# -- request-spec resolution -------------------------------------------


def build_app(params):
    """Instantiate the application a cell names.

    ``app`` is a Magritte trace name (``artc magritte --list``) or a
    built-in workload (``randreads``, ``cachereaders``, ``seqreaders``,
    ``leveldb-fillsync``, ``leveldb-readrandom``); ``app_args`` passes
    constructor keywords.  Non-default keywords are folded into the
    app's name so the artifact key (which hashes the name) cannot
    collide across configurations.
    """
    name = params.get("app")
    if not isinstance(name, str) or not name:
        raise JobError("params need an 'app' name", error_type="bad-cell")
    kwargs = params.get("app_args") or {}
    if not isinstance(kwargs, dict):
        raise JobError("'app_args' must be an object", error_type="bad-cell")

    from repro.workloads.magritte import build_suite, suite_names

    if name in suite_names():
        if kwargs:
            raise JobError("Magritte apps take no app_args",
                           error_type="bad-cell")
        return build_suite([name])[name]

    from repro.leveldb.apps import LevelDBFillSync, LevelDBReadRandom
    from repro.workloads import (
        CacheSensitiveReaders,
        CompetingSequentialReaders,
        ParallelRandomReaders,
    )

    factories = {
        "randreads": ParallelRandomReaders,
        "cachereaders": CacheSensitiveReaders,
        "seqreaders": CompetingSequentialReaders,
        "leveldb-fillsync": LevelDBFillSync,
        "leveldb-readrandom": LevelDBReadRandom,
    }
    factory = factories.get(name)
    if factory is None:
        raise JobError(
            "unknown app %r (not a Magritte trace or built-in workload)" % name,
            status=protocol.NOT_FOUND,
            error_type="unknown-app",
        )
    try:
        app = factory(**{str(k): v for k, v in kwargs.items()})
    except TypeError as exc:
        raise JobError("bad app_args for %r: %s" % (name, exc),
                       error_type="bad-cell")
    if kwargs:
        suffix = ",".join(
            "%s=%r" % (key, kwargs[key]) for key in sorted(kwargs)
        )
        app.name = "%s@%s" % (app.name, suffix)
    return app


def lookup_platform(name, cache_mb=0):
    from repro.bench.platforms import PLATFORMS

    try:
        platform = PLATFORMS[name]
    except KeyError:
        raise JobError(
            "unknown platform %r; choose from: %s"
            % (name, ", ".join(sorted(PLATFORMS))),
            status=protocol.NOT_FOUND,
            error_type="unknown-platform",
        )
    if cache_mb:
        platform = platform.variant(cache_bytes=int(cache_mb) << 20)
    return platform


def build_ruleset(spec):
    """``None`` (ARTC default), a ``--mode-flags`` style string, or a
    ``{flag: bool}`` object."""
    from repro.core.modes import RuleSet

    if spec is None:
        return None
    if isinstance(spec, str):
        flags = {}
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            if token.startswith("no-"):
                flags[token[3:].replace("-", "_")] = False
            else:
                flags[token.replace("-", "_")] = True
        spec = flags
    if not isinstance(spec, dict):
        raise JobError("'ruleset' must be null, a flag string, or an object",
                       error_type="bad-cell")
    try:
        return RuleSet(**{str(k): bool(v) for k, v in spec.items()})
    except (TypeError, ValueError) as exc:
        raise JobError("bad ruleset: %s" % exc, error_type="bad-cell")


def obtain_benchmark(params, ctx):
    """The compiled benchmark a job's params name.

    Returns ``(benchmark, info)`` where ``info`` records provenance:
    ``cached`` is True whenever no compile happened (memo or disk).
    """
    path = params.get("benchmark")
    if path is not None:
        from repro.artc.benchmark import CompiledBenchmark

        try:
            bench = CompiledBenchmark.load(path)
        except Exception as exc:
            raise JobError("cannot load benchmark %r: %s" % (path, exc),
                           status=protocol.NOT_FOUND,
                           error_type="unknown-benchmark")
        return bench, {"path": path, "cached": True, "key": None}

    app = build_app(params)
    source = lookup_platform(params.get("source", "mac-ssd"))
    seed = int(params.get("seed", 0))
    ruleset = build_ruleset(params.get("ruleset"))
    warm_cache = bool(params.get("warm_cache", False))

    from repro.bench.artifacts import artifact_key

    key = artifact_key(app, source, seed, ruleset, warm_cache)
    bench = ctx.memo.get(key)
    if bench is not None:
        # Served without touching the compiler *or* the disk; the
        # journal still records that this artifact was reused.
        ctx.cache.hits += 1
        ctx.cache.record_hit(key)
        return bench, {"key": key, "cached": True, "memo": True,
                       "path": ctx.cache.path_for(key)}
    bench, info = ctx.cache.get_or_build(
        app, source, seed, ruleset=ruleset, warm_cache=warm_cache
    )
    if not info["cached"]:
        ctx.compiles += 1
    ctx.memo[key] = bench
    info = dict(info)
    info["memo"] = False
    return bench, info


def _replay_config(params):
    from repro.artc.replayer import ReplayConfig
    from repro.core.modes import ReplayMode
    from repro.syscalls.emulation import EmulationOptions

    mode = params.get("mode", ReplayMode.ARTC)
    if mode not in ReplayMode.ALL:
        raise JobError("unknown mode %r; choose from: %s"
                       % (mode, ", ".join(ReplayMode.ALL)),
                       error_type="bad-cell")
    core = params.get("core", "auto")
    if core not in ("auto", "events", "scoreboard", "jit"):
        raise JobError("unknown core %r" % core, error_type="bad-cell")
    timing = params.get("timing", "afap")
    if timing not in ("afap", "natural"):
        try:
            timing = float(timing)
        except (TypeError, ValueError):
            raise JobError("bad timing %r" % timing, error_type="bad-cell")
    harden = None
    if any(params.get(k) for k in ("retry_max", "watchdog", "degrade")):
        from repro.faults import HardenConfig, RetryPolicy

        retry = None
        if params.get("retry_max"):
            retry = RetryPolicy(
                max_attempts=int(params["retry_max"]),
                base=float(params.get("retry_base", 0.005)),
            )
        harden = HardenConfig(
            retry=retry,
            watchdog_stall=float(params["watchdog"]) if params.get("watchdog")
            else None,
            degrade=bool(params.get("degrade", False)),
        )
    return ReplayConfig(
        mode=mode,
        timing=timing,
        jitter=float(params.get("jitter", 0.0)),
        emulation=EmulationOptions(
            fsync_mode=params.get("fsync_mode", "durable")
        ),
        harden=harden,
        core=core,
    )


# -- job handlers ------------------------------------------------------


def _job_compile(params, ctx):
    bench, info = obtain_benchmark(params, ctx)
    return {
        "label": bench.label,
        "actions": len(bench),
        "threads": len(bench.threads),
        "stats": dict(bench.stats),
        "artifact": info,
    }


def _job_replay(params, ctx):
    from repro.artc.init import initialize
    from repro.artc.replayer import replay
    from repro.verify.abstract import fs_digest

    bench, info = obtain_benchmark(params, ctx)
    target = lookup_platform(
        params.get("platform", params.get("source", "hdd-ext4")),
        cache_mb=params.get("cache_mb", 0),
    )
    config = _replay_config(params)
    # Mirrors cmd_replay exactly: fresh target at the replay seed,
    # snapshot initialization, no cache drop.  Divergence here would
    # break the serve==CLI byte-identity guarantee.
    fs = target.make_fs(seed=int(params.get("replay_seed", params.get("seed", 0))))
    if bench.snapshot is not None:
        initialize(fs, bench.snapshot)
    report = replay(bench, fs, config)
    return {
        "summary": report.summary(),
        "state_digest": fs_digest(fs),
        "artifact": info,
        "cost_actions": report.n_actions,
    }


def _job_lint(params, ctx):
    from repro.lint import lint_benchmark

    bench, info = obtain_benchmark(params, ctx)
    report = lint_benchmark(
        bench,
        modes=not params.get("no_modes", False),
        max_findings=int(params.get("max_findings", 25)),
    )
    return {"report": report.to_dict(), "artifact": info,
            "cost_actions": len(bench)}


def _job_profile(params, ctx):
    from repro.bench.harness import profile_benchmark

    bench, info = obtain_benchmark(params, ctx)
    target = lookup_platform(
        params.get("platform", params.get("source", "hdd-ext4")),
        cache_mb=params.get("cache_mb", 0),
    )
    config = _replay_config(params)
    report, obs, critpath = profile_benchmark(
        bench,
        target,
        mode=config.mode,
        seed=int(params.get("replay_seed", params.get("seed", 0))),
        timing=config.timing,
    )
    return {
        "summary": report.summary(),
        "critical_path": critpath.to_dict(),
        "metrics": obs.metrics.to_dict(),
        "artifact": info,
        "cost_actions": report.n_actions,
    }


def _job_verify(params, ctx):
    from repro.verify import CORES, verify_benchmark

    bench, info = obtain_benchmark(params, ctx)
    cores = params.get("cores")
    if cores is None:
        cores = list(CORES)
    modes = params.get("modes")
    result = verify_benchmark(
        bench, cores=cores, modes=modes,
        max_findings=int(params.get("max_findings", 25)),
    )
    return {"verify": result.to_dict(), "artifact": info,
            "cost_actions": len(bench)}


def _job_stream(params, ctx):
    """One stateless step of streamed trace ingestion
    (docs/STREAMING.md): consume whatever the producer has written
    beyond the checkpoint, update the checkpoint, and report the
    running chained digest.  Re-submitting the same request resumes
    from the durable prefix -- the trace file is the write-ahead log,
    so the handler itself keeps no state between calls and survives
    worker kills for free."""
    import os

    from repro.errors import TraceError
    from repro.stream.follow import ingest_trace

    path = params.get("trace")
    if not isinstance(path, str) or not path:
        raise JobError("stream params need a 'trace' path",
                       error_type="bad-request")
    if not os.path.exists(path):
        raise JobError("no trace at %r" % path,
                       status=protocol.NOT_FOUND, error_type="no-trace")
    ruleset = build_ruleset(params.get("ruleset"))
    checkpoint = params.get("checkpoint")
    try:
        result = ingest_trace(
            path,
            ruleset=ruleset,
            label=params.get("label"),
            reduce=not params.get("no_reduce", False),
            checkpoint_path=checkpoint,
            checkpoint_every=int(params.get("checkpoint_every", 256)),
            resume=bool(checkpoint),
            wait=False,
        )
    except TraceError as exc:
        raise JobError("stream ingestion failed: %s" % exc,
                       error_type="bad-trace")
    status = result.status
    out = {
        "finished": result.finished,
        "records": status.records,
        "actions": status.fed,
        "digest": status.digest,
        "position": result.position,
        "resyncs": status.resyncs,
        "warnings": status.warnings,
        "resume_verified": status.resume_verified,
        "checkpoints_written": status.checkpoints_written,
        "cost_actions": status.fed,
    }
    if result.finished and params.get("save"):
        result.benchmark.save(params["save"])
        out["saved"] = params["save"]
    return out


def _job_debug(params, ctx):
    """Test/ops hooks, refused unless the server enables them."""
    if not ctx.allow_debug:
        raise JobError("debug requests are disabled on this server",
                       status=protocol.NOT_FOUND, error_type="debug-disabled")
    op = params.get("op", "echo")
    if op == "echo":
        return {"echo": params.get("payload")}
    if op == "sleep":
        time.sleep(float(params.get("seconds", 1.0)))
        return {"slept": float(params.get("seconds", 1.0))}
    if op == "crash":
        import os

        os._exit(17)
    raise JobError("unknown debug op %r" % op, error_type="bad-request")


_HANDLERS = {
    "compile": _job_compile,
    "replay": _job_replay,
    "lint": _job_lint,
    "profile": _job_profile,
    "verify": _job_verify,
    "stream": _job_stream,
    "debug": _job_debug,
}


def execute(payload, ctx):
    """Run one job; always returns a worker envelope dict.

    ``{"ok": True, "result": ..., "cached": ..., "cost_actions": n}``
    on success; ``{"ok": False, "status": ..., "error": {...}}`` on
    failure.  Unexpected exceptions become 500s with a traceback so
    the requester can file a useful report.
    """
    kind = payload.get("kind")
    handler = _HANDLERS.get(kind)
    if handler is None:
        return {
            "ok": False,
            "status": protocol.NOT_FOUND,
            "error": {"type": "unknown-kind",
                      "message": "no worker handler for %r" % kind},
        }
    started = time.perf_counter()
    try:
        result = handler(payload.get("params", {}), ctx)
    except JobError as exc:
        return {
            "ok": False,
            "status": exc.status,
            "error": {"type": exc.error_type, "message": str(exc)},
        }
    except Exception as exc:
        return {
            "ok": False,
            "status": protocol.WORKER_ERROR,
            "error": {
                "type": "job-exception",
                "message": "%s: %s" % (type(exc).__name__, exc),
                "traceback": traceback.format_exc(limit=20),
            },
        }
    ctx.jobs_done += 1
    cost = 0
    cached = None
    if isinstance(result, dict):
        cost = int(result.pop("cost_actions", 0))
        artifact_info = result.get("artifact")
        if isinstance(artifact_info, dict):
            cached = bool(artifact_info.get("cached"))
    return {
        "ok": True,
        "result": result,
        "cached": cached,
        "cost_actions": cost,
        "worker_seconds": time.perf_counter() - started,
    }
