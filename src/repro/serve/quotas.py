"""Per-tenant admission control for ``artc serve``.

Two independent limits, both per tenant (the request's ``tenant``
field; untagged traffic pools under ``"anon"``):

- **max in-flight** -- a hard cap on concurrently executing requests.
  Admission past the cap is refused outright.
- **actions/sec budget** -- a token bucket denominated in *replayed
  actions*, the daemon's true unit of work (a 40k-action Magritte
  replay is three orders of magnitude heavier than a 40-action
  micro-cell; counting requests would let one tenant starve the pool
  with whales).  A request's cost is only known after it runs, so the
  bucket is **charge-behind**: admission requires a positive balance,
  completion debits the actual action count, and the balance may dip
  negative -- the tenant then waits out the overdraft at the refill
  rate.  This is the classic deferred-cost token bucket; it bounds
  sustained throughput at exactly ``actions_per_sec`` while letting
  single large requests through.

Rejections raise :class:`QuotaExceeded`, which the server turns into a
429 envelope.  Local kinds (ping/status/metrics) are never charged.

The ledger takes an injectable clock so tests are deterministic.
"""

import time


class QuotaExceeded(Exception):
    """Admission refused; ``reason`` is the machine-readable cause."""

    def __init__(self, message, reason):
        Exception.__init__(self, message)
        self.reason = reason  # "max-inflight" | "actions-budget"


class QuotaPolicy(object):
    """The limits one server applies to every tenant.

    ``max_inflight`` <= 0 or ``actions_per_sec`` <= 0 disables that
    limit.  ``burst_actions`` is the bucket capacity (default: four
    seconds of refill), which is also each tenant's starting balance.
    """

    __slots__ = ("max_inflight", "actions_per_sec", "burst_actions")

    def __init__(self, max_inflight=64, actions_per_sec=0.0,
                 burst_actions=None):
        self.max_inflight = int(max_inflight)
        self.actions_per_sec = float(actions_per_sec)
        if burst_actions is None:
            burst_actions = 4.0 * self.actions_per_sec
        self.burst_actions = float(burst_actions)

    def __repr__(self):
        return "<QuotaPolicy inflight<=%d %.0f actions/s burst %.0f>" % (
            self.max_inflight, self.actions_per_sec, self.burst_actions,
        )


class _Tenant(object):
    __slots__ = ("inflight", "tokens", "last_refill", "admitted", "rejected",
                 "actions")

    def __init__(self, tokens, now):
        self.inflight = 0
        self.tokens = tokens
        self.last_refill = now
        self.admitted = 0
        self.rejected = 0
        self.actions = 0


class QuotaLedger(object):
    """Tracks every tenant against one :class:`QuotaPolicy`."""

    def __init__(self, policy=None, clock=time.monotonic):
        self.policy = policy or QuotaPolicy()
        self.clock = clock
        self._tenants = {}

    def _tenant(self, name):
        tenant = self._tenants.get(name)
        if tenant is None:
            tenant = self._tenants[name] = _Tenant(
                self.policy.burst_actions, self.clock()
            )
        return tenant

    def _refill(self, tenant, now):
        if self.policy.actions_per_sec <= 0:
            return
        elapsed = max(0.0, now - tenant.last_refill)
        tenant.last_refill = now
        tenant.tokens = min(
            self.policy.burst_actions,
            tenant.tokens + elapsed * self.policy.actions_per_sec,
        )

    def admit(self, name):
        """Admit one request for ``name`` or raise
        :class:`QuotaExceeded`."""
        tenant = self._tenant(name)
        self._refill(tenant, self.clock())
        if 0 < self.policy.max_inflight <= tenant.inflight:
            tenant.rejected += 1
            raise QuotaExceeded(
                "tenant %r already has %d requests in flight (max %d)"
                % (name, tenant.inflight, self.policy.max_inflight),
                reason="max-inflight",
            )
        if self.policy.actions_per_sec > 0 and tenant.tokens <= 0:
            tenant.rejected += 1
            raise QuotaExceeded(
                "tenant %r is over its %.0f actions/sec budget "
                "(balance %.0f); retry later"
                % (name, self.policy.actions_per_sec, tenant.tokens),
                reason="actions-budget",
            )
        tenant.inflight += 1
        tenant.admitted += 1
        return tenant

    def settle(self, name, actions=0):
        """Complete one admitted request, debiting its actual cost."""
        tenant = self._tenant(name)
        tenant.inflight = max(0, tenant.inflight - 1)
        if actions:
            tenant.actions += int(actions)
            if self.policy.actions_per_sec > 0:
                self._refill(tenant, self.clock())
                tenant.tokens -= float(actions)

    def snapshot(self):
        """Per-tenant accounting for the status endpoint."""
        now = self.clock()
        out = {}
        for name, tenant in sorted(self._tenants.items()):
            self._refill(tenant, now)
            out[name] = {
                "inflight": tenant.inflight,
                "tokens": tenant.tokens,
                "admitted": tenant.admitted,
                "rejected": tenant.rejected,
                "actions": tenant.actions,
            }
        return out
