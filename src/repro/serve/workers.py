"""The sharded worker-process pool behind ``artc serve``.

Workers are **processes, not threads**: the discrete-event simulator
is pure Python, so concurrent replays in one interpreter would
serialize on the GIL (and share mutable module state the cores were
never built to share).  Each worker owns a duplex pipe to the parent
and runs :func:`worker_main`: receive one job, execute it through
:mod:`repro.serve.jobs`, send one reply.

Sharding: a job's coalescing key picks its shard
(``int(key[:8], 16) % nshards``), so identical cells always land on
the same worker and its in-memory benchmark memo stays hot.  Each
shard has its own queue; depth is exported as a gauge.

Failure handling, per job:

- **crash** -- the blocking ``recv`` raises ``EOFError``; the job
  fails with a 500 ``worker-crashed`` envelope and the shard re-spawns
  a fresh process before taking its next job.
- **timeout** -- the parent kills the worker outright (a wedged replay
  holds the process hostage; there is nothing gentler to do), replies
  504, and re-spawns.  In-replay hangs can additionally be bounded
  from *inside* via the request's ``watchdog`` param, which rides the
  PR 4 hardening machinery.

Shutdown sends each worker a ``None`` sentinel, joins briefly, then
terminates stragglers.
"""

import asyncio
import multiprocessing
import os
from concurrent.futures import ThreadPoolExecutor

from repro.serve import protocol

#: Sentinel asking a worker process to exit its loop.
_STOP = None


def default_worker_count():
    """Half the cores, clamped to [2, 8]: replay is CPU-bound, and the
    front-end + executor threads want some room."""
    try:
        cores = os.cpu_count() or 2
    except (AttributeError, OSError):  # pragma: no cover
        cores = 2
    return max(2, min(8, cores // 2 or 2))


def shard_of(key, nshards):
    """Stable shard assignment from a coalescing key."""
    return int(key[:8], 16) % nshards


def worker_main(conn, shard, options):
    """Worker-process entry point: one job in, one reply out, forever.

    ``options``: ``artifact_dir`` (the shared content-addressed cache
    root) and ``allow_debug``.  Module-level so it is picklable under
    the ``spawn`` start method too.
    """
    from repro.serve.jobs import JobContext, execute

    ctx = JobContext(
        artifact_dir=options.get("artifact_dir"),
        allow_debug=options.get("allow_debug", False),
    )
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is _STOP:
            break
        job_id, payload = message
        reply = execute(payload, ctx)
        reply["shard"] = shard
        reply["pid"] = os.getpid()
        reply["jobs_done"] = ctx.jobs_done
        reply["compiles"] = ctx.compiles
        try:
            conn.send((job_id, reply))
        except (BrokenPipeError, OSError):
            break
    conn.close()


class WorkerCrashed(Exception):
    """The worker died under a job."""


class _WorkerHandle(object):
    """One shard's live process + pipe."""

    __slots__ = ("shard", "options", "process", "conn", "jobs_done", "mp")

    def __init__(self, shard, options, mp_context):
        self.shard = shard
        self.options = options
        self.mp = mp_context
        self.process = None
        self.conn = None
        self.jobs_done = 0
        self.spawn()

    def spawn(self):
        parent_conn, child_conn = self.mp.Pipe(duplex=True)
        self.process = self.mp.Process(
            target=worker_main,
            args=(child_conn, self.shard, self.options),
            name="artc-serve-worker-%d" % self.shard,
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn

    def kill(self):
        try:
            self.process.kill()
        except (AttributeError, OSError):  # pragma: no cover
            try:
                self.process.terminate()
            except OSError:
                pass
        try:
            self.conn.close()
        except OSError:
            pass

    def alive(self):
        return self.process is not None and self.process.is_alive()


class ProcessPool(object):
    """``nshards`` worker processes, one dispatch loop per shard.

    Lives entirely on the server's asyncio loop: ``submit`` enqueues a
    job and returns an awaitable future that resolves to the worker's
    reply envelope (never raises -- failures are error envelopes, so
    coalesced followers can share them safely).
    """

    def __init__(self, nshards=None, artifact_dir=None, allow_debug=False,
                 metrics=None):
        self.nshards = nshards or default_worker_count()
        self.options = {"artifact_dir": artifact_dir, "allow_debug": allow_debug}
        self.metrics = metrics
        self.respawns = 0
        self.crashes = 0
        self.timeouts = 0
        self._handles = []
        self._queues = []
        self._dispatchers = []
        self._executor = None
        self._running = False
        self._mp = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else None
        )

    # -- lifecycle -----------------------------------------------------

    async def start(self):
        self._executor = ThreadPoolExecutor(
            max_workers=self.nshards + 1,
            thread_name_prefix="artc-serve-pool",
        )
        self._handles = [
            _WorkerHandle(shard, self.options, self._mp)
            for shard in range(self.nshards)
        ]
        self._queues = [asyncio.Queue() for _ in range(self.nshards)]
        self._running = True
        self._dispatchers = [
            asyncio.ensure_future(self._dispatch(shard))
            for shard in range(self.nshards)
        ]

    async def stop(self, drain_timeout=10.0):
        """Graceful: stop dispatch, sentinel the workers, join, then
        terminate whatever is left."""
        self._running = False
        for queue in self._queues:
            queue.put_nowait(_STOP)
        if self._dispatchers:
            await asyncio.wait(self._dispatchers, timeout=drain_timeout)
        for handle in self._handles:
            try:
                handle.conn.send(_STOP)
            except (OSError, ValueError):
                pass
        loop = asyncio.get_event_loop()
        for handle in self._handles:
            await loop.run_in_executor(
                self._executor, handle.process.join, 2.0
            )
            if handle.alive():
                handle.kill()
        self._executor.shutdown(wait=False)

    # -- submission ----------------------------------------------------

    def queue_depth(self):
        return sum(queue.qsize() for queue in self._queues)

    def submit(self, key, payload, timeout=None):
        """Enqueue one job on its shard; returns a future resolving to
        the worker's reply envelope."""
        if not self._running:
            future = asyncio.get_event_loop().create_future()
            future.set_result({
                "ok": False,
                "status": protocol.UNAVAILABLE,
                "error": {"type": "shutting-down",
                          "message": "worker pool is stopped"},
            })
            return future
        shard = shard_of(key, self.nshards)
        future = asyncio.get_event_loop().create_future()
        self._queues[shard].put_nowait((payload, future, timeout))
        if self.metrics is not None:
            depth = self.queue_depth()
            self.metrics.gauge("serve.queue_depth").set(depth)
            self.metrics.histogram(
                "serve.queue_depth_observed", bounds=_COUNT_BOUNDS()
            ).observe(float(depth))
        return future

    # -- dispatch ------------------------------------------------------

    async def _dispatch(self, shard):
        queue = self._queues[shard]
        while True:
            job = await queue.get()
            if job is _STOP:
                break
            payload, future, timeout = job
            envelope = await self._run_on(shard, payload, timeout)
            envelope.setdefault("shard", shard)
            if self.metrics is not None:
                self.metrics.gauge("serve.queue_depth").set(self.queue_depth())
            if not future.cancelled():
                future.set_result(envelope)
        # Drain anything still queued with 503s so no future hangs.
        while not queue.empty():
            job = queue.get_nowait()
            if job is _STOP:
                continue
            _payload, future, _timeout = job
            if not future.cancelled():
                future.set_result({
                    "ok": False,
                    "status": protocol.UNAVAILABLE,
                    "error": {"type": "shutting-down",
                              "message": "server stopped before this job ran"},
                    "shard": shard,
                })

    async def _run_on(self, shard, payload, timeout):
        handle = self._handles[shard]
        loop = asyncio.get_event_loop()
        if not handle.alive():
            self._respawn(shard)
            handle = self._handles[shard]
        try:
            handle.conn.send((id(payload), payload))
        except (OSError, ValueError):
            self._note_crash()
            self._respawn(shard)
            return self._crash_envelope("worker pipe was closed")
        recv = loop.run_in_executor(self._executor, handle.conn.recv)
        try:
            if timeout is not None:
                _job_id, reply = await asyncio.wait_for(recv, timeout)
            else:
                _job_id, reply = await recv
        except asyncio.TimeoutError:
            self.timeouts += 1
            handle.kill()
            # The executor thread's recv fails with EOF once the dead
            # worker's pipe closes; swallow that quietly.
            recv.add_done_callback(_swallow)
            self._respawn(shard)
            return {
                "ok": False,
                "status": protocol.TIMEOUT,
                "error": {
                    "type": "timeout",
                    "message": "job exceeded its %.3fs timeout; "
                               "worker killed and re-spawned" % timeout,
                },
            }
        except (EOFError, OSError):
            self._note_crash()
            self._respawn(shard)
            return self._crash_envelope(
                "worker died mid-job (exitcode %r)"
                % getattr(handle.process, "exitcode", None)
            )
        handle.jobs_done += 1
        return reply

    def _respawn(self, shard):
        old = self._handles[shard]
        if old.alive():
            old.kill()
        self._handles[shard] = _WorkerHandle(shard, self.options, self._mp)
        self.respawns += 1
        if self.metrics is not None:
            self.metrics.counter("serve.workers.respawns").inc()

    def _note_crash(self):
        self.crashes += 1
        if self.metrics is not None:
            self.metrics.counter("serve.workers.crashes").inc()

    @staticmethod
    def _crash_envelope(message):
        return {
            "ok": False,
            "status": protocol.WORKER_ERROR,
            "error": {"type": "worker-crashed", "message": message},
        }

    # -- introspection -------------------------------------------------

    def describe(self):
        return [
            {
                "shard": handle.shard,
                "pid": handle.process.pid,
                "alive": handle.alive(),
                "jobs_done": handle.jobs_done,
                "queued": self._queues[handle.shard].qsize()
                if self._queues else 0,
            }
            for handle in self._handles
        ]


def _swallow(future):
    try:
        future.result()
    except BaseException:
        pass


def _COUNT_BOUNDS():
    from repro.obs.metrics import COUNT_BOUNDS

    return COUNT_BOUNDS
