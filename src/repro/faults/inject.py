"""The runtime fault injector.

The storage stack consults :meth:`FaultInjector.on_dispatch` once per
request, at the moment a dispatcher worker pulls it off the scheduler
queue -- the point where real hardware faults surface.  Decisions are
made in dispatch order with a plan-local RNG, so the same plan against
the same request stream yields the same :class:`FaultEvent` log.

Outcomes:

- ``eio``: charge the device's internal-retry penalty, then complete
  the request with ``error="EIO"`` (no transfer happens).
- ``latency``: charge ``factor`` x the device's fault penalty (or an
  explicit ``duration``) before servicing normally.
- ``stall``: hold the request for ``duration`` seconds before
  servicing; with no duration the request hangs forever (a dead drive
  -- the hardened replayer's watchdog exists for exactly this).
- ``torn_write``: service normally, but mark the trailing ``blocks``
  of the transfer as never having reached the platter; the durability
  tracker counts them lost even though the write "completed".
"""

from repro.obs.context import of_engine
from repro.sim.events import Event


class FaultOutcome(object):
    """What the stack should do to one dispatched request."""

    __slots__ = ("kind", "error", "delay", "hold", "torn_blocks", "rule_index")

    def __init__(self, kind, error=None, delay=0.0, hold=None,
                 torn_blocks=0, rule_index=-1):
        self.kind = kind
        self.error = error
        self.delay = delay
        self.hold = hold
        self.torn_blocks = torn_blocks
        self.rule_index = rule_index


class FaultEvent(object):
    """One injected fault, as logged (and exported with the report)."""

    __slots__ = ("time", "kind", "device", "spindle", "lba", "nblocks",
                 "is_write", "rule", "delay", "error", "torn_blocks")

    def __init__(self, time, kind, device, spindle, lba, nblocks,
                 is_write, rule, delay, error, torn_blocks):
        self.time = time
        self.kind = kind
        self.device = device
        self.spindle = spindle
        self.lba = lba
        self.nblocks = nblocks
        self.is_write = is_write
        self.rule = rule
        self.delay = delay
        self.error = error
        self.torn_blocks = torn_blocks

    def to_dict(self):
        out = {
            "t": self.time,
            "kind": self.kind,
            "device": self.device,
            "spindle": self.spindle,
            "lba": self.lba,
            "nblocks": self.nblocks,
            "op": "write" if self.is_write else "read",
            "rule": self.rule,
        }
        if self.delay:
            out["delay"] = self.delay
        if self.error is not None:
            out["error"] = self.error
        if self.torn_blocks:
            out["torn_blocks"] = self.torn_blocks
        return out

    def __repr__(self):
        return "<FaultEvent t=%.6f %s %s/s%d lba=%d>" % (
            self.time, self.kind, self.device, self.spindle, self.lba
        )


class FaultInjector(object):
    """Evaluates a :class:`~repro.faults.plan.FaultPlan` per dispatch."""

    def __init__(self, plan):
        self.plan = plan
        self.events = []
        self._rng = plan.rng()
        self._remaining = [rule.count for rule in plan.rules]
        self._metrics = None
        self._spans = None

    def bind(self, engine):
        """Resolve observability handles (called by the stack when the
        injector is attached)."""
        obs = of_engine(engine)
        if obs is not None:
            self._metrics = obs.metrics
            self._spans = obs.spans
        return self

    def on_dispatch(self, device_name, spindle_index, spindle, request, now):
        """The stack's per-request hook; returns a
        :class:`FaultOutcome` or None.  First armed, matching rule
        wins; rate rules draw from the plan RNG only when they match,
        so non-matching traffic never perturbs the sequence."""
        rules = self.plan.rules
        if not rules:
            return None
        remaining = self._remaining
        for index, rule in enumerate(rules):
            left = remaining[index]
            if left is not None and left <= 0:
                continue
            if not rule.matches(device_name, spindle_index, request, now):
                continue
            if rule.rate is not None and self._rng.random() >= rule.rate:
                continue
            if left is not None:
                remaining[index] = left - 1
            return self._fire(rule, index, device_name, spindle_index,
                              spindle, request, now)
        return None

    def _fire(self, rule, index, device_name, spindle_index, spindle,
              request, now):
        kind = rule.kind
        error = None
        delay = 0.0
        hold = None
        torn = 0
        if kind == "eio":
            error = "EIO"
            delay = spindle.fault_penalty(kind, request)
        elif kind == "latency":
            if rule.duration is not None:
                delay = rule.duration
            else:
                delay = rule.factor * spindle.fault_penalty(kind, request)
        elif kind == "stall":
            if rule.duration is not None:
                delay = rule.duration
            else:
                hold = Event()  # never set: the drive is gone
        else:  # torn_write
            torn = rule.blocks if rule.blocks is not None else max(
                1, request.nblocks // 2
            )
            torn = min(torn, request.nblocks)
        event = FaultEvent(
            now, kind, device_name, spindle_index, request.lba,
            request.nblocks, request.is_write, index, delay, error, torn,
        )
        self.events.append(event)
        metrics = self._metrics
        if metrics is not None:
            metrics.counter("faults.injected").inc()
            metrics.counter("faults.injected.%s" % kind).inc()
            if delay:
                metrics.gauge("faults.time_lost_seconds").add(delay)
            self._spans.instant(
                "fault:%s" % kind, "fault",
                "%s/s%d" % (device_name, spindle_index), now,
                args={"lba": request.lba, "rule": index},
            )
        return FaultOutcome(kind, error, delay, hold, torn, index)

    # -- export --------------------------------------------------------

    def log_dicts(self):
        return [event.to_dict() for event in self.events]

    def counts(self):
        out = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def __repr__(self):
        return "<FaultInjector %d rules, %d events>" % (
            len(self.plan.rules), len(self.events)
        )
