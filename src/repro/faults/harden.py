"""Hardened-replayer knobs.

These are policy objects only; the mechanisms live in
:mod:`repro.artc.replayer`:

- :class:`RetryPolicy` -- capped exponential backoff (in *simulated*
  time) for transient device errors.  An action whose traced run
  succeeded but whose replay hits EIO is retried up to
  ``max_attempts`` times before the mismatch is reported.
- ``watchdog_stall`` -- a deadlock watchdog period.  If no action
  completes for two consecutive periods the replay is aborted with a
  :class:`~repro.errors.ReplayAborted` carrying a dependency-cycle
  diagnosis instead of hanging forever (a stalled drive under a
  ``stall`` fault otherwise wedges every waiter).
- ``degrade`` -- graceful degradation: an action that fails
  unexpectedly *poisons* its graph dependents, which are recorded as
  skipped instead of executed against state the failure corrupted.
"""


class RetryPolicy(object):
    """Capped exponential backoff: ``min(cap, base * 2**attempt)``."""

    __slots__ = ("max_attempts", "base", "cap")

    def __init__(self, max_attempts=4, base=0.005, cap=0.25):
        if max_attempts < 0:
            raise ValueError("max_attempts must be >= 0")
        if base < 0 or cap < 0:
            raise ValueError("backoff times must be >= 0")
        self.max_attempts = max_attempts
        self.base = base
        self.cap = cap

    def backoff(self, attempt):
        """Simulated seconds to wait before retry number ``attempt``
        (0-based)."""
        return min(self.cap, self.base * (2 ** attempt))

    def __repr__(self):
        return "<RetryPolicy max=%d base=%g cap=%g>" % (
            self.max_attempts, self.base, self.cap
        )


class HardenConfig(object):
    """Which hardening mechanisms a replay should run with."""

    __slots__ = ("retry", "watchdog_stall", "degrade")

    def __init__(self, retry=None, watchdog_stall=None, degrade=False):
        self.retry = retry
        self.watchdog_stall = watchdog_stall
        self.degrade = degrade

    def __repr__(self):
        return "<HardenConfig retry=%r watchdog=%r degrade=%r>" % (
            self.retry, self.watchdog_stall, self.degrade
        )
