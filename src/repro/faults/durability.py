"""What has actually reached the platter.

The page cache acknowledges buffered writes long before the device
sees them; only the storage stack knows which blocks a crash would
preserve.  :class:`DurabilityTracker` shadows the write path:

- the stack tags each flush/writeback request with the file blocks it
  covers; on completion those blocks become *durable* (minus any
  injected torn tail, which is recorded as *lost* -- the overwrite
  destroyed the old version without landing the new one);
- fsync completion *acks* a file: the caller was promised everything
  up to the current size is durable, which is the contract crash
  recovery must honor (violations are reported, not silently fixed);
- journaled namespace operations (create/unlink/rename/...) enter an
  oplog; a journal-commit barrier marks the window committed.  A torn
  commit leaves its window's operations torn -- the source of
  torn-rename violations.

Everything is pure bookkeeping on the simulated timeline; the tracker
never consumes simulated time or randomness, so attaching one changes
no replay outcome.
"""

BLOCK = 4096


class NamespaceOp(object):
    """One journaled namespace change awaiting (or past) commit."""

    __slots__ = ("seq", "desc", "committed", "torn")

    def __init__(self, seq, desc):
        self.seq = seq
        self.desc = tuple(desc)
        self.committed = False
        self.torn = False

    @property
    def kind(self):
        return self.desc[0] if self.desc else "?"

    def __repr__(self):
        state = "torn" if self.torn else ("committed" if self.committed
                                          else "pending")
        return "<NamespaceOp #%d %s %s>" % (self.seq, self.desc, state)


class DurabilityTracker(object):
    def __init__(self):
        self._durable = {}  # file_id -> set(block)
        self._lost = {}  # file_id -> set(block) destroyed by torn writes
        self.acked = {}  # file_id -> (time, size) at last fsync ack
        self.oplog = []  # every NamespaceOp, in seq order
        self._next_seq = 0

    # -- seeding -------------------------------------------------------

    def seed_file(self, file_id, size):
        """Mark a snapshot-initialized file durable up to ``size``."""
        nblocks = (size + BLOCK - 1) // BLOCK
        self._durable.setdefault(file_id, set()).update(range(nblocks))

    def seed_from_fs(self, fs):
        """Seed from a freshly initialized file system: everything the
        snapshot created is on disk by definition."""
        for ino, inode in fs.table._inodes.items():
            if inode.is_reg and inode.size > 0:
                self.seed_file(ino, inode.size)
        return self

    # -- write path ----------------------------------------------------

    def note_write(self, request):
        """A write request completed; ``request.covered`` names the
        file blocks it carried (attached by the stack)."""
        covered = request.covered
        if covered is None:
            return
        file_id, blocks = covered
        if request.error is not None:
            return  # nothing landed
        torn = min(request.torn_blocks, len(blocks))
        landed = blocks if not torn else blocks[:-torn]
        durable = self._durable.setdefault(file_id, set())
        durable.update(landed)
        if torn:
            lost = self._lost.setdefault(file_id, set())
            for block in blocks[-torn:]:
                durable.discard(block)
                lost.add(block)

    def note_fsync(self, file_id, now, size):
        """fsync returned: the application was promised ``size`` bytes
        of ``file_id`` are durable."""
        self.acked[file_id] = (now, size)

    def drop(self, file_id):
        """The file was deleted; its blocks no longer need tracking."""
        self._durable.pop(file_id, None)
        self._lost.pop(file_id, None)
        self.acked.pop(file_id, None)

    # -- namespace oplog -----------------------------------------------

    def note_namespace(self, desc):
        """Record a journaled namespace change; returns its seq."""
        op = NamespaceOp(self._next_seq, desc)
        self._next_seq += 1
        self.oplog.append(op)
        return op.seq

    def commit_window(self):
        """The seq boundary a journal commit issued *now* covers."""
        return self._next_seq

    def note_commit(self, upto_seq, torn=False):
        """A journal-commit barrier completed for ops with
        ``seq < upto_seq``; a torn commit poisons its window."""
        for op in self.oplog:
            if op.seq >= upto_seq:
                break
            if not op.committed:
                op.committed = True
                op.torn = torn

    def uncommitted_ops(self):
        return [op for op in self.oplog if not op.committed]

    def torn_ops(self):
        return [op for op in self.oplog if op.torn]

    # -- queries -------------------------------------------------------

    def durable_blocks(self, file_id):
        return self._durable.get(file_id, set())

    def lost_blocks(self, file_id):
        return self._lost.get(file_id, set())

    def durable_prefix_blocks(self, file_id):
        """Consecutive durable blocks from the start of the file --
        content beyond the first hole is unreachable after a crash."""
        durable = self._durable.get(file_id)
        if not durable:
            return 0
        n = 0
        while n in durable:
            n += 1
        return n

    def durable_size(self, file_id, size):
        """Bytes of ``file_id`` a crash right now would preserve, given
        its (volatile) in-memory ``size``."""
        return min(size, BLOCK * self.durable_prefix_blocks(file_id))

    def __repr__(self):
        return "<DurabilityTracker files=%d acked=%d ops=%d>" % (
            len(self._durable), len(self.acked), len(self.oplog)
        )
