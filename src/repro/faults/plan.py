"""Fault plans: what goes wrong, where, and when.

A plan is a list of :class:`FaultRule` plus a seed.  Rules come in two
shapes:

- **probabilistic**: ``rate`` is a per-request firing probability,
  drawn from the plan's own ``random.Random(seed)`` -- *not* the
  engine's RNG, so attaching an empty or never-matching plan perturbs
  nothing and the same seed replays the same fault sequence for the
  same request stream.
- **triggered**: ``at`` names a simulated time; the rule fires on the
  first ``count`` matching dispatches at or after that instant.

Both shapes can be scoped by device name (substring of
``device.describe()``), spindle index, and request direction (``op`` =
``read``/``write``), and windowed with ``after``/``until``.

Serialized form (``repro-faultplan-v1``)::

    {"format": "repro-faultplan-v1", "seed": 7,
     "rules": [{"kind": "eio", "rate": 0.01, "op": "write"},
               {"kind": "stall", "at": 1.5, "duration": 0.25}]}

CLI shorthand (``--fault``): ``kind@time`` with optional ``:key=value``
suffixes -- ``eio@1.5``, ``eio:rate=0.01:op=write``,
``latency:rate=0.05:factor=20``, ``stall@2:duration=0.25``.
"""

import json
import random

from repro.errors import ReproError

FORMAT = "repro-faultplan-v1"

#: Recognized fault kinds.
KINDS = ("eio", "latency", "stall", "torn_write")


class FaultPlanError(ReproError):
    """A fault spec could not be parsed or is inconsistent."""


class FaultRule(object):
    """One injection rule; see the module docstring for semantics."""

    __slots__ = (
        "kind", "rate", "at", "count", "device", "spindle", "op",
        "after", "until", "factor", "duration", "blocks",
    )

    def __init__(self, kind, rate=None, at=None, count=None, device=None,
                 spindle=None, op=None, after=None, until=None,
                 factor=1.0, duration=None, blocks=None):
        if kind not in KINDS:
            raise FaultPlanError(
                "unknown fault kind %r (choose from %s)" % (kind, ", ".join(KINDS))
            )
        if (rate is None) == (at is None):
            raise FaultPlanError(
                "rule %r needs exactly one of 'rate' or 'at'" % (kind,)
            )
        if rate is not None and not (0.0 <= rate <= 1.0):
            raise FaultPlanError("rate must be in [0, 1], got %r" % (rate,))
        if op not in (None, "read", "write"):
            raise FaultPlanError("op must be 'read' or 'write', got %r" % (op,))
        self.kind = kind
        self.rate = rate
        self.at = at
        # Triggered rules default to firing once; rate rules are
        # unlimited unless capped.
        self.count = count if count is not None else (1 if at is not None else None)
        self.device = device
        self.spindle = spindle
        self.op = op
        self.after = after
        self.until = until
        self.factor = float(factor)
        self.duration = duration
        self.blocks = blocks

    def matches(self, device_name, spindle_index, request, now):
        if self.device is not None and self.device not in device_name:
            return False
        if self.spindle is not None and self.spindle != spindle_index:
            return False
        if self.op == "read" and request.is_write:
            return False
        if self.op == "write" and not request.is_write:
            return False
        if self.kind == "torn_write" and not request.is_write:
            return False
        if self.after is not None and now < self.after:
            return False
        if self.until is not None and now > self.until:
            return False
        if self.at is not None and now < self.at:
            return False
        return True

    def to_dict(self):
        out = {"kind": self.kind}
        for field in ("rate", "at", "device", "spindle", "op", "after",
                      "until", "duration", "blocks"):
            value = getattr(self, field)
            if value is not None:
                out[field] = value
        if self.factor != 1.0:
            out["factor"] = self.factor
        if self.count is not None and not (self.at is not None and self.count == 1):
            out["count"] = self.count
        return out

    @classmethod
    def from_dict(cls, data):
        data = dict(data)
        kind = data.pop("kind", None)
        if kind is None:
            raise FaultPlanError("fault rule lacks a 'kind'")
        allowed = set(cls.__slots__) - {"kind"}
        unknown = set(data) - allowed
        if unknown:
            raise FaultPlanError(
                "unknown fault rule field(s): %s" % ", ".join(sorted(unknown))
            )
        return cls(kind, **data)

    def __repr__(self):
        return "<FaultRule %s>" % (self.to_dict(),)


_VALUE_FIELDS = {
    "rate": float, "at": float, "count": int, "spindle": int,
    "after": float, "until": float, "factor": float, "duration": float,
    "blocks": int, "device": str, "op": str,
}


def parse_rule(text):
    """Parse one CLI rule string (``eio@1.5``, ``eio:rate=0.01:op=write``)."""
    parts = text.strip().split(":")
    head = parts[0]
    fields = {}
    if "@" in head:
        head, when = head.split("@", 1)
        try:
            fields["at"] = float(when)
        except ValueError:
            raise FaultPlanError("bad trigger time in %r" % (text,))
    for part in parts[1:]:
        if "=" not in part:
            raise FaultPlanError("expected key=value in %r (rule %r)" % (part, text))
        key, value = part.split("=", 1)
        key = key.strip()
        caster = _VALUE_FIELDS.get(key)
        if caster is None:
            raise FaultPlanError("unknown rule field %r in %r" % (key, text))
        try:
            fields[key] = caster(value)
        except ValueError:
            raise FaultPlanError("bad value %r for %r in %r" % (value, key, text))
    return FaultRule(head.strip(), **fields)


class FaultPlan(object):
    """An ordered rule list plus the seed for probabilistic draws."""

    def __init__(self, rules=None, seed=0):
        self.rules = list(rules or [])
        self.seed = seed

    def __len__(self):
        return len(self.rules)

    def __bool__(self):
        return bool(self.rules)

    def add(self, rule):
        self.rules.append(rule)
        return self

    def rng(self):
        """A fresh, plan-local RNG -- injection never consumes the
        engine's randomness, so an empty plan is behavior-identical to
        no plan at all."""
        return random.Random(self.seed)

    # -- serialization -------------------------------------------------

    def to_dict(self):
        return {
            "format": FORMAT,
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    def dumps(self):
        return json.dumps(self.to_dict(), indent=1)

    @classmethod
    def from_dict(cls, data):
        if data.get("format") != FORMAT:
            raise FaultPlanError("not a fault plan (expected format %r)" % FORMAT)
        return cls(
            [FaultRule.from_dict(r) for r in data.get("rules", [])],
            seed=data.get("seed", 0),
        )

    @classmethod
    def loads(cls, text):
        return cls.from_dict(json.loads(text))

    def save(self, path):
        with open(path, "w") as handle:
            handle.write(self.dumps())

    @classmethod
    def load(cls, path):
        with open(path) as handle:
            return cls.loads(handle.read())

    @classmethod
    def from_cli(cls, rule_texts, seed=0):
        """Build a plan from repeated ``--fault`` strings."""
        return cls([parse_rule(text) for text in rule_texts], seed=seed)

    def __repr__(self):
        return "<FaultPlan seed=%d rules=%d>" % (self.seed, len(self.rules))
