"""What a crashed machine's disk actually holds.

At the crash instant the VFS tree reflects every *acknowledged*
operation -- including buffered writes still sitting dirty in the page
cache and namespace changes whose journal commit never completed.
:func:`recovered_snapshot` reconstructs what a post-crash mount would
find instead:

- regular-file sizes are clamped to the durable prefix the
  :class:`~repro.faults.durability.DurabilityTracker` recorded (data
  beyond the first non-durable block is unreachable);
- namespace operations that never reached a journal commit are rolled
  back in reverse order (uncreated, re-linked, renamed back);
- operations in a *torn* commit window are rolled back too, and a torn
  ``rename`` additionally loses both names -- the classic torn-rename
  anomaly -- which is reported as a violation rather than repaired.

The function returns the rebuilt :class:`~repro.tracing.snapshot.Snapshot`
plus the list of :class:`ConsistencyViolation` -- cases where the
recovered state breaks a promise the stack made (fsync acknowledged
data that did not survive, a committed rename that lost both names).
"""

from repro.tracing.snapshot import Snapshot, SnapshotEntry
from repro.vfs.nodes import FileType

#: A lost write the stack had acknowledged as durable via fsync.
ACKED_LOST_WRITE = "acked-lost-write"
#: A rename whose journal commit tore: neither name survives.
TORN_RENAME = "torn-rename"


class ConsistencyViolation(object):
    """A promise the recovered state fails to keep."""

    __slots__ = ("kind", "path", "message", "details")

    def __init__(self, kind, path, message, details=None):
        self.kind = kind
        self.path = path
        self.message = message
        self.details = dict(details or {})

    def to_dict(self):
        out = {"kind": self.kind, "path": self.path, "message": self.message}
        if self.details:
            out["details"] = self.details
        return out

    def __repr__(self):
        return "<ConsistencyViolation %s %s>" % (self.kind, self.path)


def _walk_crashed(fs):
    """The VFS tree at the crash instant: path -> entry, path -> ino."""
    entries = {}
    inos = {}

    def _walk(inode, path):
        if path.startswith("/dev"):
            return
        if path != "/":
            if inode.is_dir:
                entries[path] = SnapshotEntry(path, FileType.DIR)
            elif inode.is_symlink:
                entries[path] = SnapshotEntry(
                    path, FileType.SYMLINK, target=inode.symlink_target
                )
            elif inode.is_reg:
                entries[path] = SnapshotEntry(
                    path, FileType.REG, size=inode.size,
                    xattrs=sorted(inode.xattrs),
                )
                inos[path] = inode.ino
            else:
                return
        if inode.is_dir:
            for name in sorted(inode.children):
                child = fs.table.get(inode.children[name])
                _walk(child, path.rstrip("/") + "/" + name)

    _walk(fs.lookup("/", follow=False), "/")
    return entries, inos


def _pop_subtree(entries, path):
    entries.pop(path, None)
    prefix = path.rstrip("/") + "/"
    for other in [p for p in entries if p.startswith(prefix)]:
        del entries[other]


def _move_subtree(entries, src, dst):
    moved = {}
    prefix = src.rstrip("/") + "/"
    for path in list(entries):
        if path == src or path.startswith(prefix):
            entry = entries.pop(path)
            new_path = dst + path[len(src):]
            entry.path = new_path
            moved[new_path] = entry
    entries.update(moved)


def _roll_back(entries, op, violations):
    """Undo one namespace op that never durably committed.  Guards are
    defensive: later (also rolled back) ops may already have removed or
    recreated the name."""
    desc = op.desc
    kind = op.kind
    if kind in ("create", "link"):
        path = desc[1]
        entry = entries.get(path)
        if entry is not None and entry.ftype == FileType.REG:
            del entries[path]
    elif kind == "symlink":
        path = desc[1]
        entry = entries.get(path)
        if entry is not None and entry.ftype == FileType.SYMLINK:
            del entries[path]
    elif kind == "mkdir":
        _pop_subtree(entries, desc[1])
    elif kind == "rmdir":
        path = desc[1]
        if path not in entries:
            entries[path] = SnapshotEntry(path, FileType.DIR)
    elif kind == "unlink":
        path, ftype, size, target = desc[1], desc[2], desc[3], desc[4]
        if path not in entries:
            entries[path] = SnapshotEntry(path, ftype, size=size, target=target)
    elif kind == "rename":
        old, new = desc[1], desc[2]
        if op.torn:
            # Neither the source nor the destination survives a torn
            # commit -- report it, don't repair it.
            _pop_subtree(entries, old)
            _pop_subtree(entries, new)
            violations.append(ConsistencyViolation(
                TORN_RENAME, new,
                "rename %r -> %r committed through a torn journal write; "
                "both names lost" % (old, new),
                {"old": old, "new": new, "seq": op.seq},
            ))
        elif old not in entries and new in entries:
            _move_subtree(entries, new, old)
    # "meta" and unknown kinds carry no recoverable namespace effect.


def _prune_orphans(entries):
    """Drop entries whose parent directory did not survive (rollback
    can remove a directory out from under committed children)."""
    kept = {}
    dirs = {"/"}
    ordered = sorted(entries.values(), key=lambda e: (e.path.count("/"), e.path))
    for entry in ordered:
        parent = entry.path.rsplit("/", 1)[0] or "/"
        if parent != "/" and parent not in dirs:
            continue
        kept[entry.path] = entry
        if entry.ftype == FileType.DIR:
            dirs.add(entry.path)
    return kept


def recovered_snapshot(fs, tracker, label="recovered"):
    """Rebuild the post-crash tree of ``fs`` from ``tracker``'s durable
    state.  Returns ``(snapshot, violations)``."""
    entries, inos = _walk_crashed(fs)
    violations = []

    # Clamp file contents to what actually hit the platter, checking
    # the fsync contract as we go.
    for path, ino in inos.items():
        entry = entries[path]
        durable = tracker.durable_size(ino, entry.size)
        acked = tracker.acked.get(ino)
        if acked is not None:
            acked_size = min(acked[1], entry.size)
            if durable < acked_size:
                violations.append(ConsistencyViolation(
                    ACKED_LOST_WRITE, path,
                    "fsync at t=%.6f acknowledged %d bytes but only %d "
                    "survived the crash" % (acked[0], acked_size, durable),
                    {"ino": ino, "acked": acked_size, "recovered": durable},
                ))
        entry.size = durable

    # Roll back namespace changes that never durably committed, newest
    # first.  Torn windows roll back too (their journal record is
    # unreadable), with rename's both-names-lost anomaly on top.
    undone = [op for op in tracker.oplog if not op.committed or op.torn]
    for op in sorted(undone, key=lambda op: op.seq, reverse=True):
        _roll_back(entries, op, violations)

    entries = _prune_orphans(entries)
    ordered = sorted(entries.values(), key=lambda e: (e.path.count("/"), e.path))
    snapshot = Snapshot(ordered, label=label)
    snapshot.validate()
    return snapshot, violations
