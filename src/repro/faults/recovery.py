"""Crash/recovery replay: kill the machine mid-replay, then resume.

``replay_with_faults`` is the orchestration entry point the CLI's
fault flags route through.  One call runs up to two replays:

1. **The faulted run.**  A fresh platform fs with the fault injector
   and durability tracker attached; a ``--crash-at`` point schedules a
   :class:`~repro.errors.MachineCrashed` at that simulated instant,
   cutting the run short with a partial report.
2. **The recovery run** (``recover=True``).  Crash recovery rebuilds a
   VFS snapshot from the blocks that actually reached the platter
   (:func:`~repro.faults.crash.recovered_snapshot`), reporting
   consistency violations; a second fs is initialized from that
   snapshot, descriptor state destroyed by the crash is silently
   rebuilt (the *reopen pass*), and the remaining action suffix
   replays against the recovered image.

With no plan and no crash point this degrades to a plain
``initialize`` + ``replay`` -- byte-identical report, same final
state -- which is the property the test suite pins down.
"""

from repro.artc.init import initialize
from repro.artc.replayer import ReplayConfig, replay
from repro.errors import MachineCrashed
from repro.faults.crash import recovered_snapshot
from repro.faults.durability import DurabilityTracker
from repro.faults.inject import FaultInjector
from repro.syscalls.registry import spec_for


class FaultedReplayResult(object):
    """Everything one faulted (possibly crashed, possibly recovered)
    replay produced."""

    def __init__(self, report):
        #: the main run's :class:`~repro.artc.report.ReplayReport`
        #: (partial when the machine crashed).
        self.report = report
        #: the recovery run's report, or None.
        self.resume_report = None
        #: simulated crash instant, or None.
        self.crashed_at = None
        #: :class:`~repro.faults.crash.ConsistencyViolation` list.
        self.violations = []
        #: the post-crash :class:`~repro.tracing.snapshot.Snapshot`.
        self.recovered = None
        #: injected :class:`~repro.faults.inject.FaultEvent` dicts.
        self.fault_events = []
        #: ``{kind: count}`` over the fault log.
        self.fault_counts = {}
        #: the durability tracker (crash runs only), for inspection.
        self.tracker = None
        #: the fs of the main run (crashed state when crashed).
        self.fs = None
        #: the fs of the recovery run, or None.
        self.resume_fs = None

    @property
    def crashed(self):
        return self.crashed_at is not None

    def summary(self):
        """The report summary, extended with fault/crash sections --
        but only when present, so a faultless run's summary is
        byte-identical to plain :func:`~repro.artc.replayer.replay`."""
        out = dict(self.report.summary())
        if self.fault_events:
            out["faults"] = {
                "events": len(self.fault_events),
                "counts": dict(self.fault_counts),
            }
        if self.crashed_at is not None:
            crash = {
                "at": self.crashed_at,
                "violations": [v.to_dict() for v in self.violations],
            }
            if self.recovered is not None:
                crash["recovered_entries"] = len(self.recovered.entries)
            if self.resume_report is not None:
                crash["resume"] = self.resume_report.summary()
            out["crash"] = crash
        return out

    def __repr__(self):
        state = "crashed@%.4f" % self.crashed_at if self.crashed else "ran"
        return "<FaultedReplayResult %s, %d faults, %d violations>" % (
            state, len(self.fault_events), len(self.violations)
        )


def _clone_config(config, **overrides):
    fields = {
        "mode": config.mode,
        "timing": config.timing,
        "jitter": config.jitter,
        "emulation": config.emulation,
        "o_excl_fix": config.o_excl_fix,
        "suppress_warnings": config.suppress_warnings,
        "reduced_deps": config.reduced_deps,
        "harden": config.harden,
        "resume_completed": config.resume_completed,
        "reopen_actions": config.reopen_actions,
    }
    fields.update(overrides)
    return ReplayConfig(**fields)


def _live_fd_creators(benchmark, completed):
    """Action indices whose created descriptors were still open at the
    crash -- the reopen pass re-issues exactly these (in idx order) so
    the resumed suffix finds its fds again.

    Mirrors the replayer's fd-generation bookkeeping: creations carry
    ``ret_fd``/``ret_fds``/``newfd_gen`` annotations, closes carry the
    closed binding's generation in ``ann["fd"]``.
    """
    live = {}  # fd number -> (generation, creator idx)
    for action in benchmark.actions:
        if action.idx not in completed:
            continue
        record = action.record
        if not record.ok:
            continue
        ann = action.ann
        if spec_for(record.name).kind == "close":
            fd = record.args.get("fd")
            current = live.get(fd)
            if current is not None and (
                "fd" not in ann or current[0] == ann["fd"]
            ):
                del live[fd]
            continue
        if "ret_fd" in ann and isinstance(record.ret, int):
            live[record.ret] = (ann["ret_fd"], action.idx)
        if "newfd_gen" in ann:
            live[record.args["newfd"]] = (ann["newfd_gen"], action.idx)
        if "ret_fds" in ann and isinstance(record.ret, (list, tuple)):
            for fd, gen in zip(record.ret, ann["ret_fds"]):
                live[fd] = (gen, action.idx)
    return tuple(sorted({idx for _gen, idx in live.values()}))


def replay_with_faults(
    benchmark,
    platform,
    config=None,
    plan=None,
    crash_at=None,
    recover=False,
    seed=0,
    obs=None,
):
    """Replay ``benchmark`` on a fresh fs from ``platform`` with faults.

    - ``plan``: a :class:`~repro.faults.plan.FaultPlan` (None or empty
      injects nothing and changes no outcome).
    - ``crash_at``: simulated time to kill the machine; the durability
      tracker is attached and crash recovery runs at that point.
    - ``recover``: after a crash, resume the remaining actions on a
      second fs initialized from the recovered snapshot.

    Returns a :class:`FaultedReplayResult`.
    """
    if config is None:
        config = ReplayConfig()
    injector = FaultInjector(plan) if plan is not None and plan else None
    tracker = DurabilityTracker() if crash_at is not None else None
    fs = platform.make_fs(seed=seed, obs=obs, faults=injector, tracker=tracker)
    if benchmark.snapshot is not None:
        initialize(fs, benchmark.snapshot)
    if tracker is not None:
        tracker.seed_from_fs(fs)
    if crash_at is not None:
        def _crash(_value):
            raise MachineCrashed(fs.engine.now)

        fs.engine.call_at(crash_at, _crash)
    try:
        report = replay(benchmark, fs, config)
    except MachineCrashed as crash:
        report = crash.partial_report
        report.crashed_at = crash.when
    result = FaultedReplayResult(report)
    result.fs = fs
    result.tracker = tracker
    if injector is not None:
        result.fault_events = injector.log_dicts()
        result.fault_counts = injector.counts()
    if report.crashed_at is None:
        return result
    result.crashed_at = report.crashed_at
    snapshot, violations = recovered_snapshot(fs, tracker)
    result.recovered = snapshot
    result.violations = violations
    if recover:
        completed = frozenset(r.idx for r in report.results)
        resume_config = _clone_config(
            config,
            resume_completed=completed,
            reopen_actions=_live_fd_creators(benchmark, completed),
        )
        # A fresh machine booted from what survived.  obs spans/metrics
        # continue on the same context so the whole story is one view.
        resume_fs = platform.make_fs(seed=seed + 1, obs=obs)
        initialize(resume_fs, snapshot)
        result.resume_fs = resume_fs
        result.resume_report = replay(benchmark, resume_fs, resume_config)
    return result
