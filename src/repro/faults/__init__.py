"""Deterministic fault injection for the simulated storage stack.

The subsystem has three layers:

- :mod:`repro.faults.plan` -- a *fault plan*: seeded probabilistic
  rules and explicit ``(time, device, kind)`` triggers, compiled from
  JSON or CLI rule strings.  Same plan + same seed => the same fault
  event log on the same request stream.
- :mod:`repro.faults.inject` -- the runtime injector the storage
  stack consults once per dispatched request; outcomes (EIO, latency
  spike, stall, torn write) are logged and mirrored into ``repro.obs``.
- :mod:`repro.faults.durability` / :mod:`~repro.faults.crash` /
  :mod:`~repro.faults.recovery` -- what survives a simulated power
  loss: a durability tracker shadows the writeback cache, a crash
  point rebuilds a VFS snapshot from the blocks that actually reached
  the platter, and recovery resumes the remaining action series,
  reporting consistency violations.
- :mod:`repro.faults.harden` -- replayer hardening knobs: capped
  exponential-backoff retry for transient EIO, a deadlock watchdog,
  and graceful degradation (record-and-skip poisoned dependents).
"""

from repro.faults.crash import ConsistencyViolation, recovered_snapshot
from repro.faults.durability import DurabilityTracker
from repro.faults.harden import HardenConfig, RetryPolicy
from repro.faults.inject import FaultEvent, FaultInjector
from repro.faults.plan import FaultPlan, FaultRule, parse_rule
from repro.faults.recovery import FaultedReplayResult, replay_with_faults

__all__ = [
    "ConsistencyViolation",
    "DurabilityTracker",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "FaultedReplayResult",
    "HardenConfig",
    "RetryPolicy",
    "parse_rule",
    "recovered_snapshot",
    "replay_with_faults",
]
