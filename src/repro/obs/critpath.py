"""The critical-path profiler: replay-makespan lower bounds.

Replay enforcement delays an action's *issue* until every enforced
predecessor's *completion*, and each replay thread plays its own
actions in order.  Both constraint families have the same shape —
``issue(v) >= done(u)`` — so the longest weighted chain through the
enforced dependency graph, with each action weighted by its service
time, is a hard lower bound on the replay makespan: no scheduler, no
matter how parallel the hardware, can finish faster.

Comparing that bound to the measured makespan answers "is this replay
mode bound by its dependency structure or by resource contention?",
which is the mechanical content of the paper's Figure 8 (edge shape)
and Figure 9 (achievable concurrency) discussions.  Attribution tells
*which rule* put each link on the chain: a critical path dominated by
``thread`` edges is limited by the application's own threading; one
dominated by ``path_stage``/``file_seq`` edges is limited by ROOT's
ordering rules and would speed up under a weaker rule set.

Weights come either from a replay report (measured per-action service
times — the bound is then exact for *that* run) or from the original
trace's call durations (a prediction available at compile time, used
by ``artc stats``).
"""

from repro.core.analysis import thread_edges
from repro.core.modes import ReplayMode

#: Attribution label for the chain head (no incoming critical edge).
START = "start"
#: Attribution label for implicit same-thread sequencing.
THREAD = "thread"


class CriticalPathResult(object):
    """The longest weighted chain and its per-rule attribution.

    - ``length``: total weight along the chain — the makespan lower
      bound, in simulated seconds.
    - ``path``: action indices on the chain, in dependency order.
    - ``time_by_kind``: seconds of chain weight attributed to the rule
      kind of each action's critical in-edge (``thread`` for implicit
      sequencing, ``start`` for the chain head).
    - ``edges_by_kind``: count of chain links per rule kind.
    - ``total_weight``: sum of every action's weight (the serial
      bound; ``length / total_weight`` is the inherent parallelism).
    """

    __slots__ = ("length", "path", "time_by_kind", "edges_by_kind",
                 "total_weight", "n_actions", "weights_label")

    def __init__(self, length, path, time_by_kind, edges_by_kind,
                 total_weight, n_actions, weights_label):
        self.length = length
        self.path = path
        self.time_by_kind = time_by_kind
        self.edges_by_kind = edges_by_kind
        self.total_weight = total_weight
        self.n_actions = n_actions
        self.weights_label = weights_label

    @property
    def parallelism(self):
        """Best-case mean concurrency: serial time over chain time."""
        return self.total_weight / self.length if self.length > 0 else 0.0

    def slack(self, makespan):
        """Measured makespan minus the bound (>= 0 when the bound is
        computed from the same run's service times)."""
        return makespan - self.length

    def to_dict(self):
        return {
            "length": self.length,
            "path": list(self.path),
            "path_actions": len(self.path),
            "n_actions": self.n_actions,
            "total_weight": self.total_weight,
            "parallelism": self.parallelism,
            "time_by_kind": dict(self.time_by_kind),
            "edges_by_kind": dict(self.edges_by_kind),
            "weights": self.weights_label,
        }

    def render(self, makespan=None):
        lines = [
            "critical path:   %.6f s over %d of %d actions (%s weights)"
            % (self.length, len(self.path), self.n_actions, self.weights_label),
            "serial time:     %.6f s (inherent parallelism %.2fx)"
            % (self.total_weight, self.parallelism),
        ]
        if makespan is not None:
            share = (self.length / makespan * 100.0) if makespan > 0 else 0.0
            lines.append(
                "measured:        %.6f s (path covers %.1f%%, slack %.6f s)"
                % (makespan, share, self.slack(makespan))
            )
        for kind, seconds in sorted(
            self.time_by_kind.items(), key=lambda kv: -kv[1]
        ):
            share = (seconds / self.length * 100.0) if self.length > 0 else 0.0
            lines.append(
                "  %-12s %.6f s  (%5.1f%%, %d links)"
                % (kind, seconds, share, self.edges_by_kind.get(kind, 0))
            )
        return "\n".join(lines)

    def __repr__(self):
        return "<CriticalPathResult %.6fs over %d actions>" % (
            self.length, len(self.path),
        )


def longest_chain(n, pred_lists, weights, kind_of, weights_label="trace"):
    """Longest weighted path over forward-pointing predecessor lists.

    ``pred_lists[i]`` must only contain indices ``< i`` (true for
    compiled graphs — every rule edge points forward in trace order —
    and for thread sequencing), which makes index order a topological
    order and the DP a single linear scan.  ``kind_of(src, dst)``
    labels each edge for attribution.
    """
    dist = [0.0] * n
    via = [None] * n
    best_end, best_len = None, 0.0
    for idx in range(n):
        longest, argmax = 0.0, None
        for pred in pred_lists[idx]:
            if pred >= idx:
                raise ValueError(
                    "edge %d -> %d is not forward in index order" % (pred, idx)
                )
            if dist[pred] > longest:
                longest, argmax = dist[pred], pred
        dist[idx] = longest + weights[idx]
        via[idx] = argmax
        if dist[idx] > best_len:
            best_len, best_end = dist[idx], idx
    path = []
    cursor = best_end
    while cursor is not None:
        path.append(cursor)
        cursor = via[cursor]
    path.reverse()
    time_by_kind = {}
    edges_by_kind = {}
    previous = None
    for idx in path:
        kind = START if previous is None else kind_of(previous, idx)
        time_by_kind[kind] = time_by_kind.get(kind, 0.0) + weights[idx]
        if previous is not None:
            edges_by_kind[kind] = edges_by_kind.get(kind, 0) + 1
        previous = idx
    return CriticalPathResult(
        best_len, path, time_by_kind, edges_by_kind,
        sum(weights), n, weights_label,
    )


def _merged_preds(actions, graph_preds, graph):
    """Graph predecessors plus implicit thread edges, with an edge-kind
    lookup that falls back to ``thread`` for implicit links."""
    implicit = thread_edges(actions)
    merged = [
        list(preds) + extra for preds, extra in zip(graph_preds, implicit)
    ]
    edge_kinds = graph.edge_kinds

    def kind_of(src, dst):
        return edge_kinds.get((src, dst), THREAD)

    return merged, kind_of


def _enforced_preds(benchmark, mode, reduced=True):
    """The dependency structure a replay mode actually enforces, as
    forward predecessor lists + an attribution function.

    Every returned constraint is of the form ``issue(dst) >= done(src)``
    and is genuinely enforced by the replayer in that mode, so the
    chain bound is valid for measured runs.  (For temporally-ordered
    replay the additional issue-order constraint is not representable
    as a done->issue edge; omitting it only weakens — never breaks —
    the bound.)
    """
    actions = benchmark.actions
    graph = benchmark.graph
    n = len(actions)
    if mode == ReplayMode.SINGLE or (
        mode == ReplayMode.ARTC and graph.program_seq
    ):
        # A single replay thread: total order, the serial bound.
        preds = [[idx - 1] if idx else [] for idx in range(n)]
        return preds, lambda src, dst: "program"
    if mode == ReplayMode.UNCONSTRAINED:
        return thread_edges(actions), lambda src, dst: THREAD
    if mode == ReplayMode.TEMPORAL:
        # Thread order plus a sound subset of the completed-before-issue
        # relation the temporal replayer waits on (the full relation is
        # quadratic; one edge from the most recently completed action
        # per issue captures the serialization chain).
        import bisect

        comp_order = sorted(
            range(n), key=lambda i: actions[i].record.t_return
        )
        returns = [actions[i].record.t_return for i in comp_order]
        preds = thread_edges(actions)
        for idx, action in enumerate(actions):
            prefix = bisect.bisect_right(returns, action.record.t_enter)
            for completed in reversed(comp_order[:prefix]):
                if completed < idx:
                    if completed not in preds[idx]:
                        preds[idx].append(completed)
                    break
        return preds, lambda src, dst: "temporal"
    graph_preds = graph.preds
    if reduced and graph.reduced_preds is not None:
        graph_preds = graph.reduced_preds
    return _merged_preds(actions, graph_preds, graph)


def replay_critical_path(benchmark, report, mode=None, reduced=True):
    """The makespan lower bound for one measured replay.

    Weighted by the per-action service times the replay actually
    observed, over the constraints its mode actually enforced — so
    ``result.length <= report.elapsed`` always holds for the run that
    produced ``report``.
    """
    if mode is None:
        mode = report.mode
    weights = [0.0] * len(benchmark.actions)
    for result in report.results:
        weights[result.idx] = result.latency
    preds, kind_of = _enforced_preds(benchmark, mode, reduced=reduced)
    return longest_chain(
        len(benchmark.actions), preds, weights, kind_of,
        weights_label="measured",
    )


def trace_critical_path(benchmark, reduced=True):
    """The compile-time prediction: same chain computation, weighted by
    the original trace's call durations (``artc stats`` view)."""
    actions = benchmark.actions
    weights = [
        max(0.0, action.record.t_return - action.record.t_enter)
        for action in actions
    ]
    graph_preds = benchmark.graph.preds
    if reduced and benchmark.graph.reduced_preds is not None:
        graph_preds = benchmark.graph.reduced_preds
    preds, kind_of = _merged_preds(actions, graph_preds, benchmark.graph)
    return longest_chain(
        len(actions), preds, weights, kind_of, weights_label="trace",
    )
