"""The observability context: one bundle of metrics + spans.

Discovery pattern: an :class:`Observability` is attached to a
simulation :class:`~repro.sim.engine.Engine` (``obs.attach(engine)``
or ``Engine(seed, obs=obs)``); every component that already holds the
engine — the storage stack, the replayer, traced applications — looks
it up once at construction time via :func:`of_engine` and caches the
instrument handles it needs.  Components built on an engine without an
attached context hold ``None`` handles and skip instrumentation
entirely, which is what keeps the disabled path zero-cost: no registry
lookups, no no-op calls, no branches inside inner loops.

``NULL_OBS`` is a shared always-disabled context for call sites that
want an object rather than ``None``.
"""

from repro.obs.metrics import Metrics, NULL_METRICS
from repro.obs.spans import NULL_SPANS, SpanRecorder


class Observability(object):
    """Metrics registry + span recorder, enabled as a unit."""

    enabled = True

    def __init__(self, metrics=None, spans=None):
        self.metrics = metrics if metrics is not None else Metrics()
        self.spans = spans if spans is not None else SpanRecorder()

    def attach(self, engine):
        """Install this context on ``engine`` and return it."""
        engine.obs = self
        return self

    # -- snapshotting --------------------------------------------------

    def collect_stack(self, stack, prefix="storage"):
        """Snapshot a storage stack's passive counters into gauges.

        The page cache and :class:`~repro.storage.stack.StackStats`
        already count hits/misses/blocks for free; exporting them as
        gauges at collection time costs the hot paths nothing.
        """
        gauge = self.metrics.gauge
        for name, value in stack.stats.as_dict().items():
            gauge("%s.%s" % (prefix, name)).set(value)
        cache = stack.cache
        gauge("%s.cache.hits" % prefix).set(cache.hits)
        gauge("%s.cache.misses" % prefix).set(cache.misses)
        total = cache.hits + cache.misses
        gauge("%s.cache.hit_rate" % prefix).set(
            cache.hits / total if total else 0.0
        )
        gauge("%s.cache.resident_pages" % prefix).set(len(cache))
        gauge("%s.cache.dirty_pages" % prefix).set(cache.dirty_count)

    def to_dict(self):
        return {"metrics": self.metrics.to_dict()}


class _NullObservability(Observability):
    enabled = False

    def __init__(self):
        self.metrics = NULL_METRICS
        self.spans = NULL_SPANS

    def attach(self, engine):
        # Attaching the null context is the same as attaching nothing.
        engine.obs = None
        return self

    def collect_stack(self, stack, prefix="storage"):
        pass


#: Shared always-disabled context.
NULL_OBS = _NullObservability()


def of_engine(engine):
    """The enabled :class:`Observability` attached to ``engine``, or
    ``None``.  The single discovery point used by instrumented
    components."""
    obs = getattr(engine, "obs", None)
    if obs is not None and obs.enabled:
        return obs
    return None
