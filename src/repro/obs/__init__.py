"""repro.obs — simulation-time observability.

Three pieces (see docs/OBSERVABILITY.md):

- :mod:`repro.obs.metrics` — counters, gauges, log-scale histograms.
- :mod:`repro.obs.spans` — attributed intervals on simulated time,
  exportable as Chrome ``trace_event`` JSON (Perfetto) or JSONL.
- :mod:`repro.obs.critpath` — dependency-chain makespan lower bounds
  with per-rule attribution.

Everything is off unless an :class:`Observability` context is attached
to the simulation engine; the disabled path costs nothing.
"""

from repro.obs.context import NULL_OBS, Observability, of_engine
from repro.obs.critpath import (
    CriticalPathResult,
    longest_chain,
    replay_critical_path,
    trace_critical_path,
)
from repro.obs.metrics import (
    COUNT_BOUNDS,
    LATENCY_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    Metrics,
    NULL_METRICS,
    NullMetrics,
)
from repro.obs.spans import NULL_SPANS, NullSpanRecorder, Span, SpanRecorder

__all__ = [
    "COUNT_BOUNDS",
    "Counter",
    "CriticalPathResult",
    "Gauge",
    "Histogram",
    "LATENCY_BOUNDS",
    "Metrics",
    "NULL_METRICS",
    "NULL_OBS",
    "NULL_SPANS",
    "NullMetrics",
    "NullSpanRecorder",
    "Observability",
    "Span",
    "SpanRecorder",
    "longest_chain",
    "of_engine",
    "replay_critical_path",
    "trace_critical_path",
]
