"""The metrics registry: counters, gauges, and log-scale histograms.

Instruments are named with dotted paths (``storage.hdd.seek_seconds``)
and live in a :class:`Metrics` registry.  Components acquire their
instrument handles *once* (at construction time) and then pay one
method call per update; when observability is disabled they hold
``None`` and skip the call entirely, so the hot paths of the simulator
are untouched (see :mod:`repro.obs.context` for the discovery
pattern).

Histograms use fixed log-scale bucket bounds so that two registries
are always mergeable and exports are stable across runs.  The default
bounds suit latencies: 1 µs to ~67 s in powers of four.
"""

from bisect import bisect_left

#: Default histogram bounds: 1 µs * 4**i — thirteen buckets spanning
#: microsecond CPU charges to minute-scale replays, plus overflow.
LATENCY_BOUNDS = tuple(1e-6 * 4 ** i for i in range(13))

#: Bounds for small cardinalities (queue depths, batch sizes): powers
#: of two from 1 to 4096.
COUNT_BOUNDS = tuple(float(2 ** i) for i in range(13))


class Counter(object):
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, n=1):
        self.value += n

    def __repr__(self):
        return "<Counter %s=%d>" % (self.name, self.value)


class Gauge(object):
    """A point-in-time value (set, not accumulated)."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0.0

    def set(self, value):
        self.value = value

    def add(self, delta):
        self.value += delta

    def __repr__(self):
        return "<Gauge %s=%r>" % (self.name, self.value)


class Histogram(object):
    """A fixed-bucket log-scale histogram.

    ``bounds[i]`` is the inclusive upper edge of bucket ``i``; one
    overflow bucket catches everything beyond the last bound.  ``sum``
    and ``count`` make means exact even though bucket placement is
    approximate.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "sum", "max")

    def __init__(self, name, bounds=LATENCY_BOUNDS):
        self.name = name
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.max = 0.0

    def observe(self, value):
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value > self.max:
            self.max = value

    @property
    def mean(self):
        return self.sum / self.count if self.count else 0.0

    def __repr__(self):
        return "<Histogram %s n=%d mean=%g>" % (self.name, self.count, self.mean)


class Metrics(object):
    """A registry of named instruments.

    ``counter``/``gauge``/``histogram`` create on first use and return
    the same instrument thereafter, so handles can be acquired eagerly
    and shared.  Asking for an existing name with a different
    instrument type is a programming error and raises.
    """

    enabled = True

    def __init__(self):
        self._instruments = {}

    def _get(self, name, factory, *args):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = factory(name, *args)
        elif not isinstance(instrument, factory):
            raise TypeError(
                "metric %r is a %s, not a %s"
                % (name, type(instrument).__name__, factory.__name__)
            )
        return instrument

    def counter(self, name):
        return self._get(name, Counter)

    def gauge(self, name):
        return self._get(name, Gauge)

    def histogram(self, name, bounds=LATENCY_BOUNDS):
        return self._get(name, Histogram, bounds)

    def __iter__(self):
        return iter(sorted(self._instruments.values(), key=lambda i: i.name))

    def __len__(self):
        return len(self._instruments)

    def get(self, name):
        """The instrument registered under ``name``, or None."""
        return self._instruments.get(name)

    def value(self, name, default=None):
        """Counter/gauge value (or histogram sum) for ``name``."""
        instrument = self._instruments.get(name)
        if instrument is None:
            return default
        if isinstance(instrument, Histogram):
            return instrument.sum
        return instrument.value

    # -- export --------------------------------------------------------

    def to_dict(self):
        """A JSON-serializable snapshot of every instrument."""
        out = {}
        for instrument in self:
            if isinstance(instrument, Counter):
                out[instrument.name] = {"type": "counter", "value": instrument.value}
            elif isinstance(instrument, Gauge):
                out[instrument.name] = {"type": "gauge", "value": instrument.value}
            else:
                out[instrument.name] = {
                    "type": "histogram",
                    "count": instrument.count,
                    "sum": instrument.sum,
                    "max": instrument.max,
                    "mean": instrument.mean,
                    "bounds": list(instrument.bounds),
                    "buckets": list(instrument.buckets),
                }
        return out

    def render(self, prefix=""):
        """A human-readable listing, optionally filtered by name prefix."""
        lines = []
        for instrument in self:
            if prefix and not instrument.name.startswith(prefix):
                continue
            if isinstance(instrument, Histogram):
                lines.append(
                    "%-44s n=%-8d mean=%-12.6g max=%.6g"
                    % (instrument.name, instrument.count, instrument.mean,
                       instrument.max)
                )
            else:
                lines.append("%-44s %g" % (instrument.name, instrument.value))
        return "\n".join(lines)


class NullMetrics(Metrics):
    """The disabled registry: every instrument is a shared no-op.

    Components that do acquire handles from a disabled registry (rather
    than holding ``None``) still do no bookkeeping; nothing is ever
    recorded or exported.
    """

    enabled = False

    def __init__(self):
        Metrics.__init__(self)
        self._null = _NullInstrument()

    def counter(self, name):
        return self._null

    def gauge(self, name):
        return self._null

    def histogram(self, name, bounds=LATENCY_BOUNDS):
        return self._null

    def __iter__(self):
        return iter(())

    def __len__(self):
        return 0


class _NullInstrument(object):
    __slots__ = ()
    name = "(null)"
    value = 0
    count = 0
    sum = 0.0

    def inc(self, n=1):
        pass

    def set(self, value):
        pass

    def add(self, delta):
        pass

    def observe(self, value):
        pass


#: Shared disabled registry (see :data:`repro.obs.context.NULL_OBS`).
NULL_METRICS = NullMetrics()
