"""The span recorder: attributed intervals on *simulated* time.

Every replayed action, device I/O, and synchronization wait can be
recorded as a span — a ``(name, category, track, start, end, args)``
tuple where ``track`` is the lane it renders on (a replay thread
``T3``, a device queue ``hdd/s0``).  Instant markers (zero-duration
annotations such as divergence warnings) share the same stream.

Exports:

- :meth:`SpanRecorder.to_chrome` — the Chrome ``trace_event`` JSON
  object format, loadable in ``chrome://tracing`` and Perfetto.
  Simulated seconds map to microseconds; tracks map to synthetic
  thread ids with ``thread_name`` metadata so the UI shows readable
  lane names.
- :meth:`SpanRecorder.to_jsonl` — one JSON object per line, for ad-hoc
  processing with ``jq``/pandas.
"""

import json


class Span(object):
    """One closed interval on a track, in simulated seconds."""

    __slots__ = ("name", "cat", "track", "start", "end", "args")

    def __init__(self, name, cat, track, start, end, args=None):
        self.name = name
        self.cat = cat
        self.track = track
        self.start = start
        self.end = end
        self.args = args

    @property
    def duration(self):
        return self.end - self.start

    def __repr__(self):
        return "<Span %s/%s [%g..%g] on %s>" % (
            self.cat, self.name, self.start, self.end, self.track,
        )


class SpanRecorder(object):
    """An append-only list of spans and instant markers."""

    enabled = True

    def __init__(self):
        self.spans = []
        self.instants = []

    def record(self, name, cat, track, start, end, args=None):
        """Record one completed span; returns it."""
        span = Span(name, cat, track, start, end, args)
        self.spans.append(span)
        return span

    def instant(self, name, cat, track, ts, args=None):
        """Record a zero-duration marker (e.g. a divergence warning)."""
        self.instants.append(Span(name, cat, track, ts, ts, args))

    def __len__(self):
        return len(self.spans) + len(self.instants)

    def tracks(self):
        """Track names in first-appearance order."""
        seen = []
        known = set()
        for span in self.spans + self.instants:
            if span.track not in known:
                known.add(span.track)
                seen.append(span.track)
        return seen

    # -- export --------------------------------------------------------

    def to_chrome(self, pid=1):
        """The Chrome ``trace_event`` JSON object format (dict).

        Times are microseconds of simulated time.  Each track becomes
        one synthetic thread id, named via ``thread_name`` metadata
        events so Perfetto shows the track label.
        """
        tids = {track: index + 1 for index, track in enumerate(self.tracks())}
        events = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": str(track)},
            }
            for track, tid in tids.items()
        ]
        for span in self.spans:
            event = {
                "name": str(span.name),
                "cat": str(span.cat),
                "ph": "X",
                "pid": pid,
                "tid": tids[span.track],
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
            }
            if span.args:
                event["args"] = span.args
            events.append(event)
        for mark in self.instants:
            event = {
                "name": str(mark.name),
                "cat": str(mark.cat),
                "ph": "i",
                "s": "t",  # thread-scoped instant
                "pid": pid,
                "tid": tids[mark.track],
                "ts": mark.start * 1e6,
            }
            if mark.args:
                event["args"] = mark.args
            events.append(event)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def to_chrome_json(self, pid=1):
        return json.dumps(self.to_chrome(pid=pid))

    def to_jsonl(self):
        """One JSON object per span/instant, in recording order."""
        lines = []
        for span in self.spans:
            entry = {
                "name": span.name,
                "cat": span.cat,
                "track": span.track,
                "start": span.start,
                "end": span.end,
            }
            if span.args:
                entry["args"] = span.args
            lines.append(json.dumps(entry))
        for mark in self.instants:
            entry = {
                "name": mark.name,
                "cat": mark.cat,
                "track": mark.track,
                "ts": mark.start,
            }
            if mark.args:
                entry["args"] = mark.args
            lines.append(json.dumps(entry))
        return "\n".join(lines) + ("\n" if lines else "")

    def save_chrome(self, path, pid=1):
        with open(path, "w") as handle:
            handle.write(self.to_chrome_json(pid=pid))

    def save_jsonl(self, path):
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())

    # -- queries (used by reports and tests) ---------------------------

    def by_category(self):
        out = {}
        for span in self.spans:
            out.setdefault(span.cat, []).append(span)
        return out

    def total_time(self, cat=None):
        return sum(
            span.duration
            for span in self.spans
            if cat is None or span.cat == cat
        )


class NullSpanRecorder(SpanRecorder):
    """The disabled recorder: drops everything, exports empty."""

    enabled = False

    def record(self, name, cat, track, start, end, args=None):
        return None

    def instant(self, name, cat, track, ts, args=None):
        pass


#: Shared disabled recorder (see :data:`repro.obs.context.NULL_OBS`).
NULL_SPANS = NullSpanRecorder()
