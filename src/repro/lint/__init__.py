"""Static race & divergence analysis over compiled traces (``artc lint``).

Four passes, each independently usable and aggregated by
:func:`lint_trace`:

- **races** (:mod:`repro.lint.conflicts`): cross-thread conflicting
  resource touches left unordered by the chosen rule set -- each is a
  potential replay divergence, reported with the weakest rule that
  would order it;
- **graph** (:mod:`repro.lint.graphcheck`): structural invariants of
  the dependency graph, including cycle membership reporting and
  reduction-soundness (closure equality) verification;
- **fsmodel** (:mod:`repro.lint.fscheck`): resource-lifecycle
  anomalies in the symbolic file-system interpretation;
- **modes** (:mod:`repro.lint.modesafety`): the per-mode safety matrix
  statically predicting Table 3's error cells.

The passes prove (or refute) mode safety *before* any replay runs, and
serve as the correctness oracle for optimizations of the dependency
builder, the reduction pass, and the replayer: whatever they change,
the certified partial order must not.
"""

from typing import Any, List, Sequence

from repro.core.deps import build_dependencies
from repro.core.model import TraceModel
from repro.core.modes import RuleSet
from repro.core.reduce import reduce_graph
from repro.lint.conflicts import RaceScan, find_races, touch_table
from repro.lint.fscheck import check_fs_model
from repro.lint.graphcheck import check_graph
from repro.lint.modesafety import mode_safety_matrix, predicted_unsafe
from repro.lint.report import (
    ERROR,
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_INTERNAL,
    INFO,
    WARNING,
    Finding,
    LintReport,
    PassResult,
)

__all__ = [
    "ERROR", "EXIT_CLEAN", "EXIT_FINDINGS", "EXIT_INTERNAL", "INFO",
    "WARNING", "Finding", "LintReport", "PassResult", "RaceScan",
    "check_fs_model", "check_graph", "find_races", "lint_benchmark",
    "lint_trace", "mode_safety_matrix", "predicted_unsafe", "touch_table",
]


def _race_pass(actions: Sequence[Any], graph: Any,
               max_findings: int) -> PassResult:
    scan = find_races(actions, graph, max_findings=max_findings)
    findings: List[Finding] = []
    for race in scan.races:
        findings.append(Finding(
            "unordered-conflict", ERROR,
            "#%d %s (%s) races #%d %s (%s) on %r across threads %s/%s"
            % (race["a"], race["a_call"], race["a_role"],
               race["b"], race["b_call"], race["b_role"],
               race["resource"], race["a_tid"], race["b_tid"]),
            actions=(race["a"], race["b"]),
            resource=race["resource"],
            rule=race["rule"],
        ))
    return PassResult("races", findings, scan.stats())


def lint_trace(trace: Any, snapshot: Any = None, ruleset: Any = None,
               modes: bool = True, max_findings: int = 25,
               reduce: bool = True) -> LintReport:
    """Run every lint pass over ``trace``; returns a
    :class:`~repro.lint.report.LintReport`.

    ``ruleset`` is the compile mode being certified (ARTC default when
    omitted); ``modes=False`` skips the mode-safety matrix;
    ``reduce=False`` skips edge reduction (the graph pass then has no
    reduction to verify).
    """
    if ruleset is None:
        ruleset = RuleSet.artc_default()
    model = TraceModel(trace, snapshot)
    graph = build_dependencies(model.actions, ruleset)
    if reduce:
        reduce_graph(graph, [a.record.tid for a in model.actions])
    return lint_compiled(
        model.actions, graph, ruleset,
        snapshot=snapshot,
        label=trace.label,
        modes=modes,
        max_findings=max_findings,
    )


def lint_benchmark(benchmark: Any, modes: bool = True,
                   max_findings: int = 25) -> LintReport:
    """Lint an already-compiled benchmark.

    Serialized benchmarks do not carry resource touches, so the trace
    is re-interpreted symbolically; the dependency graph and rule set
    are taken from the benchmark as compiled.  A benchmark that
    carries execution plans (an ``.artcb`` artifact) additionally gets
    an **ir** pass diffing every embedded plan entry against an
    independent recompile, so linting an artifact exercises the IR it
    actually ships.
    """
    model = TraceModel(benchmark.to_trace(), benchmark.snapshot)
    report = lint_compiled(
        model.actions,
        benchmark.graph,
        benchmark.ruleset,
        snapshot=benchmark.snapshot,
        label=benchmark.label,
        modes=modes,
        max_findings=max_findings,
    )
    from repro.artc import planir

    plans = planir.cached_plans(benchmark)
    if plans:
        from repro.verify.transval import plan_pass

        report.add(plan_pass(benchmark, plans, max_findings=max_findings))
    return report


def lint_compiled(actions: Sequence[Any], graph: Any, ruleset: Any,
                  snapshot: Any = None, label: str = "",
                  modes: bool = True,
                  max_findings: int = 25) -> LintReport:
    """Lint pre-built actions + graph (the shared driver)."""
    report = LintReport(label=label, ruleset=ruleset)
    report.add(_race_pass(actions, graph, max_findings))
    findings, stats = check_graph(graph, actions)
    report.add(PassResult("graph", findings, stats))
    findings, stats = check_fs_model(actions, snapshot)
    report.add(PassResult("fsmodel", findings, stats))
    if modes:
        report.mode_matrix = mode_safety_matrix(actions)
    return report
