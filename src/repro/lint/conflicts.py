"""Static race detection over a compiled dependency graph.

A *conflicting pair* is two actions in different threads touching the
same FILE/PATH/FD/AIOCB resource where at least one touch mutates the
resource's replay-visible state.  A pair left unordered by the chosen
rule set -- neither action reaches the other through materialized
edges plus implicit thread sequencing -- can replay in either order,
so the two orders may produce different outcomes: each such pair is a
potential replay divergence (the static analogue of the dynamic
failures Table 3 counts).

Because every materialized edge points forward in trace order and
thread sequencing does too, "ordered" reduces to: the earlier action
is an ancestor of the later one in the closure.  The closure is the
bitset reachability matrix :func:`repro.core.reduce.closure_matrix`
already computes for reduction soundness checks.

Each reported race names the action indices, system calls, resource,
and the *weakest* Table-2 rule that would order the pair -- the lint
answer to "which mode do I need for this trace to replay faithfully".
"""

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.reduce import closure_matrix
from repro.core.resources import AIOCB, FD, FILE, PATH, Role
from repro.syscalls.registry import spec_for

#: File-resource USE touches that mutate data, size, or metadata the
#: replay of another action could observe.  Namespace operations are
#: included because they mutate the parent directory's file resource
#: (and, for rename, every descendant).
_FILE_MUTATING_KINDS = frozenset([
    "write", "pwrite", "truncate", "ftruncate", "fallocate",
    "chmod", "chown", "utimes", "setattrlist", "setxattr", "removexattr",
    "lsetxattr", "lremovexattr",
    "fchmod", "fchown", "futimes", "fsetxattr", "fremovexattr",
    "fsetattrlist",
    "rename", "unlink", "rmdir", "link", "symlink", "mkdir",
    "exchangedata", "shm_unlink",
])

#: Descriptor USE touches that advance the descriptor's cursor (the
#: state fd_seq exists to protect).
_FD_MUTATING_KINDS = frozenset([
    "read", "write", "lseek", "getdents", "getattrlistbulk",
    "getdirentriesattr",
])

#: AIO control-block USE touches that change the block's state.
_AIOCB_MUTATING_KINDS = frozenset(["aio_cancel"])

_LINT_KINDS = (FILE, PATH, FD, AIOCB)

_ROLE_RANK = {Role.USE: 0, Role.CREATE: 1, Role.DELETE: 2}


def _open_truncates(record: Any) -> bool:
    flags = record.args.get("flags", 0)
    if isinstance(flags, str):
        return "O_TRUNC" in flags
    try:
        from repro.vfs.flags import O_TRUNC

        return bool(flags & O_TRUNC)
    except Exception:
        return False


def touch_mutates(kind: str, role: Any, spec: Any, record: Any) -> bool:
    """Does this touch mutate replay-visible state of the resource?"""
    if role != Role.USE:
        return True
    if kind == FILE:
        if spec.kind in _FILE_MUTATING_KINDS:
            return True
        return spec.kind in ("open", "creat") and _open_truncates(record)
    if kind == FD:
        return spec.kind in _FD_MUTATING_KINDS
    if kind == AIOCB:
        return spec.kind in _AIOCB_MUTATING_KINDS
    return False  # PATH: mutation happens via generation create/delete


def touch_table(actions: Sequence[Any]
                ) -> Dict[Any, List[Tuple[int, Any, Any, bool]]]:
    """Per-resource touch series, one merged entry per action:
    ``{key: [(idx, tid, role, mutating), ...]}`` in trace order."""
    table: Dict[Any, List[Tuple[int, Any, Any, bool]]] = {}
    for action in actions:
        spec = spec_for(action.record.name)
        merged: Dict[Any, List[Any]] = {}
        for touch in action.touches:
            kind = touch.key[0]
            if kind not in _LINT_KINDS:
                continue
            mutates = touch_mutates(kind, touch.role, spec, action.record)
            previous = merged.get(touch.key)
            if previous is None:
                merged[touch.key] = [touch.role, mutates]
            else:
                if _ROLE_RANK[touch.role] > _ROLE_RANK[previous[0]]:
                    previous[0] = touch.role
                previous[1] = previous[1] or mutates
        tid = action.record.tid
        for key, (role, mutates) in merged.items():
            table.setdefault(key, []).append((action.idx, tid, role, mutates))
    return table


def weakest_ordering_rule(kind: str, role_a: Any, role_b: Any,
                          size_linked: bool = False) -> str:
    """The weakest Table-2 rule that would order a conflicting pair.

    Stage suffices whenever one side is the resource's create or
    delete; otherwise only sequential ordering helps (for files, the
    future-work ``file_size`` mode when the pair is linked by a size
    dependency).
    """
    staged = Role.CREATE in (role_a, role_b) or Role.DELETE in (role_a, role_b)
    if kind == PATH:
        return "path_stage+"
    if kind == FILE:
        if staged:
            return "file_stage"
        return "file_size" if size_linked else "file_seq"
    if kind == FD:
        return "fd_stage" if staged else "fd_seq"
    if kind == AIOCB:
        return "aio_stage" if staged else "aio_seq"
    raise ValueError("no ordering rule for resource kind %r" % (kind,))


class RaceScan(object):
    """Outcome of one race-detection run."""

    __slots__ = ("races", "n_races", "by_kind", "pairs_examined", "truncated")

    def __init__(self, races: List[Dict[str, Any]], n_races: int,
                 by_kind: Dict[str, int], pairs_examined: int,
                 truncated: bool) -> None:
        self.races = races
        self.n_races = n_races
        self.by_kind = by_kind
        self.pairs_examined = pairs_examined
        self.truncated = truncated

    def stats(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "races": self.n_races,
            "pairs_examined": self.pairs_examined,
        }
        for kind in sorted(self.by_kind):
            out["races_%s" % kind] = self.by_kind[kind]
        if self.truncated:
            out["truncated"] = True
        return out


def _size_linked(actions: Sequence[Any], earlier: int,
                 later: int) -> bool:
    ann = actions[later].ann
    return ann.get("size_dep") == earlier or ann.get("size_chain") == earlier


def find_races(actions: Sequence[Any], graph: Any,
               max_findings: int = 25,
               max_races: Optional[int] = None,
               pair_budget: int = 2_000_000,
               table: Optional[Dict[Any, List[Tuple[int, Any, Any, bool]]]] = None,
               closure: Optional[List[int]] = None) -> RaceScan:
    """Enumerate unordered conflicting pairs under ``graph``.

    ``max_findings`` caps the *detailed* race records returned;
    counting continues past it.  ``max_races`` optionally stops the
    scan entirely once that many races are found (mode-matrix use) and
    ``pair_budget`` bounds total pair examinations; hitting either
    marks the scan truncated, so ``n_races`` is a lower bound.
    ``table``/``closure`` let callers reuse the touch table across
    rule sets (the touch stream is independent of the rules).
    """
    n = graph.n_actions
    tid_of = [action.record.tid for action in actions]
    if closure is None:
        closure = closure_matrix(n, graph.preds, tid_of)
    if table is None:
        table = touch_table(actions)
    races: List[Dict[str, Any]] = []
    n_races = 0
    by_kind: Dict[str, int] = {}
    pairs = 0
    truncated = False

    for key, series in table.items():
        if truncated:
            break
        if len(series) < 2:
            continue
        mutators = [entry for entry in series if entry[3]]
        if not mutators:
            continue
        kind = key[0]
        for m_idx, m_tid, m_role, _m in mutators:
            if truncated:
                break
            for o_idx, o_tid, o_role, o_mutates in series:
                if o_idx == m_idx or o_tid == m_tid:
                    continue
                if o_mutates and o_idx < m_idx:
                    continue  # mutator-mutator pair counted once
                pairs += 1
                earlier, later = (
                    (m_idx, o_idx) if m_idx < o_idx else (o_idx, m_idx)
                )
                if not (closure[later] >> earlier) & 1:
                    n_races += 1
                    by_kind[kind] = by_kind.get(kind, 0) + 1
                    if len(races) < max_findings:
                        role_of = {m_idx: m_role, o_idx: o_role}
                        rule = weakest_ordering_rule(
                            kind,
                            role_of[earlier],
                            role_of[later],
                            size_linked=_size_linked(actions, earlier, later),
                        )
                        races.append({
                            "resource": key,
                            "a": earlier,
                            "b": later,
                            "a_call": actions[earlier].record.name,
                            "b_call": actions[later].record.name,
                            "a_tid": tid_of[earlier],
                            "b_tid": tid_of[later],
                            "a_role": role_of[earlier],
                            "b_role": role_of[later],
                            "rule": rule,
                        })
                if max_races is not None and n_races >= max_races:
                    truncated = True
                    break
                if pairs >= pair_budget:
                    truncated = True
                    break
    return RaceScan(races, n_races, by_kind, pairs, truncated)
