"""FS-model consistency: lifecycle anomalies in the action stream.

The compiler's symbolic UNIX model (:mod:`repro.core.fsstate`) assigns
every FILE/PATH/FD/AIOCB touch a role in the resource's lifecycle.  A
well-formed compile yields, per resource generation, at most one
create, at most one delete, uses strictly between them, and no
interleaving between generations of the same name.  Violations mean
either the trace is internally inconsistent (concurrent tracing
artifacts, truncated capture) or the model mis-tracked state -- both
are exactly the conditions under which replay diverges even with every
rule enabled, so they surface here rather than mid-replay.

Checks:

- ``use-before-create``: a resource touched before the action that
  creates it;
- ``double-create`` / ``double-delete``: a generation created or
  deleted twice (for descriptors, a double close);
- ``use-after-delete``: a touch after the generation's delete (for
  descriptors, a write-after-close);
- ``stale-generation-reuse``: touches of an old fd/aiocb generation
  after a newer generation of the same name exists;
- ``rename-shadow``: a rename whose destination names a live file --
  advisory normally, a warning when descriptors are still open on the
  displaced file (replayed stale reads would hit the wrong data).
"""

from typing import Any, Dict, List, Sequence, Set, Tuple

from repro.core.fsstate import FsState
from repro.core.resources import AIOCB, FD, FILE, PATH, Role, name_of
from repro.lint.report import INFO, WARNING, Finding

_CHECK_KINDS = (FILE, PATH, FD, AIOCB)


def _series_by_key(actions: Sequence[Any]
                   ) -> Dict[Any, List[Tuple[int, Any]]]:
    table: Dict[Any, List[Tuple[int, Any]]] = {}
    for action in actions:
        seen: Set[Tuple[Any, Tuple[int, Any]]] = set()
        for touch in action.touches:
            if touch.key[0] not in _CHECK_KINDS:
                continue
            entry = (action.idx, touch.role)
            if (touch.key, entry) in seen:
                continue
            seen.add((touch.key, entry))
            table.setdefault(touch.key, []).append(entry)
    return table


def _call(actions: Sequence[Any], idx: int) -> str:
    return actions[idx].record.name


def _lifecycle_findings(actions: Sequence[Any],
                        table: Dict[Any, List[Tuple[int, Any]]]
                        ) -> List[Finding]:
    findings: List[Finding] = []
    for key, series in sorted(table.items()):
        kind = key[0]
        creates = [idx for idx, role in series if role == Role.CREATE]
        deletes = [idx for idx, role in series if role == Role.DELETE]
        if creates:
            first_create = creates[0]
            early = [idx for idx, role in series
                     if idx < first_create and role != Role.CREATE]
            if early:
                findings.append(Finding(
                    "use-before-create", WARNING,
                    "%r used by #%d %s before its create #%d %s"
                    % (key, early[0], _call(actions, early[0]),
                       first_create, _call(actions, first_create)),
                    actions=(early[0], first_create),
                    resource=key,
                ))
            for extra in creates[1:]:
                findings.append(Finding(
                    "double-create", WARNING,
                    "%r created again by #%d %s (first create #%d %s)"
                    % (key, extra, _call(actions, extra),
                       creates[0], _call(actions, creates[0])),
                    actions=(creates[0], extra),
                    resource=key,
                ))
        if deletes:
            check = "double-close" if kind == FD else "double-delete"
            for extra in deletes[1:]:
                findings.append(Finding(
                    check, WARNING,
                    "%r deleted again by #%d %s (first delete #%d %s)"
                    % (key, extra, _call(actions, extra),
                       deletes[0], _call(actions, deletes[0])),
                    actions=(deletes[0], extra),
                    resource=key,
                ))
            first_delete = deletes[0]
            late = [idx for idx, role in series
                    if idx > first_delete and role != Role.DELETE]
            if late:
                check = "write-after-close" if kind == FD else "use-after-delete"
                findings.append(Finding(
                    check, WARNING,
                    "%r touched by #%d %s after its delete #%d %s"
                    % (key, late[0], _call(actions, late[0]),
                       first_delete, _call(actions, first_delete)),
                    actions=(first_delete, late[0]),
                    resource=key,
                ))
    return findings


def _stale_generation_findings(actions: Sequence[Any],
                               table: Dict[Any, List[Tuple[int, Any]]]
                               ) -> List[Finding]:
    """Touches of generation ``g`` after generation ``g+1``'s create:
    the numeric name was reused while the old binding was still being
    driven (fd and aiocb names; path generations legitimately
    interleave only through their shared transition actions)."""
    findings: List[Finding] = []
    first_touch: Dict[Any, int] = {}
    for key, series in table.items():
        if key[0] not in (FD, AIOCB):
            continue
        first_touch[key] = min(idx for idx, _role in series)
    by_name: Dict[Any, List[Any]] = {}
    for key in first_touch:
        by_name.setdefault(name_of(key), []).append(key)
    for name, keys in sorted(by_name.items()):
        keys.sort(key=lambda k: k[2])  # generation order
        for older, newer in zip(keys, keys[1:]):
            boundary = first_touch[newer]
            stale = [
                idx for idx, role in table[older]
                if idx > boundary and role != Role.DELETE
            ]
            if stale:
                findings.append(Finding(
                    "stale-generation-reuse", WARNING,
                    "generation %d of %s still used by #%d %s after "
                    "generation %d began at #%d %s"
                    % (older[2], name, stale[0], _call(actions, stale[0]),
                       newer[2], boundary, _call(actions, boundary)),
                    actions=(boundary, stale[0]),
                    resource=older,
                ))
    return findings


def _rename_shadow_findings(actions: Sequence[Any], snapshot: Any
                            ) -> Tuple[List[Finding], FsState]:
    """Replay the symbolic model and flag renames whose destination is
    occupied at rename time."""
    findings: List[Finding] = []
    state = FsState(snapshot)
    for action in actions:
        record = action.record
        if record.name.startswith("rename") and record.ok:
            new = record.args.get("new")
            if new is not None and state.path_exists(new):
                displaced = state.node_at(new)
                open_fds = (
                    state.open_descriptors_of(displaced.uid)
                    if displaced is not None else []
                )
                severity = WARNING if open_fds else INFO
                extra = (
                    " with descriptors %s still open" % open_fds
                    if open_fds else ""
                )
                findings.append(Finding(
                    "rename-shadow", severity,
                    "#%d rename %s -> %s shadows a live path%s"
                    % (record.idx, record.args.get("old"), new, extra),
                    actions=(record.idx,),
                    detail={"open_fds": open_fds},
                ))
        state.apply(record)
    return findings, state


def check_fs_model(actions: Sequence[Any], snapshot: Any = None
                   ) -> Tuple[List[Finding], Dict[str, Any]]:
    """Run every FS-model check; returns (findings, stats)."""
    table = _series_by_key(actions)
    findings = _lifecycle_findings(actions, table)
    findings.extend(_stale_generation_findings(actions, table))
    shadow_findings, state = _rename_shadow_findings(actions, snapshot)
    findings.extend(shadow_findings)
    findings.sort(key=lambda f: f.actions[0] if f.actions else -1)
    stats = {
        "resources": len(table),
        "model_misses": state.model_misses,
    }
    return findings, stats
