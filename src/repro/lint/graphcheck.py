"""Graph sanity: structural invariants of compiled dependency graphs.

The edge-reduction pass (:mod:`repro.core.reduce`) and any future
optimization of the builder must preserve three invariants this pass
certifies:

- **structure**: ``edge_kinds`` and ``preds`` describe the same edge
  set -- no self edges, no backward edges (construction guarantees
  ``src < dst``), no out-of-range endpoints, no duplicate or orphaned
  entries;
- **acyclicity**: the graph plus implicit thread sequencing admits a
  replay order; a violation is reported with the actual cycle members
  (via :func:`repro.core.analysis.find_cycle`);
- **reduction soundness**: ``reduced_preds`` is a subset of ``preds``
  whose closure (union thread sequencing) equals the full closure, so
  the replayer's smaller wait sets enforce exactly the same partial
  order.  ``primary_preds``, when present, must satisfy the same
  closure equality;
- **release partition**: the batched-release grouping
  (:func:`repro.artc.planir.release_runs`) must partition each
  enforced-successor list exactly -- order-preserving, no successor
  dropped or invented, every run non-empty and owned by its members'
  thread, adjacent runs changing owners (maximality).  The scoreboard
  and JIT cores decrement pending counters run by run, so a partition
  defect silently breaks the wakeup algebra.
"""

from typing import Any, Dict, List, Sequence, Tuple

from repro.core.analysis import find_cycle, thread_edges
from repro.core.reduce import closure_matrix
from repro.lint.report import ERROR, Finding


def _structure_findings(graph: Any) -> List[Finding]:
    findings: List[Finding] = []
    n = graph.n_actions
    pred_pairs: Dict[Tuple[int, int], int] = {}
    for dst, sources in enumerate(graph.preds):
        for src in sources:
            pred_pairs[(src, dst)] = pred_pairs.get((src, dst), 0) + 1
    for (src, dst), count in sorted(pred_pairs.items()):
        if count > 1:
            findings.append(Finding(
                "duplicate-pred", ERROR,
                "edge %d->%d appears %d times in preds" % (src, dst, count),
                actions=(src, dst),
            ))
    for src, dst in sorted(graph.edge_kinds):
        kind = graph.edge_kinds[(src, dst)]
        if not (0 <= src < n and 0 <= dst < n):
            findings.append(Finding(
                "edge-out-of-range", ERROR,
                "%s edge %d->%d outside action range [0, %d)"
                % (kind, src, dst, n),
                actions=tuple(a for a in (src, dst) if 0 <= a < n),
            ))
            continue
        if src == dst:
            findings.append(Finding(
                "self-edge", ERROR,
                "%s edge %d->%d is a self edge" % (kind, src, dst),
                actions=(src,),
            ))
            continue
        if src > dst:
            findings.append(Finding(
                "backward-edge", ERROR,
                "%s edge %d->%d points backward in trace order"
                % (kind, src, dst),
                actions=(src, dst),
            ))
        if (src, dst) not in pred_pairs:
            findings.append(Finding(
                "orphaned-edge", ERROR,
                "%s edge %d->%d attributed in edge_kinds but absent "
                "from preds" % (kind, src, dst),
                actions=(src, dst),
            ))
    for (src, dst) in sorted(pred_pairs):
        if (src, dst) not in graph.edge_kinds:
            findings.append(Finding(
                "unattributed-edge", ERROR,
                "edge %d->%d in preds has no edge_kinds attribution"
                % (src, dst),
                actions=(src, dst),
            ))
    return findings


def _merge_thread_edges(pred_lists: Sequence[Sequence[int]],
                        implicit: Sequence[Sequence[int]]
                        ) -> List[List[int]]:
    return [
        list(preds) + list(extra)
        for preds, extra in zip(pred_lists, implicit)
    ]


def _release_partition_findings(
        graph: Any, tid_of: Sequence[Any]
) -> Tuple[List[Finding], int]:
    """Certify the batched-release algebra over the enforced graph
    (reduced when present -- the edge set the fast cores walk)."""
    from repro.artc.planir import release_runs

    findings: List[Finding] = []
    preds = graph.reduced_preds
    if preds is None:
        preds = graph.preds
    succs: List[List[int]] = [[] for _ in preds]
    for dst, sources in enumerate(preds):
        for src in sources:
            if 0 <= src < len(succs):
                succs[src].append(dst)
    n_runs = 0
    for idx, serial in enumerate(succs):
        runs = release_runs(serial, tid_of)
        n_runs += len(runs)
        flattened = [succ for _tid, members in runs for succ in members]
        if flattened != serial:
            findings.append(Finding(
                "release-partition", ERROR,
                "release runs of #%d flatten to %r but the serial "
                "successor list is %r" % (idx, flattened, serial),
                actions=(idx,),
                detail={"claimed": flattened, "serial": serial},
            ))
            continue
        previous_owner: Any = object()
        for owner, members in runs:
            if not members:
                findings.append(Finding(
                    "release-partition", ERROR,
                    "release run of #%d for thread %s is empty"
                    % (idx, owner),
                    actions=(idx,),
                ))
            for succ in members:
                if tid_of[succ] != owner:
                    findings.append(Finding(
                        "release-partition", ERROR,
                        "release run of #%d groups #%d under thread %s "
                        "but it belongs to %s"
                        % (idx, succ, owner, tid_of[succ]),
                        actions=(idx, succ),
                    ))
            if owner == previous_owner:
                findings.append(Finding(
                    "release-partition", ERROR,
                    "release runs of #%d are not maximal: adjacent runs "
                    "share owner %s" % (idx, owner),
                    actions=(idx,),
                ))
            previous_owner = owner
    return findings, n_runs


def check_graph(graph: Any, actions: Sequence[Any]
                ) -> Tuple[List[Finding], Dict[str, Any]]:
    """Run every graph invariant; returns (findings, stats)."""
    findings = _structure_findings(graph)
    n = graph.n_actions
    tid_of = [action.record.tid for action in actions]
    implicit = thread_edges(actions)

    cycle = None
    if all(f.check != "edge-out-of-range" for f in findings):
        cycle = find_cycle(_merge_thread_edges(graph.preds, implicit))
    if cycle is not None:
        findings.append(Finding(
            "cycle", ERROR,
            "dependency cycle of %d actions: %s"
            % (len(cycle), " -> ".join(str(c) for c in cycle + cycle[:1])),
            actions=tuple(cycle),
            detail={"members": list(cycle)},
        ))

    closures_equal = None
    reduced_checked = False
    if graph.reduced_preds is not None and cycle is None:
        reduced_checked = True
        subset_ok = True
        for dst, wait in enumerate(graph.reduced_preds):
            extra = set(wait) - set(graph.preds[dst])
            for src in sorted(extra):
                subset_ok = False
                findings.append(Finding(
                    "reduced-not-subset", ERROR,
                    "reduced wait %d->%d is not a materialized edge"
                    % (src, dst),
                    actions=(src, dst),
                ))
        closures_equal = False
        if subset_ok:
            full = closure_matrix(n, graph.preds, tid_of)
            reduced = closure_matrix(n, graph.reduced_preds, tid_of)
            closures_equal = full == reduced
        if subset_ok and not closures_equal:
            for idx in range(n):
                if full[idx] != reduced[idx]:
                    missing = full[idx] & ~reduced[idx]
                    lost = [b for b in range(n) if (missing >> b) & 1]
                    gained_bits = reduced[idx] & ~full[idx]
                    gained = [b for b in range(n) if (gained_bits >> b) & 1]
                    parts = []
                    if lost:
                        parts.append("drops ancestors %s" % lost[:8])
                    if gained:
                        parts.append("invents ancestors %s" % gained[:8])
                    findings.append(Finding(
                        "closure-mismatch", ERROR,
                        "reduced_preds closure differs at action %d: %s"
                        % (idx, "; ".join(parts)),
                        actions=(idx,),
                        detail={"lost": lost[:32], "gained": gained[:32]},
                    ))
                    break  # one witness is enough; the rest follows

    primary_checked = False
    if graph.primary_preds is not None and cycle is None:
        primary_checked = True
        full = closure_matrix(n, graph.preds, tid_of)
        primary = closure_matrix(n, graph.primary_preds, tid_of)
        if full != primary:
            for idx in range(n):
                if full[idx] != primary[idx]:
                    findings.append(Finding(
                        "primary-closure-mismatch", ERROR,
                        "primary_preds closure differs at action %d "
                        "(the reduction candidate set no longer covers "
                        "the full edge set)" % idx,
                        actions=(idx,),
                    ))
                    break
    release_findings, n_release_runs = _release_partition_findings(
        graph, tid_of
    )
    findings.extend(release_findings)

    stats = {
        "actions": n,
        "edges": graph.n_edges,
        "reduced_edges": graph.n_reduced_edges,
        "acyclic": cycle is None,
        "reduction_checked": reduced_checked,
        "primary_checked": primary_checked,
        "release_runs": n_release_runs,
    }
    return findings, stats
