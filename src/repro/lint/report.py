"""Lint findings and the aggregate report.

Every analysis pass (:mod:`repro.lint.conflicts`,
:mod:`repro.lint.graphcheck`, :mod:`repro.lint.fscheck`,
:mod:`repro.lint.modesafety`) reduces to a list of :class:`Finding`
objects plus pass-level statistics; :class:`LintReport` aggregates
them, renders the human-readable and ``--json`` outputs, and decides
the process exit code:

- ``0``: no finding at warning severity or above (clean);
- ``1``: at least one warning/error finding;
- ``2``: reserved for internal lint errors (set by the CLI).

``info`` findings are advisory (e.g. a rename shadowing a path with no
descriptors open on it) and never affect the exit code.
"""

from typing import Any, Dict, List, Optional, Sequence, Tuple

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_INTERNAL = 2

INFO = "info"
WARNING = "warning"
ERROR = "error"

_SEVERITY_RANK = {INFO: 0, WARNING: 1, ERROR: 2}


class Finding(object):
    """One diagnostic emitted by a lint pass.

    - ``check``: machine-readable kind (``unordered-conflict``,
      ``cycle``, ``double-close``, ...);
    - ``severity``: one of ``info``/``warning``/``error``;
    - ``message``: human-readable description;
    - ``actions``: the action indices involved, in trace order;
    - ``resource``: the resource key involved, if any;
    - ``rule``: for races, the weakest rule that would order the pair;
    - ``detail``: extra structured context for ``--json`` consumers.
    """

    __slots__ = ("check", "severity", "message", "actions", "resource",
                 "rule", "detail")

    def __init__(self, check: str, severity: str, message: str,
                 actions: Sequence[int] = (),
                 resource: Optional[Sequence[Any]] = None,
                 rule: Optional[str] = None,
                 detail: Optional[Dict[str, Any]] = None) -> None:
        if severity not in _SEVERITY_RANK:
            raise ValueError("unknown severity %r" % (severity,))
        self.check = check
        self.severity = severity
        self.message = message
        self.actions: Tuple[int, ...] = tuple(actions)
        self.resource = resource
        self.rule = rule
        self.detail: Dict[str, Any] = dict(detail or {})

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "check": self.check,
            "severity": self.severity,
            "message": self.message,
            "actions": list(self.actions),
        }
        if self.resource is not None:
            out["resource"] = list(self.resource)
        if self.rule is not None:
            out["rule"] = self.rule
        if self.detail:
            out["detail"] = self.detail
        return out

    def __repr__(self) -> str:
        return "<Finding %s %s: %s>" % (self.severity, self.check, self.message)


class PassResult(object):
    """One pass's findings plus its summary statistics."""

    __slots__ = ("name", "findings", "stats")

    def __init__(self, name: str,
                 findings: Optional[Sequence[Finding]] = None,
                 stats: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.findings: List[Finding] = list(findings or [])
        self.stats: Dict[str, Any] = dict(stats or {})

    @property
    def clean(self) -> bool:
        return not any(
            _SEVERITY_RANK[f.severity] >= _SEVERITY_RANK[WARNING]
            for f in self.findings
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "pass": self.name,
            "clean": self.clean,
            "stats": self.stats,
            "findings": [f.to_dict() for f in self.findings],
        }

    def __repr__(self) -> str:
        return "<PassResult %s: %d findings>" % (self.name, len(self.findings))


class LintReport(object):
    """Aggregate of every pass run over one compiled trace."""

    def __init__(self, label: str = "", ruleset: Any = None) -> None:
        self.label = label
        self.ruleset = ruleset
        self.passes: List[PassResult] = []
        # rows from repro.lint.modesafety
        self.mode_matrix: Optional[List[Dict[str, Any]]] = None

    def add(self, pass_result: PassResult) -> PassResult:
        self.passes.append(pass_result)
        return pass_result

    @property
    def findings(self) -> List[Finding]:
        out: List[Finding] = []
        for pass_result in self.passes:
            out.extend(pass_result.findings)
        return out

    def counts_by_severity(self) -> Dict[str, int]:
        counts = {INFO: 0, WARNING: 0, ERROR: 0}
        for finding in self.findings:
            counts[finding.severity] += 1
        return counts

    @property
    def clean(self) -> bool:
        return all(p.clean for p in self.passes)

    @property
    def exit_code(self) -> int:
        return EXIT_CLEAN if self.clean else EXIT_FINDINGS

    # -- rendering -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "label": self.label,
            "ruleset": self.ruleset.describe() if self.ruleset else None,
            "clean": self.clean,
            "exit_code": self.exit_code,
            "counts": self.counts_by_severity(),
            "passes": [p.to_dict() for p in self.passes],
        }
        if self.mode_matrix is not None:
            out["mode_safety"] = self.mode_matrix
        return out

    def render(self, max_findings: Optional[int] = None) -> str:
        lines: List[str] = []
        title = "lint %s" % (self.label or "trace")
        if self.ruleset is not None:
            title += " [%s]" % self.ruleset.describe()
        lines.append(title)
        for pass_result in self.passes:
            stats = " ".join(
                "%s=%s" % (k, v) for k, v in sorted(pass_result.stats.items())
            )
            status = "clean" if pass_result.clean else "FINDINGS"
            lines.append("pass %-12s %-8s %s" % (pass_result.name, status, stats))
            shown = pass_result.findings
            if max_findings is not None:
                shown = shown[:max_findings]
            for finding in shown:
                where = ""
                if finding.actions:
                    where = " @%s" % ",".join("#%d" % a for a in finding.actions)
                rule = " [order with: %s]" % finding.rule if finding.rule else ""
                lines.append(
                    "  %-7s %s%s: %s%s"
                    % (finding.severity, finding.check, where, finding.message,
                       rule)
                )
            hidden = len(pass_result.findings) - len(shown)
            if hidden > 0:
                lines.append("  ... %d more findings" % hidden)
        if self.mode_matrix is not None:
            lines.append("")
            lines.append(render_mode_matrix(self.mode_matrix))
        counts = self.counts_by_severity()
        lines.append(
            "result: %s (%d error, %d warning, %d info)"
            % (
                "clean" if self.clean else "findings",
                counts[ERROR],
                counts[WARNING],
                counts[INFO],
            )
        )
        return "\n".join(lines)


def render_mode_matrix(rows: Sequence[Dict[str, Any]]) -> str:
    """ASCII table for the per-mode safety matrix (the static
    prediction of Table 3's error cells)."""
    headers = ["mode", "verdict", "races", "file", "path", "fd", "aiocb",
               "edges"]
    table = [headers]
    for row in rows:
        by_kind = row.get("by_kind", {})
        races = row.get("races")
        if races is None:
            shown = "-"
        elif row.get("truncated"):
            shown = ">=%d" % races
        else:
            shown = str(races)
        table.append([
            row["mode"],
            "safe" if row["safe"] else "UNSAFE",
            shown,
            str(by_kind.get("file", "-")),
            str(by_kind.get("path", "-")),
            str(by_kind.get("fd", "-")),
            str(by_kind.get("aiocb", "-")),
            "-" if row.get("edges") is None else str(row["edges"]),
        ])
    widths = [max(len(r[i]) for r in table) for i in range(len(headers))]
    lines = ["mode-safety matrix (static Table-3 prediction):"]
    for index, row in enumerate(table):
        lines.append("  " + "  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if index == 0:
            lines.append("  " + "-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)
