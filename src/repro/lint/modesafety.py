"""Mode safety: the static prediction of Table 3's error cells.

For each named rule set (:func:`repro.core.modes.named_rulesets`) the
detector compiles the trace's dependency graph under that rule set and
counts the unordered conflicting pairs it leaves behind.  Zero races
means every admissible replay schedule is semantically equivalent to
the traced one -- the mode is *statically safe* for this trace; any
races mean some admissible schedule diverges, which is exactly when
the dynamic Table-3 experiment observes replay errors.  The static
verdict over-approximates (predicted-unsafe is a superset of
dynamically-erroring: a race may need unlucky scheduling, or diverge
only in data the failure counters do not compare), which is the useful
direction for a lint gate.

The two non-rule replay strategies are included for completeness:
single-threaded and temporally-ordered replay enforce a total order
containing the traced one, so every conflicting pair is ordered and
they are safe by construction.
"""

from typing import Any, Dict, List, Sequence

from repro.core.deps import build_dependencies
from repro.core.modes import ReplayMode, named_rulesets
from repro.lint.conflicts import find_races, touch_table

#: Per-mode scan caps: the matrix needs verdicts and rough magnitudes,
#: not an exhaustive enumeration of a quadratic race set.
MATRIX_MAX_RACES = 5000
MATRIX_PAIR_BUDGET = 2_000_000


def mode_safety_matrix(actions: Sequence[Any],
                       max_races: int = MATRIX_MAX_RACES,
                       pair_budget: int = MATRIX_PAIR_BUDGET
                       ) -> List[Dict[str, Any]]:
    """Race-count rows, one per replay mode, strongest first.

    Returns a list of dicts with ``mode``, ``safe``, ``races``,
    ``by_kind``, ``edges``, and ``truncated`` keys (strategy rows have
    ``races`` of 0 and a ``note``).
    """
    rows: List[Dict[str, Any]] = [
        {
            "mode": ReplayMode.SINGLE,
            "safe": True,
            "races": 0,
            "by_kind": {},
            "edges": None,
            "truncated": False,
            "note": "total order (trace order); safe by construction",
        },
        {
            "mode": ReplayMode.TEMPORAL,
            "safe": True,
            "races": 0,
            "by_kind": {},
            "edges": None,
            "truncated": False,
            "note": "preserves traced issue order; safe by construction",
        },
    ]
    table = touch_table(actions)
    for name, ruleset in named_rulesets().items():
        graph = build_dependencies(actions, ruleset)
        scan = find_races(
            actions,
            graph,
            max_findings=0,
            max_races=max_races,
            pair_budget=pair_budget,
            table=table,
        )
        rows.append({
            "mode": name,
            "safe": scan.n_races == 0,
            "races": scan.n_races,
            "by_kind": scan.by_kind,
            "edges": graph.n_edges,
            "truncated": scan.truncated,
        })
    return rows


def predicted_unsafe(rows: Sequence[Dict[str, Any]]) -> List[str]:
    """The mode names the matrix marks unsafe."""
    return [row["mode"] for row in rows if not row["safe"]]
