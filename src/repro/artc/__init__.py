"""ARTC: the approximate-replay trace compiler (paper section 4).

- :mod:`repro.artc.compiler` -- trace + snapshot -> compiled benchmark
- :mod:`repro.artc.benchmark` -- the compiled form and its serialization
- :mod:`repro.artc.init` -- target initialization (full, delta, overlay)
- :mod:`repro.artc.replayer` -- mode-enforcing replay (ARTC + baselines)
- :mod:`repro.artc.report` -- timing/semantics reports
"""

from repro.artc.compiler import compile_trace
from repro.artc.benchmark import CompiledBenchmark
from repro.artc.replayer import ReplayConfig, replay
from repro.artc.report import ReplayReport

__all__ = [
    "compile_trace",
    "CompiledBenchmark",
    "ReplayConfig",
    "replay",
    "ReplayReport",
]
