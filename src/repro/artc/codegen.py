"""The trace-specializing JIT: execution-plan IR -> straight-line Python.

The scoreboard core's precompiled fast path still *interprets* the IR:
every action re-tests the entry kind, unpacks a payload tuple, and
re-reads ``record.ok`` / ``record.ret`` to assess the outcome.  None of
that varies between replays of one compiled benchmark -- so this module
specializes it away.  For each thread it generates one straight-line
Python generator function (``def _t0(run): ...``) whose body is the
thread's action tape unrolled: handler callables, argument dicts,
fd-remap keys, and expected return values are bound as constants in the
generated module's namespace; the conformance check is specialized per
action at codegen time (a trace-successful non-read compiles to ``True
if err is None else assess(...)``); the gate check is elided for
actions with no cross-thread predecessors; and the completion broadcast
is a *batched release* -- pending-predecessor counters for a whole run
of same-thread successors decremented in one pass with a single
waiting-table probe per run (:func:`repro.artc.planir.release_runs`).

There is no per-action kind dispatch and no dict lookup in the loop;
the only per-action runtime work left is the handler call itself, the
report append, and the release decrements.

Programs are compiled once per ``CompiledBenchmark`` and cached twice:
on the benchmark object itself, and -- when the benchmark came out of a
``.artcb`` artifact -- in a process-wide table keyed by the artifact's
content address (the PR 5 artifact key), so reloading the same artifact
makes codegen free.

Three variants cover the scoreboard core's fast-path modes:

- ``"artc"``: per-thread bodies with gates + batched release (ARTC mode)
- ``"free"``: per-thread bodies, no synchronization (unconstrained mode)
- ``"seq"``: one body over all actions (single-threaded / program_seq)

The generated code is in lockstep with
``_ReplayRun._sb_thread_fast`` / ``_exec_fast`` in
:mod:`repro.artc.replayer` -- same yields, same report entries, same
error messages -- which the byte-identity property suite
(``tests/property/test_scoreboard_property.py``) enforces against the
event-core oracle.
"""

import time

from repro.artc import planir
from repro.artc.report import ActionResult
from repro.errors import ReplayError
from repro.sim.events import Delay
from repro.vfs import flags as F

#: Process-wide codegen statistics, exported as ``replay.jit.*`` gauges
#: when a jit-core replay runs with observability attached.
COUNTERS = {
    "codegen_modules": 0,
    "codegen_functions": 0,
    "cache_hits_benchmark": 0,
    "cache_hits_content": 0,
    "compile_seconds": 0.0,
    "source_bytes": 0,
}

VARIANTS = ("artc", "free", "seq")

#: Content-addressed program cache: reloading the same ``.artcb``
#: artifact (same content hash) reuses the compiled program even though
#: the benchmark object is new.
_CONTENT_CACHE = {}
_CONTENT_CACHE_MAX = 8


class JitProgram(object):
    """One compiled program: generator functions plus their source.

    ``facts`` is the emitter's claims table -- one dict per action idx
    recording what the generated code *asserts* it did (gate emitted or
    elided, release runs, bound constants, conformance-check form).
    The translation validator (:mod:`repro.verify.transval`) checks
    these claims against independently derived obligations; they are
    never consulted on the replay hot path.
    """

    __slots__ = ("variant", "threads", "main", "sources", "n_functions",
                 "facts")

    def __init__(self, variant, threads, main, sources, facts=None):
        self.variant = variant
        self.threads = threads  # tid -> generator function (artc/free)
        self.main = main  # single generator function (seq)
        self.sources = sources  # function name -> generated source
        self.n_functions = len(sources)
        self.facts = facts if facts is not None else {}


def program_for(benchmark, plan, variant, reduced=False):
    """The compiled :class:`JitProgram` for one (benchmark, plan,
    variant) -- cached on the benchmark and, for artifact-loaded
    benchmarks, under the artifact content address."""
    if variant not in VARIANTS:
        raise ValueError("unknown jit variant %r" % (variant,))
    key = (plan.key, variant, bool(reduced))
    cache = getattr(benchmark, "_jit_programs", None)
    if cache is None:
        cache = {}
        benchmark._jit_programs = cache
    program = cache.get(key)
    if program is not None:
        COUNTERS["cache_hits_benchmark"] += 1
        return program
    content = getattr(benchmark, "content_key", None)
    ckey = (content,) + key if content is not None else None
    if ckey is not None:
        program = _CONTENT_CACHE.get(ckey)
        if program is not None:
            COUNTERS["cache_hits_content"] += 1
            cache[key] = program
            return program
    program = _compile_program(benchmark, plan, variant, bool(reduced))
    cache[key] = program
    if ckey is not None:
        while len(_CONTENT_CACHE) >= _CONTENT_CACHE_MAX:
            _CONTENT_CACHE.pop(next(iter(_CONTENT_CACHE)))
        _CONTENT_CACHE[ckey] = program
    return program


# -- the emitter ---------------------------------------------------------


def _compile_program(benchmark, plan, variant, reduced):
    started = time.perf_counter()
    namespace = {
        "_AR": ActionResult,
        "_IF": (int, float),
        "_err": _missing_argument,
        "_mkdrv": _make_driver,
    }
    emitter = _Emitter(namespace)
    entries = plan.entries
    actions = benchmark.actions
    if variant == "seq":
        emitter.function("_seq", actions, entries, sync=None)
        sources = {"_seq": emitter.flush()}
    else:
        sync = _Sync(benchmark, reduced) if variant == "artc" else None
        sources = {}
        for j, (tid, thread_actions) in enumerate(benchmark.by_thread().items()):
            name = "_t%d" % j
            emitter.function(name, thread_actions, entries, sync=sync, tid=tid)
            sources[name] = emitter.flush()
    source = "\n".join(sources.values())
    filename = "<artc-jit:%s:%s>" % (benchmark.label or "benchmark", variant)
    exec(compile(source, filename, "exec"), namespace)
    threads = None
    main = None
    if variant == "seq":
        main = namespace["_seq"]
    else:
        threads = {
            tid: namespace["_t%d" % j]
            for j, tid in enumerate(benchmark.by_thread())
        }
    COUNTERS["codegen_modules"] += 1
    COUNTERS["codegen_functions"] += len(sources)
    COUNTERS["source_bytes"] += len(source)
    COUNTERS["compile_seconds"] += time.perf_counter() - started
    return JitProgram(variant, threads, main, sources, emitter.facts)


def _make_driver(engine):
    """A per-run generator driver with an uncontended-delay fast path.

    The engine charges every ``Delay`` through the heap: push at
    ``now + seconds``, pop, set ``now``, resume.  When nothing else is
    queued at or before the target instant, all of that is equivalent
    to setting ``now`` directly -- no other event can run (the heap
    guard is strict, so equal-time events that must precede the resume
    force the fallback) and none can be inserted (no other code runs
    in the window).  Skipped sequence numbers cannot reorder anything:
    later insertions still get strictly increasing sequence numbers in
    the same chronological order, and ties are broken only among them.

    Anything that is not exactly a ``Delay`` (gates, events, subclass
    delays) is yielded up to the real engine unchanged, with the
    resume value forwarded, so contended or waiting operations keep
    byte-identical scheduling.  Assumes an unbounded ``engine.run()``,
    which is what every replay core uses.
    """
    queue = engine._queue

    def _drive(g, _Delay=Delay):
        send = g.send
        try:
            item = send(None)
            while True:
                if type(item) is _Delay:
                    t = engine.now + item.seconds
                    if not queue or queue[0][0] > t:
                        engine.now = t
                        item = send(None)
                        continue
                item = send((yield item))
        except StopIteration as stop:
            return stop.value

    return _drive


def _missing_argument(step_name, step_kind, exc, args):
    """The eager-binding audit of :func:`repro.syscalls.execute.perform`,
    reproduced with the identical message."""
    return ReplayError(
        "syscall %s (kind %s) is missing argument %s; got %r"
        % (step_name, step_kind, exc, sorted(args))
    )


# -- direct-call specialization ------------------------------------------
#
# The handler layer (repro.syscalls.execute) is a table of shims that
# unpack the argument dict and return the file-system method's
# generator.  All of that unpacking is constant per action, so the JIT
# evaluates it at codegen time and emits a direct bound-method call:
# ``yield from _fs_open(5, '/a/b', 577, 420)`` -- handler call, dict
# lookups, and flag-string parsing all gone, and for fd-remapped
# entries the dict copy is replaced by the remap expression inlined in
# the fd argument slot.  Each table row mirrors one handler in
# ``execute.HANDLERS``; the byte-identity property suite keeps them in
# lockstep.  Argument items: ``("req", key)`` = ``args[key]``,
# ``("opt", key, default)`` = ``args.get(key, default)``, ``("flags",
# default)`` = the handler's ``_flags_of`` fold, ``("fd", default)`` =
# the fd slot (replaced by the remap expression for fd-remapped
# entries), ``("const", value)`` = a literal.  Kinds without a row --
# the closure-building handlers (fchdir, getcwd, lio_listio) -- keep
# the generic handler-call form.

_DIRECT = {
    "open": ("open", [("req", "path"), ("flags", None), ("opt", "mode", 0o644)], {}),
    "creat": ("creat", [("req", "path"), ("opt", "mode", 0o644)], {}),
    "close": ("close", [("fd", None)], {}),
    "read": ("read", [("fd", None), ("req", "nbytes")], {}),
    "pread": ("pread", [("fd", None), ("req", "nbytes"), ("req", "offset")], {}),
    "write": ("write", [("fd", None), ("req", "nbytes")], {}),
    "pwrite": ("pwrite", [("fd", None), ("req", "nbytes"), ("req", "offset")], {}),
    "lseek": ("lseek", [("fd", None), ("req", "offset"), ("opt", "whence", F.SEEK_SET)], {}),
    "fsync": ("fsync", [("fd", None)], {}),
    "fdatasync": ("fdatasync", [("fd", None)], {}),
    "sync": ("sync", [], {}),
    "stat": ("stat", [("req", "path")], {}),
    "lstat": ("lstat", [("req", "path")], {}),
    "fstat": ("fstat", [("fd", None)], {}),
    "access": ("access", [("req", "path"), ("opt", "mode", 0)], {}),
    "readlink": ("readlink", [("req", "path")], {}),
    "statfs": ("statfs", [("req", "path")], {}),
    "fstatfs": ("fstatfs", [("fd", None)], {}),
    "statfs_global": ("statfs", [("const", "/")], {}),
    "mkdir": ("mkdir", [("req", "path"), ("opt", "mode", 0o755)], {}),
    "rmdir": ("rmdir", [("req", "path")], {}),
    "getdents": ("getdents", [("fd", None)], {}),
    "unlink": ("unlink", [("req", "path")], {}),
    "rename": ("rename", [("req", "old"), ("req", "new")], {}),
    "link": ("link", [("req", "target"), ("req", "path")], {}),
    "symlink": ("symlink", [("req", "target"), ("req", "path")], {}),
    "truncate": ("truncate", [("req", "path"), ("req", "length")], {}),
    "ftruncate": ("ftruncate", [("fd", None), ("req", "length")], {}),
    "chmod": ("chmod", [("req", "path"), ("opt", "mode", 0o644)], {}),
    "fchmod": ("fchmod", [("fd", None), ("opt", "mode", 0o644)], {}),
    "chown": ("chown", [("req", "path")], {}),
    "fchown": ("futimes", [("fd", None)], {}),  # mirrors _h_fchown
    "utimes": ("utimes", [("req", "path")], {}),
    "futimes": ("futimes", [("fd", None)], {}),
    "dup": ("dup", [("fd", None)], {}),
    "flock": ("flock", [("fd", None), ("opt", "op", 0)], {}),
    "fadvise": ("fadvise", [("fd", None), ("opt", "offset", 0), ("opt", "length", 0)], {}),
    "fallocate": ("fallocate", [("fd", None), ("opt", "offset", 0), ("req", "length")], {}),
    "mmap": ("mmap", [("fd", -1), ("opt", "offset", 0), ("req", "length")], {}),
    "munmap": ("munmap", [("opt", "addr", 0), ("opt", "length", 0)], {}),
    "msync": ("msync", [("opt", "addr", 0), ("opt", "length", 0)], {}),
    "pipe": ("pipe", [], {}),
    "shm_unlink": ("shm_unlink", [("req", "name")], {}),
    "chdir": ("chdir", [("req", "path")], {}),
    "getattrlist": ("getattrlist", [("req", "path")], {}),
    "setattrlist": ("setattrlist", [("req", "path")], {}),
    "fgetattrlist": ("fstat", [("fd", None)], {}),
    "fsetattrlist": ("futimes", [("fd", None)], {}),
    "getattrlistbulk": ("getdents", [("fd", None)], {}),
    "getdirentriesattr": ("getdents", [("fd", None)], {}),
    "exchangedata": ("exchangedata", [("req", "path1"), ("req", "path2")], {}),
    "stat_extended": ("stat", [("req", "path")], {}),
    "lstat_extended": ("lstat", [("req", "path")], {}),
    "fstat_extended": ("fstat", [("fd", None)], {}),
    "getxattr": ("getxattr", [("req", "path"), ("req", "xname")], {}),
    "lgetxattr": ("getxattr", [("req", "path"), ("req", "xname")], {"follow": False}),
    "fgetxattr": ("fgetxattr", [("fd", None), ("req", "xname")], {}),
    "setxattr": ("setxattr", [("req", "path"), ("req", "xname"), ("opt", "size", 16)], {}),
    "lsetxattr": (
        "setxattr",
        [("req", "path"), ("req", "xname"), ("opt", "size", 16)],
        {"follow": False},
    ),
    "fsetxattr": ("fsetxattr", [("fd", None), ("req", "xname"), ("opt", "size", 16)], {}),
    "listxattr": ("listxattr", [("req", "path")], {}),
    "llistxattr": ("listxattr", [("req", "path")], {"follow": False}),
    "flistxattr": ("flistxattr", [("fd", None)], {}),
    "removexattr": ("removexattr", [("req", "path"), ("req", "xname")], {}),
    "lremovexattr": ("removexattr", [("req", "path"), ("req", "xname")], {"follow": False}),
    "fremovexattr": ("fremovexattr", [("fd", None), ("req", "xname")], {}),
    "aio_read": (
        "aio_submit",
        [("req", "aiocb"), ("fd", None), ("req", "nbytes"), ("opt", "offset", 0),
         ("const", False)],
        {},
    ),
    "aio_write": (
        "aio_submit",
        [("req", "aiocb"), ("fd", None), ("req", "nbytes"), ("opt", "offset", 0),
         ("const", True)],
        {},
    ),
    "aio_error": ("aio_error", [("req", "aiocb")], {}),
    "aio_cancel": ("aio_error", [("req", "aiocb")], {}),
    "aio_return": ("aio_return", [("req", "aiocb")], {}),
    "aio_suspend": ("aio_suspend", [("req", "aiocbs")], {}),
}


def _flags_value(args):
    """Codegen-time mirror of ``execute._flags_of``."""
    value = args.get("flags", 0)
    if isinstance(value, str):
        value = F.parse_flags(value)
    return value


def _fcntl_direct(args):
    """Codegen-time mirror of ``execute._h_fcntl``'s branch: the cmd is
    a trace constant, so the branch resolves at codegen."""
    cmd = args.get("cmd", "F_GETFL")
    if cmd == "F_FULLFSYNC":
        return "full_fsync", [("fd", None)], {}
    if cmd in ("F_DUPFD", "F_DUPFD_CLOEXEC"):
        return "dup", [("fd", None)], {}
    if cmd == "F_PREALLOCATE":
        return "fallocate", [("fd", None), ("const", 0),
                             ("const", args.get("arg", 0) or 0)], {}
    if cmd == "F_RDADVISE":
        return "fadvise", [("fd", None), ("const", args.get("offset", 0)),
                           ("const", args.get("arg", 0) or 0)], {}
    return "flock", [("fd", None)], {}


def _shm_open_direct(args):
    flags = _flags_value(args) or (F.O_RDWR | F.O_CREAT)
    return "shm_open", [("req", "name"), ("const", flags),
                        ("opt", "mode", 0o600)], {}


_DIRECT_SPECIAL = {"fcntl": _fcntl_direct, "shm_open": _shm_open_direct}


class _Sync(object):
    """The scoreboard view the ``artc`` variant specializes against:
    active predecessor lists, successor lists, owner tids, and the
    per-action batched release runs."""

    def __init__(self, benchmark, reduced):
        graph = benchmark.graph
        preds = graph.preds
        if reduced and graph.reduced_preds is not None:
            preds = graph.reduced_preds
        self.preds = preds
        self.tid_of = [action.record.tid for action in benchmark.actions]
        succs = [[] for _ in benchmark.actions]
        for dst, plist in enumerate(preds):
            for src in plist:
                succs[src].append(dst)
        self.succs = succs

    def needs_gate(self, idx):
        """A gate check is required unless every predecessor is an
        earlier action of the same thread (those have always completed
        -- and decremented -- by the time the thread arrives here)."""
        tid = self.tid_of[idx]
        for src in self.preds[idx]:
            if self.tid_of[src] != tid or src >= idx:
                return True
        return False

    def runs(self, idx):
        return planir.release_runs(self.succs[idx], self.tid_of)


class _Emitter(object):
    def __init__(self, namespace):
        self.ns = namespace
        self.lines = []
        self.facts = {}  # action idx -> claims dict (see JitProgram.facts)

    def flush(self):
        source = "\n".join(self.lines) + "\n"
        self.lines = []
        return source

    def lit(self, value, name):
        """A source literal for ``value``; non-trivial values become
        named constants in the module namespace."""
        if value is None or value is True or value is False:
            return repr(value)
        if isinstance(value, (int, float, str)):
            return repr(value)
        self.ns[name] = value
        return name

    def const(self, name, value):
        self.ns[name] = value
        return name

    # -- function layout ----------------------------------------------

    def function(self, name, actions, entries, sync, tid=None):
        out = self.lines
        self._fn = name
        out.append("def %s(run):" % name)
        body = []
        wakers = {}  # owner tid -> bound local name
        methods = set()  # fs methods called directly
        tid_lit = None if tid is None else self.lit(tid, "_tid_%s" % name)
        for action in actions:
            self._action(
                body, action, entries[action.idx], sync, tid, tid_lit,
                wakers, methods,
            )
        # Preamble after the body: which gates get woken and which fs
        # methods get bound are only known once the body is emitted.
        kinds = {entries[action.idx][0] for action in actions}
        out.append("    ctx = run.ctx")
        out.append("    engine = run.engine")
        if planir.FDREMAP in kinds:
            out.append("    fd_map = ctx.fd_map")
        if methods:
            out.append("    fs = ctx.fs")
            for method in sorted(methods):
                out.append("    _fs_%s = fs.%s" % (method, method))
        out.append("    append = run.report.results.append")
        out.append("    assess = run._assess")
        if any(entries[action.idx][3] for action in actions):
            out.append("    update = run._update_maps")
        if planir.DYNAMIC in kinds:
            out.append("    perform = run._perform")
        if kinds - {planir.META}:
            out.append("    _drive = _mkdrv(engine)")
        if planir.META in kinds:
            out.append("    meta = run._meta_delay")
            out.append("    _d = meta.seconds")
            out.append("    _q = engine._queue")
        if sync is not None:
            out.append("    pending = run._sb_pending")
            out.append("    waiting = run._sb_waiting")
            if any(sync.needs_gate(action.idx) for action in actions):
                out.append("    gate = run._sb_gates[%s]" % tid_lit)
            for owner, waker in wakers.items():
                out.append(
                    "    %s = run._sb_gates[%s].open"
                    % (waker, self.lit(owner, "_o%s_%s" % (name, waker)))
                )
        if not actions:
            # An empty tape must still be a generator function.
            out.append("    return")
            out.append("    yield")
            return
        out.extend(body)

    # -- one action ----------------------------------------------------

    def _action(self, out, action, entry, sync, tid, tid_lit, wakers, methods):
        kind, payload, is_read, upd = entry
        idx = action.idx
        record = action.record
        own_tid = record.tid if tid is None else tid
        own_lit = tid_lit if tid_lit is not None else self.lit(
            own_tid, "_rt%d" % idx
        )
        name_lit = repr(record.name)
        p = "    "
        gated = sync is not None and sync.needs_gate(idx)
        fact = self.facts[idx] = {
            "idx": idx,
            "tid": own_tid,
            "kind": kind,
            "gate": gated,
            "releases": [],
            "conformance": None,
            "expected_ret": None,
            "update": bool(upd),
            "fd_key": None,
            "steps": None,
            "args": None,
        }
        if gated:
            out.append(p + "if pending[%d]:" % idx)
            out.append(p + "    waiting[%s] = %d" % (own_lit, idx))
            out.append(p + "    yield gate")
        out.append(p + "issue = engine.now")
        if kind == planir.META:
            # Inline fast-forward: the meta charge lands at
            # ``issue + _d`` -- bitwise the engine's ``now + delay``.
            # With nothing queued at or before that instant, the heap
            # round-trip is pure overhead (see _make_driver); the
            # fallback resume also lands exactly at ``t``.
            out.append(p + "t = issue + _d")
            out.append(p + "if _q and _q[0][0] <= t:")
            out.append(p + "    yield meta")
            out.append(p + "else:")
            out.append(p + "    engine.now = t")
            out.append(
                p + "append(_AR(%d, %s, %s, issue, t, 0, None, True))"
                % (idx, own_lit, name_lit)
            )
            fact["conformance"] = "meta"
        elif kind == planir.DYNAMIC:
            act = self.const("_x%d" % idx, action)
            out.append(
                p + "ret, err, performed = yield from _drive(perform(%s))" % act
            )
            out.append(
                p + "matched = assess(%s, ret, err) if performed else True" % act
            )
            out.append(p + self._append_result(idx, own_lit, name_lit))
            fact["conformance"] = "dynamic"
        else:
            if kind == planir.STATIC:
                handler, args, step_name, step_kind = payload
                fact["steps"] = ((step_name, step_kind),)
                fact["args"] = (args,)
                self._step(out, p, idx, "", handler, args, step_name,
                           step_kind, own_lit, methods)
            elif kind == planir.FDREMAP:
                handler, base, fd_key, step_name, step_kind = payload
                fact["fd_key"] = fd_key
                fact["steps"] = ((step_name, step_kind),)
                fact["args"] = (base,)
                self._step(out, p, idx, "", handler, base, step_name,
                           step_kind, own_lit, methods, fd_key=fd_key)
            else:  # MULTI: unrolled with early exit on error
                fact["steps"] = tuple(
                    (step_name, step_kind)
                    for _, _, step_name, step_kind in payload
                )
                fact["args"] = tuple(args for _, args, _, _ in payload)
                for j, (handler, args, step_name, step_kind) in enumerate(payload):
                    prefix = p + "    " * j
                    if j:
                        out.append(prefix[:-4] + "if err is None:")
                    self._step(out, prefix, idx, "_%d" % j, handler, args,
                               step_name, step_kind, own_lit, methods)
            if upd:
                act = self.const("_x%d" % idx, action)
                out.append(p + "update(%s, ret, err)" % act)
            if not record.ok:
                fact["conformance"] = "assess"
            elif is_read:
                fact["conformance"] = "ok_ret"
                fact["expected_ret"] = record.ret
            else:
                fact["conformance"] = "ok"
            out.append(p + self._matched(idx, action, is_read))
            out.append(p + self._append_result(idx, own_lit, name_lit))
        if sync is not None:
            self._release(out, p, sync, idx, own_tid, wakers)

    def _step(self, out, p, idx, suffix, handler, args, step_name,
              step_kind, tid_lit, methods, fd_key=None):
        """One step invocation.  Preferred form: the handler's argument
        unpacking evaluated at codegen time and a direct bound-method
        call emitted.  Fallback (no direct row, or unpacking fails at
        codegen the way it would at runtime): the handler call under
        the eager-binding KeyError audit, exactly as the interpreter
        performs it."""
        fd_expr = None
        if fd_key is not None:
            fd_expr = "fd_map.get(%s, %s)" % (
                self.const("_k%d%s" % (idx, suffix), fd_key),
                self.lit(args["fd"], "_f%d%s" % (idx, suffix)),
            )
        if self._direct(out, p, idx, suffix, step_kind, args, tid_lit,
                        fd_expr, methods):
            return
        if fd_key is not None:
            out.append(
                p + "args = dict(%s)" % self.const("_a%d%s" % (idx, suffix), args)
            )
            out.append(p + 'args["fd"] = %s' % fd_expr)
            args_expr = "args"
        else:
            args_expr = self.const("_a%d%s" % (idx, suffix), args)
        h = self.const("_h%d%s" % (idx, suffix), handler)
        out.append(p + "try:")
        out.append(p + "    step = %s(ctx, %s, %s)" % (h, tid_lit, args_expr))
        out.append(p + "except KeyError as exc:")
        out.append(
            p + "    raise _err(%r, %r, exc, %s)"
            % (step_name, step_kind, args_expr)
        )
        out.append(p + "ret, err = yield from _drive(step)")

    def _direct(self, out, p, idx, suffix, step_kind, args, tid_lit,
                fd_expr, methods):
        """Emit ``ret, err = yield from _fs_<method>(...)`` when the
        handler's argument unpacking can be fully evaluated now.
        Returns False (emitting nothing) when it cannot -- the generic
        form then reproduces the interpreter's runtime behavior,
        including its error surfacing."""
        special = _DIRECT_SPECIAL.get(step_kind)
        try:
            if special is not None:
                method, argspec, kwspec = special(args)
            else:
                spec = _DIRECT.get(step_kind)
                if spec is None:
                    return False
                method, argspec, kwspec = spec
            parts = []
            for item in argspec:
                tag = item[0]
                if tag == "req":
                    value = args[item[1]]
                elif tag == "opt":
                    value = args.get(item[1], item[2])
                elif tag == "flags":
                    value = _flags_value(args)
                elif tag == "const":
                    value = item[1]
                else:  # the fd slot
                    if fd_expr is not None:
                        parts.append(fd_expr)
                        continue
                    if item[1] is None:
                        value = args["fd"]
                    else:
                        value = args.get("fd", item[1])
                parts.append(
                    self.lit(value, "_c%d%s_%d" % (idx, suffix, len(parts)))
                )
            for name, value in kwspec.items():
                parts.append(
                    "%s=%s"
                    % (name, self.lit(value, "_c%d%s_%s" % (idx, suffix, name)))
                )
        except Exception:
            return False
        methods.add(method)
        out.append(
            p + "ret, err = yield from _drive(_fs_%s(%s))"
            % (method, ", ".join([tid_lit] + parts))
        )
        return True

    def _matched(self, idx, action, is_read):
        record = action.record
        act = lambda: self.const("_x%d" % idx, action)  # noqa: E731
        if not record.ok:
            return "matched = assess(%s, ret, err)" % act()
        if is_read:
            return (
                "matched = True if err is None and ret == %s else assess(%s, ret, err)"
                % (self.lit(record.ret, "_r%d" % idx), act())
            )
        return "matched = True if err is None else assess(%s, ret, err)" % act()

    def _append_result(self, idx, tid_lit, name_lit):
        return (
            "append(_AR(%d, %s, %s, issue, engine.now,"
            " ret if isinstance(ret, _IF) else 0, err, matched))"
            % (idx, tid_lit, name_lit)
        )

    def _release(self, out, p, sync, idx, own_tid, wakers):
        claims = self.facts[idx]["releases"]
        for owner, members in sync.runs(idx):
            claims.append((owner, tuple(members), owner != own_tid))
            for succ in members:
                out.append(p + "pending[%d] -= 1" % succ)
            if owner == own_tid:
                # This thread is running this very release; it cannot
                # be parked, so no wake probe.
                continue
            waker = wakers.get(owner)
            if waker is None:
                waker = wakers[owner] = "_w%d" % len(wakers)
            owner_lit = self.lit(owner, "_ow%s_%s" % (self._fn, waker))
            if len(members) == 1:
                succ = members[0]
                out.append(
                    p + "if waiting.get(%s) == %d and not pending[%d]:"
                    % (owner_lit, succ, succ)
                )
            else:
                out.append(p + "_p = waiting.get(%s)" % owner_lit)
                if len(members) <= 4:
                    test = " or ".join("_p == %d" % s for s in members)
                else:
                    test = "_p in %s" % self.const(
                        "_s%d_%s" % (idx, waker), frozenset(members)
                    )
                out.append(
                    p + "if _p is not None and (%s) and not pending[_p]:" % test
                )
            out.append(p + "    del waiting[%s]" % owner_lit)
            out.append(p + "    %s()" % waker)
