"""Replay reports: timing, semantics, thread-time, concurrency.

After finishing replay, ARTC outputs elapsed wall-clock time plus
detailed data about *why* the replay performed as it did: per-thread
timing reports, per-call latencies, and the similarity of replayed
return values to traced ones (possible underconstraint shows up as
semantic mismatches).  This module is that output.
"""

from repro.syscalls.registry import CATEGORIES, spec_for


class ActionResult(object):
    """What happened when one action replayed."""

    __slots__ = ("idx", "tid", "name", "issue", "done", "ret", "err", "matched", "skipped")

    def __init__(self, idx, tid, name, issue, done, ret, err, matched, skipped=False):
        self.idx = idx
        self.tid = tid
        self.name = name
        self.issue = issue
        self.done = done
        self.ret = ret
        self.err = err
        self.matched = matched
        self.skipped = skipped

    @property
    def latency(self):
        return self.done - self.issue

    def __repr__(self):
        flag = "ok" if self.matched else "MISMATCH"
        return "<ActionResult #%d %s %s>" % (self.idx, self.name, flag)


class ReplayWarning(object):
    """A nonconforming replay event (paper section 5.1: "ARTC generally
    outputs warnings when replayed calls do not conform to its
    expectations, but sometimes suppresses them")."""

    __slots__ = ("idx", "kind", "message", "count", "call")

    #: warning kinds
    UNEXPECTED_FAILURE = "unexpected-failure"
    UNEXPECTED_SUCCESS = "unexpected-success"
    WRONG_ERRNO = "wrong-errno"
    SHORT_READ = "short-read"

    def __init__(self, idx, kind, message, count=1, call=None):
        self.idx = idx
        self.kind = kind
        self.message = message
        # Repeats of the same (kind, syscall) pair are collapsed onto
        # the first emission; ``count`` totals them (see the replayer).
        self.count = count
        #: the syscall name the warning is about (the collapse key).
        self.call = call

    def __repr__(self):
        return "<ReplayWarning #%d %s: %s>" % (self.idx, self.kind, self.message)


class ReplayReport(object):
    def __init__(self, mode, label=""):
        self.mode = mode
        self.label = label
        self.results = []
        self.warnings = []
        self.started = None
        self.finished = None
        # Hardened-replayer counters (repro.faults.harden).
        self.retries = 0
        self.retries_recovered = 0
        # Simulated crash time when the run was cut short (--crash-at).
        self.crashed_at = None

    def warn(self, warning):
        self.warnings.append(warning)

    def warnings_by_kind(self):
        out = {}
        for warning in self.warnings:
            out.setdefault(warning.kind, []).append(warning)
        return out

    def warning_emissions(self):
        """Total warning occurrences, counting collapsed repeats
        (``len(report.warnings)`` counts distinct (kind, call) pairs)."""
        return sum(warning.count for warning in self.warnings)

    def warning_counts(self):
        """Per-(kind, call) emission counts: ``{kind: {call: count}}``."""
        out = {}
        for warning in self.warnings:
            out.setdefault(warning.kind, {})[warning.call or "?"] = warning.count
        return out

    def add(self, result):
        self.results.append(result)

    @property
    def elapsed(self):
        if self.started is None or self.finished is None:
            return 0.0
        return self.finished - self.started

    @property
    def n_actions(self):
        return len(self.results)

    @property
    def failures(self):
        """Semantic mismatches vs. the original trace (Table 3 metric)."""
        return sum(1 for r in self.results if not r.matched)

    @property
    def skipped(self):
        """Actions recorded-and-skipped by graceful degradation."""
        return sum(1 for r in self.results if r.skipped)

    def failures_by_errno(self):
        out = {}
        for result in self.results:
            if not result.matched:
                out[result.err or "OK"] = out.get(result.err or "OK", 0) + 1
        return out

    # -- thread-time (Figure 10) ---------------------------------------

    def thread_time(self):
        """Total time threads spend inside system calls (two threads in
        calls for two seconds = four thread-seconds)."""
        return sum(r.latency for r in self.results)

    def thread_time_by_category(self):
        out = {category: 0.0 for category in CATEGORIES}
        for result in self.results:
            category = spec_for(result.name).category
            out[category] = out.get(category, 0.0) + result.latency
        return out

    def per_thread_time(self):
        out = {}
        for result in self.results:
            out[result.tid] = out.get(result.tid, 0.0) + result.latency
        return out

    # -- concurrency (Figure 9) -----------------------------------------

    def mean_outstanding(self):
        """Average number of simultaneously outstanding system calls:
        total in-call thread-time divided by elapsed time.  The paper's
        'system-call concurrency' ratio compares this across replays."""
        if self.elapsed <= 0:
            return 0.0
        return self.thread_time() / self.elapsed

    def timeline(self):
        """(tid, issue, done) spans for concurrency plots."""
        return [(r.tid, r.issue, r.done) for r in self.results]

    def stall_time(self):
        """Time replay threads spent between calls (waiting on ordering
        dependencies or predelay), summed over threads."""
        per_thread = {}
        for result in self.results:
            per_thread.setdefault(result.tid, []).append(result)
        total = 0.0
        for results in per_thread.values():
            results.sort(key=lambda r: r.issue)
            cursor = self.started
            for result in results:
                if result.issue > cursor:
                    total += result.issue - cursor
                cursor = max(cursor, result.done)
        return total

    def latencies_by_call(self):
        out = {}
        for result in self.results:
            out.setdefault(result.name, []).append(result.latency)
        return out

    def compare_latencies(self, trace):
        """Per-call-name mean latency, replay vs original trace — the
        'why did this replay perform the way it did' view the replayer
        prints after a run."""
        trace_latencies = {}
        for record in trace.records:
            trace_latencies.setdefault(record.name, []).append(record.duration)
        rows = []
        replay_latencies = self.latencies_by_call()
        for name in sorted(set(trace_latencies) | set(replay_latencies)):
            original = trace_latencies.get(name, [])
            replayed = replay_latencies.get(name, [])
            rows.append(
                {
                    "call": name,
                    "count": len(replayed),
                    "orig_mean": sum(original) / len(original) if original else 0.0,
                    "replay_mean": sum(replayed) / len(replayed) if replayed else 0.0,
                }
            )
        return rows

    def render_timeline(self, width=72, span=None):
        """ASCII rendering of per-thread in-call spans (Figure 9 style).

        Each thread is a row; ``#`` marks time inside a system call,
        ``.`` time between calls.  ``span`` optionally restricts to a
        ``(start, end)`` window of the replay.
        """
        if not self.results or self.elapsed <= 0:
            return "(empty timeline)"
        start = self.started if span is None else span[0]
        end = self.finished if span is None else span[1]
        window = max(end - start, 1e-12)
        rows = {}
        for result in self.results:
            cells = rows.setdefault(result.tid, ["."] * width)
            left = int((result.issue - start) / window * width)
            right = int((result.done - start) / window * width)
            for cell in range(max(0, left), min(width, right + 1)):
                cells[cell] = "#"
        lines = ["t=%.4fs %s t=%.4fs" % (start, "-" * (width - 18), end)]
        for tid in sorted(rows, key=str):
            lines.append("T%-6s |%s|" % (tid, "".join(rows[tid])))
        return "\n".join(lines)

    def summary(self):
        out = {
            "mode": self.mode,
            "label": self.label,
            "elapsed": self.elapsed,
            "actions": self.n_actions,
            "failures": self.failures,
            "thread_time": self.thread_time(),
            "mean_outstanding": self.mean_outstanding(),
            "warnings": len(self.warnings),
            "warning_emissions": self.warning_emissions(),
            "warning_counts": self.warning_counts(),
            "skipped": self.skipped,
            "retries": self.retries,
            "retries_recovered": self.retries_recovered,
        }
        if self.crashed_at is not None:
            out["crashed_at"] = self.crashed_at
        return out

    def __repr__(self):
        return "<ReplayReport %s %s: %.4fs, %d/%d failures>" % (
            self.label or "?",
            self.mode,
            self.elapsed,
            self.failures,
            self.n_actions,
        )


def timing_error(replay_elapsed, original_elapsed):
    """The paper's accuracy metric: |replay - original| / original."""
    if original_elapsed <= 0:
        return 0.0
    return abs(replay_elapsed - original_elapsed) / original_elapsed
