"""The sharded replay core: resource-partitioned multi-process replay.

``ReplayConfig(core="shard", jobs=N)`` replays one compiled benchmark
across ``N`` forked worker processes.  The shard plan
(:mod:`repro.artc.shardplan`) partitions actions by resource affinity
over the dependency graph, so every materialized dependency edge is
intra-shard; each worker runs the scoreboard inner loop (the
precompiled fast path where available) over its own copy-on-write
replica of the initialized file-system simulation.

Cross-shard ordering is thread sequencing only: each consecutive
same-thread action pair split across shards gets one **completion
flag** in anonymous shared memory.  Every flag has exactly one writer
(the producer action's worker), so the protocol is lock-free: the
producer stores its simulated completion time then a ready byte; the
consumer spins briefly, then parks in bounded sleeps, re-checking the
byte.  Flag timestamps reconcile per-shard simulated clocks
Lamport-style (:meth:`repro.sim.engine.Engine.wake_at`): the consumer
resumes no earlier than the producer's completion time.

**Identity contract.**  The sharded replay is semantically
byte-identical to the single-process cores: the same per-action
outcomes (errno, conformance match), the same failure and warning
counts, and the same final FS-state digest (worker effects are merged
back onto the caller's file system through
:mod:`repro.vfs.statediff`).  Simulated *timing* follows the
partitioned-clock model instead: each shard's clock advances with its
local device model and only synchronizes at cross-shard gates, so
``elapsed``/per-action timestamps are a reconciled makespan, not the
single-spindle serialization the one-process simulator computes (a
true partition cannot reproduce globally shared cache/allocator/queue
timing without serializing -- see docs/PERFORMANCE.md).  With
``jobs=1`` (or a plan clamped to one shard) the run degenerates to the
scoreboard core and is byte-identical to it, timing included.

Support envelope: ARTC mode without ``program_seq``; no hardening, no
crash-recovery resume, no fault injection, no temporal replay.
Unsupported combinations raise :class:`~repro.errors.ReplayError`.
"""

import mmap
import os
import pickle
import struct
import time
import traceback

from repro.artc import planir, shardplan
from repro.artc.replayer import ReplayConfig, _ReplayRun
from repro.artc.report import ActionResult, ReplayReport, ReplayWarning
from repro.core.modes import ReplayMode
from repro.errors import ReplayError
from repro.obs.context import of_engine
from repro.sim.events import Delay, Event, WaitEvent

#: Bytes per completion flag: an 8-byte little-endian float (producer's
#: simulated completion time), one ready byte, padding to keep slots on
#: their own 16-byte lanes.
_SLOT = 16

#: Flag-poll rounds before the waiter starts parking in sleeps.  On a
#: single-CPU host spinning steals the very cycles the producing
#: sibling needs, so park almost immediately there.
_SPIN_ROUNDS = 200 if (os.cpu_count() or 1) > 1 else 2

#: Park sleep between flag polls once the spin budget is spent.
_PARK_SLEEP = 0.0002

#: Wall-clock seconds without any cross-shard progress before a worker
#: declares the run wedged (a sibling worker died or stalled).
_STALL_TIMEOUT = 30.0

_pack_into = struct.pack_into
_unpack_from = struct.unpack_from


def _scoreboard_config(config):
    """``config`` with the core swapped to the scoreboard: the exact
    single-process run a one-shard plan degenerates to."""
    return ReplayConfig(
        mode=config.mode,
        timing=config.timing,
        jitter=config.jitter,
        emulation=config.emulation,
        o_excl_fix=config.o_excl_fix,
        suppress_warnings=config.suppress_warnings,
        reduced_deps=config.reduced_deps,
        harden=config.harden,
        resume_completed=config.resume_completed,
        reopen_actions=config.reopen_actions,
        core="scoreboard",
    )


def _check_supported(benchmark, fs, config):
    if config.mode == ReplayMode.TEMPORAL:
        raise ReplayError("shard core does not support temporal replay")
    if (
        config.harden is not None
        or config.resume_completed
        or config.reopen_actions
    ):
        raise ReplayError(
            "shard core does not support hardened or "
            "crash-recovery-resumed replay"
        )
    if config.jobs <= 1:
        return
    if getattr(fs.stack, "faults", None) is not None:
        raise ReplayError(
            "shard core does not support fault injection with jobs > 1; "
            "rerun with --jobs 1 for the single-process fallback"
        )
    if config.mode != ReplayMode.ARTC:
        raise ReplayError(
            "shard core does not support %s replay with jobs > 1 "
            "(partitioning needs the ARTC dependency graph); rerun with "
            "--jobs 1 for the single-process fallback" % config.mode
        )
    if benchmark.graph.program_seq:
        raise ReplayError(
            "shard core does not support program_seq replay with jobs > 1; "
            "rerun with --jobs 1 for the single-process fallback"
        )


def replay_sharded(benchmark, fs, config):
    """Entry point behind ``replay(..., ReplayConfig(core="shard"))``."""
    _check_supported(benchmark, fs, config)
    if config.jobs <= 1 or config.mode != ReplayMode.ARTC:
        return _ReplayRun(benchmark, fs, _scoreboard_config(config)).run()
    plan = shardplan.plan_for(benchmark, config.jobs)
    if plan.n_workers <= 1:
        report = _ReplayRun(benchmark, fs, _scoreboard_config(config)).run()
        report.shard_stats = dict(plan.stats)
        return report
    return _MultiShardReplay(benchmark, fs, config, plan).run()


class _ShardRun(_ReplayRun):
    """One worker's replay: the scoreboard run restricted to a shard,
    with cross-shard completion flags woven into the thread bodies."""

    def __init__(self, benchmark, fs, config, plan, shard_id, flags,
                 produce, consume, stall_timeout=_STALL_TIMEOUT):
        _ReplayRun.__init__(self, benchmark, fs, config)
        self.plan = plan
        self.shard_id = shard_id
        self._flags = flags
        #: producer action idx -> flag byte offset (this worker writes).
        self._produce = produce
        #: consumer action idx -> flag byte offset (this worker waits).
        self._consume = consume
        self._parked = []
        self._stall_timeout = stall_timeout
        self._processes = []
        # shard.* accounting, shipped back to the parent.
        self._gate_checks = 0
        self._blocked_gates = 0
        self._reconciliations = 0
        self._spin_seconds = 0.0
        self._park_seconds = 0.0

    # -- cross-shard gates ------------------------------------------------

    def _cross_wait(self, idx):
        """Wait for action ``idx``'s thread predecessor in another
        shard: check the flag byte, reconcile the clock if it is
        already ready, otherwise park for the driver to wake us."""
        off = self._consume[idx]
        flags = self._flags
        self._gate_checks += 1
        event = Event()
        if flags[off + 8]:
            if self.engine.wake_at(_unpack_from("<d", flags, off)[0], event):
                self._reconciliations += 1
        else:
            self._blocked_gates += 1
            self._parked.append((off, event))
        yield WaitEvent(event)

    def _publish(self, idx):
        """Producer half: store this shard's simulated completion time,
        then the ready byte (single writer; timestamp strictly before
        the flag)."""
        off = self._produce.get(idx)
        if off is not None:
            flags = self._flags
            _pack_into("<d", flags, off, self.engine.now)
            flags[off + 8] = 1

    def _complete_and_publish(self, idx):
        self._sb_complete(idx)
        self._publish(idx)

    # -- thread bodies ----------------------------------------------------

    def _shard_thread(self, actions, tid):
        """The dynamic (:meth:`_play_one`) scoreboard thread body over
        this shard's subset, with cross-shard gates; publication rides
        the ``_finish`` hook."""
        pending = self._sb_pending
        waiting = self._sb_waiting
        gate = self._sb_gates[tid]
        consume = self._consume
        for action in actions:
            idx = action.idx
            if idx in consume:
                yield from self._cross_wait(idx)
            if pending[idx]:
                waiting[tid] = idx
                yield gate
            yield from self._play_one(action)

    def _shard_thread_fast(self, actions, tid):
        """:meth:`_ReplayRun._sb_thread_fast` over this shard's subset:
        the same inlined precompiled hot loop (keep in lockstep), plus
        the cross-shard gate before each consumer action and the flag
        publication after each producer action."""
        pending = self._sb_pending
        succs = self._sb_succs
        sb_tid = self._sb_tid
        gates = self._sb_gates
        waiting = self._sb_waiting
        gate = gates[tid]
        exec_plan = self._exec_plan
        engine = self.engine
        ctx = self.ctx
        fd_map = ctx.fd_map
        meta_delay = self._meta_delay
        call_handler = self._call_handler
        append = self.report.results.append
        flags = self._flags
        parked = self._parked
        produce = self._produce
        consume = self._consume
        for action in actions:
            idx = action.idx
            coff = consume.get(idx)
            if coff is not None:
                self._gate_checks += 1
                event = Event()
                if flags[coff + 8]:
                    if engine.wake_at(
                        _unpack_from("<d", flags, coff)[0], event
                    ):
                        self._reconciliations += 1
                else:
                    self._blocked_gates += 1
                    parked.append((coff, event))
                yield WaitEvent(event)
            if pending[idx]:
                waiting[tid] = idx
                yield gate
            record = action.record
            kind, payload, is_read, upd = exec_plan[idx]
            issue = engine.now
            if kind == 2:
                handler, base, fd_key, step_name, step_kind = payload
                args = dict(base)
                args["fd"] = fd_map.get(fd_key, base["fd"])
                try:
                    step = handler(ctx, record.tid, args)
                except KeyError as exc:
                    raise ReplayError(
                        "syscall %s (kind %s) is missing argument %s; got %r"
                        % (step_name, step_kind, exc, sorted(args))
                    )
                ret, err = yield from step
            elif kind == 1:
                handler, args, step_name, step_kind = payload
                try:
                    step = handler(ctx, record.tid, args)
                except KeyError as exc:
                    raise ReplayError(
                        "syscall %s (kind %s) is missing argument %s; got %r"
                        % (step_name, step_kind, exc, sorted(args))
                    )
                ret, err = yield from step
            elif kind == 0:
                yield meta_delay
                append(
                    ActionResult(
                        idx, record.tid, record.name, issue, engine.now,
                        0, None, True,
                    )
                )
            elif kind == 3:
                ret, err = 0, None
                for handler, args, step_name, step_kind in payload:
                    ret, err = yield from call_handler(
                        handler, record.tid, args, step_name, step_kind
                    )
                    if err is not None:
                        break
            else:
                ret, err, performed = yield from self._perform(action)
                matched = self._assess(action, ret, err) if performed else True
                append(
                    ActionResult(
                        idx, record.tid, record.name, issue, engine.now,
                        ret if isinstance(ret, (int, float)) else 0, err, matched,
                    )
                )
            if 0 < kind < 4:
                if upd:
                    self._update_maps(action, ret, err)
                if record.ok and err is None and (not is_read or ret == record.ret):
                    matched = True  # the overwhelmingly common conforming case
                else:
                    matched = self._assess(action, ret, err)
                append(
                    ActionResult(
                        idx, record.tid, record.name, issue, engine.now,
                        ret if isinstance(ret, (int, float)) else 0, err, matched,
                    )
                )
            for succ in succs[idx]:
                left = pending[succ] - 1
                pending[succ] = left
                if not left and waiting:
                    owner = sb_tid[succ]
                    if waiting.get(owner) == succ:
                        del waiting[owner]
                        gates[owner].open()
            poff = produce.get(idx)
            if poff is not None:
                _pack_into("<d", flags, poff, engine.now)
                flags[poff + 8] = 1

    # -- the worker driver ------------------------------------------------

    def _drive(self):
        """Alternate the simulation engine with flag polling: drain
        everything runnable, then spin/park on the parked cross-shard
        gates until a sibling's producer publishes."""
        engine = self.engine
        processes = self._processes
        parked = self._parked
        flags = self._flags
        while True:
            engine.run()
            if not any(process.alive for process in processes):
                return
            if not parked:
                stuck = [p.name for p in processes if p.alive]
                raise ReplayError(
                    "shard %d deadlocked with no cross-shard gate pending; "
                    "threads still blocked: %s"
                    % (self.shard_id, ", ".join(stuck))
                )
            wait_started = time.perf_counter()
            deadline = wait_started + self._stall_timeout
            slept = 0.0
            spins = 0
            while True:
                fired = False
                i = 0
                while i < len(parked):
                    off, event = parked[i]
                    if flags[off + 8]:
                        if engine.wake_at(
                            _unpack_from("<d", flags, off)[0], event
                        ):
                            self._reconciliations += 1
                        parked[i] = parked[-1]
                        parked.pop()
                        fired = True
                    else:
                        i += 1
                if fired:
                    break
                spins += 1
                if spins < _SPIN_ROUNDS:
                    continue
                if time.perf_counter() >= deadline:
                    raise ReplayError(
                        "shard %d made no cross-shard progress for %.0fs "
                        "(wall clock); %d completion flags outstanding -- a "
                        "sibling worker likely died or stalled"
                        % (self.shard_id, self._stall_timeout, len(parked))
                    )
                time.sleep(_PARK_SLEEP)
                slept += _PARK_SLEEP
            waited = time.perf_counter() - wait_started
            self._park_seconds += slept
            self._spin_seconds += max(0.0, waited - slept)

    def run_shard(self):
        """Replay this worker's shard; the report holds raw (unsorted,
        unsuffixed) results for the parent to merge."""
        benchmark = self.benchmark
        self.report.started = self.engine.now
        if self._fast:
            plan = self._exec_plans()
            self._exec_plan = plan.entries
            self._meta_delay = Delay(self.fs.stack.META_CPU)
        preds = benchmark.graph.preds
        if self.config.reduced_deps and benchmark.graph.reduced_preds is not None:
            preds = benchmark.graph.reduced_preds
        self._setup_scoreboard(preds)
        self._finish = self._complete_and_publish
        mine = set(self.plan.shard_actions[self.shard_id])
        body = self._shard_thread_fast if self._fast else self._shard_thread
        for tid, actions in benchmark.by_thread().items():
            subset = [action for action in actions if action.idx in mine]
            if subset:
                self._processes.append(
                    self.engine.spawn(
                        body(subset, tid),
                        name="shard%d-T%s" % (self.shard_id, tid),
                    )
                )
        self._drive()
        stuck = [p.name for p in self._processes if p.alive]
        if stuck:
            raise ReplayError(
                "shard %d deadlocked; threads still blocked: %s"
                % (self.shard_id, ", ".join(stuck))
            )
        return self.report

    def metrics_payload(self):
        return {
            "actions": len(self.report.results),
            "cross_gates": self._gate_checks,
            "cross_waits": self._blocked_gates,
            "reconciliations": self._reconciliations,
            "spin_seconds": self._spin_seconds,
            "park_seconds": self._park_seconds,
            "final_now": self.engine.now,
        }


def _write_all(fd, data):
    view = memoryview(data)
    while view:
        written = os.write(fd, view)
        view = view[written:]


class _MultiShardReplay(object):
    """The parent side: fork workers, collect pipes, merge reports and
    file-system effects back onto the caller's fs."""

    def __init__(self, benchmark, fs, config, plan):
        self.benchmark = benchmark
        self.fs = fs
        self.config = config
        self.plan = plan

    def run(self):
        from repro.verify.abstract import capture_entries

        benchmark = self.benchmark
        fs = self.fs
        plan = self.plan
        # Warm the execution-plan IR before forking so every worker
        # shares the compiled entries copy-on-write instead of
        # recompiling them N times.
        planir.plans_for(
            benchmark, benchmark.platform, fs.platform,
            self.config.o_excl_fix, self.config.emulation,
        )
        baseline = capture_entries(fs)
        started = fs.engine.now
        produce = {}
        consume = {}
        for index, (producer, consumer) in enumerate(plan.cross_edges):
            off = index * _SLOT
            produce[producer] = off
            consume[consumer] = off
        flags = mmap.mmap(-1, max(_SLOT, _SLOT * len(plan.cross_edges)))
        inner = _scoreboard_config(self.config)
        shard_ids = [
            shard for shard, acts in enumerate(plan.shard_actions) if acts
        ]
        workers = []
        try:
            for shard_id in shard_ids:
                rfd, wfd = os.pipe()
                pid = os.fork()
                if pid == 0:
                    status = 1
                    try:
                        os.close(rfd)
                        for _pid, other_rfd, _sid in workers:
                            os.close(other_rfd)
                        self._worker(
                            inner, plan, shard_id, flags,
                            produce, consume, baseline, wfd,
                        )
                        status = 0
                    finally:
                        # Never unwind into the forked copy of the
                        # caller (pytest, the CLI): exit immediately.
                        os._exit(status)
                os.close(wfd)
                workers.append((pid, rfd, shard_id))
            payloads, errors = self._collect(workers)
        finally:
            flags.close()
        if errors:
            raise ReplayError(
                "sharded replay failed:\n%s" % "\n".join(errors)
            )
        return self._merge(payloads, baseline, started)

    # -- child ------------------------------------------------------------

    def _worker(self, inner, plan, shard_id, flags, produce, consume,
                baseline, wfd):
        from repro.verify.abstract import capture_entries
        from repro.vfs.statediff import diff_entries

        assign = plan.assign
        try:
            run = _ShardRun(
                self.benchmark, self.fs, inner, plan, shard_id, flags,
                {idx: off for idx, off in produce.items()
                 if assign[idx] == shard_id},
                {idx: off for idx, off in consume.items()
                 if assign[idx] == shard_id},
            )
            report = run.run_shard()
            changed, removed = diff_entries(baseline, capture_entries(self.fs))
            payload = {
                "shard": shard_id,
                "results": [
                    (r.idx, r.tid, r.name, r.issue, r.done, r.ret, r.err,
                     r.matched, r.skipped)
                    for r in report.results
                ],
                "warnings": [
                    (w.idx, w.kind, w.message, w.count, w.call)
                    for w in report.warnings
                ],
                "metrics": run.metrics_payload(),
                "changed": changed,
                "removed": removed,
            }
        except BaseException:
            payload = {"shard": shard_id, "error": traceback.format_exc()}
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        _write_all(wfd, blob)
        os.close(wfd)

    # -- parent -----------------------------------------------------------

    def _collect(self, workers):
        payloads = []
        errors = []
        for pid, rfd, shard_id in workers:
            chunks = []
            while True:
                chunk = os.read(rfd, 1 << 20)
                if not chunk:
                    break
                chunks.append(chunk)
            os.close(rfd)
            _wpid, status = os.waitpid(pid, 0)
            blob = b"".join(chunks)
            if not blob:
                errors.append(
                    "shard %d worker (pid %d) exited without a result "
                    "(wait status %d)" % (shard_id, pid, status)
                )
                continue
            payload = pickle.loads(blob)
            if payload.get("error"):
                errors.append(
                    "shard %d worker failed:\n%s"
                    % (shard_id, payload["error"])
                )
            else:
                payloads.append(payload)
        return payloads, errors

    def _merge(self, payloads, baseline, started):
        from repro.vfs.statediff import apply_diff, merge_diffs

        benchmark = self.benchmark
        config = self.config
        report = ReplayReport(config.mode, benchmark.label)
        report.started = started
        results = []
        for payload in payloads:
            results.extend(
                ActionResult(*values) for values in payload["results"]
            )
        expected = len(benchmark.actions)
        if len(results) != expected or (
            len({r.idx for r in results}) != len(results)
        ):
            raise ReplayError(
                "sharded replay merged %d results for %d actions "
                "(dropped or duplicated shard work)"
                % (len(results), expected)
            )
        results.sort(key=lambda r: r.idx)
        report.results = results
        report.finished = max(
            (r.done for r in results), default=started
        )

        merged_warnings = {}
        for payload in payloads:
            for idx, kind, message, count, call in payload["warnings"]:
                key = (kind, call)
                current = merged_warnings.get(key)
                if current is None:
                    merged_warnings[key] = [idx, kind, message, count, call]
                else:
                    current[3] += count
                    if idx < current[0]:
                        current[0] = idx
                        current[2] = message
        for idx, kind, message, count, call in sorted(
            merged_warnings.values()
        ):
            if count > 1:
                message += " [x%d]" % count
            report.warn(ReplayWarning(idx, kind, message, count=count,
                                      call=call))

        try:
            changed, removed = merge_diffs(
                [(payload["changed"], payload["removed"])
                 for payload in payloads]
            )
        except ValueError as exc:
            raise ReplayError("sharded replay state merge failed: %s" % exc)
        apply_diff(self.fs, changed, removed)

        totals = {
            "cross_gates": 0, "cross_waits": 0, "reconciliations": 0,
            "spin_seconds": 0.0, "park_seconds": 0.0,
        }
        per_shard_actions = []
        for payload in payloads:
            metrics = payload["metrics"]
            per_shard_actions.append(metrics["actions"])
            for key in totals:
                totals[key] += metrics[key]
        stats = dict(self.plan.stats)
        stats.update(totals)
        stats["worker_actions"] = per_shard_actions
        report.shard_stats = stats

        obs = of_engine(self.fs.engine)
        if obs is not None:
            metrics = obs.metrics
            metrics.gauge("shard.shards").set(len(payloads))
            metrics.gauge("shard.cross_edges").set(len(self.plan.cross_edges))
            metrics.gauge("shard.cut_fraction").set(
                self.plan.stats.get("cut_fraction", 0.0)
            )
            metrics.counter("shard.cross_edge_waits").inc(
                totals["cross_waits"]
            )
            metrics.counter("shard.reconciliations").inc(
                totals["reconciliations"]
            )
            metrics.gauge("shard.spin_seconds").set(totals["spin_seconds"])
            metrics.gauge("shard.park_seconds").set(totals["park_seconds"])
            for count in per_shard_actions:
                metrics.histogram("shard.actions_per_shard").observe(count)
        return report
