"""The ARTC replayer and the three baseline replay strategies.

Replay enforcement mirrors section 4.3.3: every action has a condition
variable (here a one-shot event); before issuing an action, its replay
thread waits on the events of the actions it depends on; after the
action completes, its own event is broadcast.  Thread sequencing is
implicit -- there is one replay thread per traced thread, each looping
over its own actions in trace order.  ``program_seq`` (and the
single-threaded baseline) instead replay everything from one thread.

Timing modes: AFAP ignores inter-call gaps; natural-speed sleeps each
action's *predelay* (the gap attributable to computation); a numeric
scale multiplies predelay (e.g. CPU-speed correction).
"""

from repro.core.modes import ReplayMode
from repro.errors import ReplayError
from repro.artc.report import ActionResult, ReplayReport, ReplayWarning
from repro.obs.context import of_engine
from repro.sim.events import Delay, Event, WaitEvent
from repro.syscalls.emulation import DEFAULT_OPTIONS, plan_for
from repro.syscalls.execute import ExecContext, perform
from repro.syscalls.registry import spec_for


# Platforms spell some errors differently; a replayed failure with the
# target's spelling of the traced errno is semantically correct.
_ERRNO_ALIASES = {
    "ENOATTR": "ENODATA",  # BSD/Darwin vs Linux missing-xattr
    "ENODATA": "ENODATA",
}


def _errno_equivalent(replay_err, trace_err):
    if replay_err == trace_err:
        return True
    if replay_err is None or trace_err is None:
        return False
    return _ERRNO_ALIASES.get(replay_err, replay_err) == _ERRNO_ALIASES.get(
        trace_err, trace_err
    )


class ReplayConfig(object):
    """Knobs for one replay run.

    - ``mode``: one of :class:`~repro.core.modes.ReplayMode`.
    - ``timing``: ``"afap"``, ``"natural"``, or a float predelay scale.
    - ``jitter``: uniform-random extra delay (seconds) added per action;
      used to explore race outcomes of the unconstrained baseline
      across seeds.
    - ``emulation``: cross-platform emulation options.
    - ``o_excl_fix``: replay trace-successful O_CREAT|O_EXCL opens
      without O_EXCL (the paper's workaround for the iTunes traces'
      missing-detail inconsistencies).
    - ``reduced_deps``: wait on the compiler's transitively-reduced
      predecessor sets when the benchmark carries them (the replay
      fast path); ``False`` forces the full per-edge wait sets.
    """

    def __init__(
        self,
        mode=ReplayMode.ARTC,
        timing="afap",
        jitter=0.0,
        emulation=DEFAULT_OPTIONS,
        o_excl_fix=True,
        suppress_warnings=(),
        reduced_deps=True,
    ):
        if mode not in ReplayMode.ALL:
            raise ReplayError("unknown replay mode %r" % (mode,))
        if not (timing in ("afap", "natural") or isinstance(timing, (int, float))):
            raise ReplayError("timing must be 'afap', 'natural', or a scale")
        self.mode = mode
        self.timing = timing
        self.jitter = jitter
        self.emulation = emulation
        self.o_excl_fix = o_excl_fix
        self.reduced_deps = reduced_deps
        # Warning kinds to drop (the paper: ARTC "sometimes suppresses
        # them in cases such as this" -- known-benign nonconformance).
        self.suppress_warnings = frozenset(suppress_warnings)


class _ReplayRun(object):
    def __init__(self, benchmark, fs, config):
        self.benchmark = benchmark
        self.fs = fs
        self.engine = fs.engine
        self.config = config
        self.ctx = ExecContext(fs)
        self.report = ReplayReport(config.mode, benchmark.label)
        n = len(benchmark.actions)
        self.done_events = [Event() for _ in range(n)]
        self.issue_events = [Event() for _ in range(n)]
        self.source = benchmark.platform
        self.target = fs.platform
        # Repeated warnings of one (kind, syscall) pair collapse onto
        # the first emission; the count is suffixed after the run.
        self._warn_seen = {}
        # Observability (repro.obs): ``None`` disables every site.
        self._obs = of_engine(self.engine)
        if self._obs is not None:
            metrics = self._obs.metrics
            self._spans = self._obs.spans
            self._c_actions = metrics.counter("replay.actions")
            self._c_waits = metrics.counter("replay.dep_waits")
            self._h_dep_wait = metrics.histogram("replay.dep_wait_seconds")
            self._h_latency = metrics.histogram("replay.action_latency_seconds")

    # -- argument translation -------------------------------------------

    def _translate(self, action):
        record = action.record
        args = dict(record.args)
        ann = action.ann
        if "fd" in ann and "fd" in args:
            args["fd"] = self.ctx.fd_map.get((args["fd"], ann["fd"]), args["fd"])
        if "aiocb" in ann and "aiocb" in args:
            args["aiocb"] = "%s@%d" % (args["aiocb"], ann["aiocb"])
        if "aiocb_gens" in ann and "aiocbs" in args:
            args["aiocbs"] = [
                "%s@%d" % (cb, gen)
                for cb, gen in zip(args["aiocbs"], ann["aiocb_gens"])
            ]
        if self.config.o_excl_fix and record.ok and isinstance(args.get("flags"), str):
            if "O_EXCL" in args["flags"] and "O_CREAT" in args["flags"]:
                args["flags"] = "|".join(
                    part for part in args["flags"].split("|") if part != "O_EXCL"
                )
        return args

    def _update_maps(self, action, ret, err):
        if err is not None:
            return
        record = action.record
        ann = action.ann
        if "ret_fd" in ann and isinstance(record.ret, int):
            self.ctx.fd_map[(record.ret, ann["ret_fd"])] = ret
        if "newfd_gen" in ann:
            self.ctx.fd_map[(record.args["newfd"], ann["newfd_gen"])] = ret
        if "ret_fds" in ann and isinstance(record.ret, (list, tuple)):
            for trace_fd, gen, actual in zip(record.ret, ann["ret_fds"], ret):
                self.ctx.fd_map[(trace_fd, gen)] = actual

    # -- execution --------------------------------------------------------

    def _execute(self, action):
        record = action.record
        tid = record.tid
        args = self._translate(action)
        name = record.name
        # dup2's descriptor number is an OS artifact; replaying it as a
        # plain dup lets same-name descriptors coexist (section 4.2).
        if spec_for(name).kind == "dup2":
            name = "dup"
        plan = plan_for(name, args, self.source, self.target, self.config.emulation)
        if not plan:
            yield Delay(self.fs.stack.META_CPU)
            return 0, None, True
        ret, err = 0, None
        for step_name, step_args in plan:
            ret, err = yield from perform(self.ctx, tid, step_name, step_args)
            if err is not None:
                break
        self._update_maps(action, ret, err)
        if record.ok:
            matched = err is None
            if not matched:
                self._warn(
                    record, ReplayWarning.UNEXPECTED_FAILURE,
                    "%s failed with %s (succeeded in trace)" % (record.name, err),
                )
            elif spec_for(record.name).kind in ("read", "pread"):
                # Return-value similarity (section 4.3.3): a short read
                # means the replay saw a smaller file than the trace
                # did -- an ordering problem the file-size dependency
                # refinement exists to prevent.
                matched = ret == record.ret
                if not matched:
                    self._warn(
                        record, ReplayWarning.SHORT_READ,
                        "%s returned %r, trace had %r"
                        % (record.name, ret, record.ret),
                    )
        else:
            matched = _errno_equivalent(err, record.err)
            if not matched:
                if err is None:
                    self._warn(
                        record, ReplayWarning.UNEXPECTED_SUCCESS,
                        "%s succeeded (failed with %s in trace)"
                        % (record.name, record.err),
                    )
                else:
                    self._warn(
                        record, ReplayWarning.WRONG_ERRNO,
                        "%s failed with %s, trace had %s"
                        % (record.name, err, record.err),
                    )
        return ret, err, matched

    def _warn(self, record, kind, message):
        if self._obs is not None:
            self._obs.metrics.counter("replay.warnings.%s" % kind).inc()
            self._spans.instant(
                kind, "warning", "T%s" % record.tid, self.engine.now,
                args={"idx": record.idx, "call": record.name},
            )
        if kind in self.config.suppress_warnings:
            return
        key = (kind, record.name)
        first = self._warn_seen.get(key)
        if first is not None:
            first.count += 1
            return
        warning = ReplayWarning(record.idx, kind, message)
        self._warn_seen[key] = warning
        self.report.warn(warning)

    def _timing_delay(self, action):
        timing = self.config.timing
        if timing == "afap":
            pre = 0.0
        elif timing == "natural":
            pre = action.predelay
        else:
            pre = action.predelay * float(timing)
        if self.config.jitter:
            pre += self.engine.rng.random() * self.config.jitter
        if pre > 0:
            yield Delay(pre)

    def _play_one(self, action):
        yield from self._timing_delay(action)
        if not self.issue_events[action.idx].is_set:
            self.issue_events[action.idx].set()
        issue = self.engine.now
        ret, err, matched = yield from self._execute(action)
        done = self.engine.now
        self.report.add(
            ActionResult(
                action.idx,
                action.record.tid,
                action.record.name,
                issue,
                done,
                ret if isinstance(ret, (int, float)) else 0,
                err,
                matched,
            )
        )
        if self._obs is not None:
            self._c_actions.inc()
            self._h_latency.observe(done - issue)
            args = {"idx": action.idx}
            if err is not None:
                args["err"] = err
            if not matched:
                args["mismatch"] = True
            self._spans.record(
                action.record.name, "syscall",
                "T%s" % action.record.tid, issue, done, args,
            )
        self.done_events[action.idx].set()

    # -- per-mode thread bodies ---------------------------------------------

    def _artc_thread(self, actions, preds):
        # Hot loop: bind the event table once, and fast-path events
        # that already fired without touching the engine.
        done_events = self.done_events
        for action in actions:
            for dep in preds[action.idx]:
                event = done_events[dep]
                if not event._fired:
                    yield WaitEvent(event)
            yield from self._play_one(action)

    def _artc_thread_observed(self, actions, preds):
        """The ARTC thread body with dependency-wait accounting: same
        enforcement as :meth:`_artc_thread`, plus a metric per blocking
        wait and a span per stall (chosen in :meth:`run` so the fast
        path carries no instrumentation branches)."""
        done_events = self.done_events
        engine = self.engine
        for action in actions:
            wait_start = engine.now
            blocked = False
            for dep in preds[action.idx]:
                event = done_events[dep]
                if not event._fired:
                    blocked = True
                    self._c_waits.inc()
                    yield WaitEvent(event)
            if blocked:
                stalled = engine.now - wait_start
                self._h_dep_wait.observe(stalled)
                if stalled > 0:
                    self._spans.record(
                        "dep-wait", "wait", "T%s" % action.record.tid,
                        wait_start, engine.now, args={"before": action.idx},
                    )
            yield from self._play_one(action)

    def _temporal_prepare(self):
        """Precompute the completed-before-issue relation.

        Temporally-ordered replay preserves the trace's observed
        ordering without allowing any new reordering: an action is
        issued only after (a) every earlier action has been *issued*
        and (b) every action that had *completed* before this action's
        issue during tracing has completed during replay."""
        import bisect

        actions = self.benchmark.actions
        self._comp_order = sorted(
            range(len(actions)), key=lambda i: actions[i].record.t_return
        )
        returns = [actions[i].record.t_return for i in self._comp_order]
        self._prefix_of = [
            bisect.bisect_right(returns, action.record.t_enter)
            for action in actions
        ]
        self._frontier = 0

    def _wait_completed_prefix(self, k):
        while self._frontier < k:
            event = self.done_events[self._comp_order[self._frontier]]
            if not event.is_set:
                yield WaitEvent(event)
            while (
                self._frontier < len(self._comp_order)
                and self.done_events[self._comp_order[self._frontier]].is_set
            ):
                self._frontier += 1

    def _temporal_thread(self, actions):
        for action in actions:
            if action.idx > 0:
                event = self.issue_events[action.idx - 1]
                if not event.is_set:
                    yield WaitEvent(event)
            yield from self._wait_completed_prefix(self._prefix_of[action.idx])
            yield from self._play_one(action)

    def _single_thread(self, actions):
        for action in actions:
            yield from self._play_one(action)

    # -- top level -------------------------------------------------------------

    def run(self):
        benchmark = self.benchmark
        config = self.config
        mode = config.mode
        self.report.started = self.engine.now
        processes = []
        if mode == ReplayMode.SINGLE or (
            mode == ReplayMode.ARTC and benchmark.graph.program_seq
        ):
            processes.append(
                self.engine.spawn(
                    self._single_thread(benchmark.actions), name="replay-single"
                )
            )
        elif mode == ReplayMode.TEMPORAL:
            self._temporal_prepare()
            for tid, actions in benchmark.by_thread().items():
                processes.append(
                    self.engine.spawn(
                        self._temporal_thread(actions), name="replay-T%s" % tid
                    )
                )
        elif mode == ReplayMode.UNCONSTRAINED:
            empty = [[] for _ in benchmark.actions]
            for tid, actions in benchmark.by_thread().items():
                processes.append(
                    self.engine.spawn(
                        self._artc_thread(actions, empty), name="replay-T%s" % tid
                    )
                )
        else:  # ARTC
            preds = benchmark.graph.preds
            if config.reduced_deps and benchmark.graph.reduced_preds is not None:
                preds = benchmark.graph.reduced_preds
            thread_body = (
                self._artc_thread if self._obs is None
                else self._artc_thread_observed
            )
            for tid, actions in benchmark.by_thread().items():
                processes.append(
                    self.engine.spawn(
                        thread_body(actions, preds), name="replay-T%s" % tid
                    )
                )
        self.engine.run()
        stuck = [p.name for p in processes if p.alive]
        if stuck:
            message = "replay deadlocked; threads still blocked: %s" % (
                ", ".join(stuck)
            )
            if mode == ReplayMode.ARTC:
                # A dependency cycle is the classic cause; name its
                # members (same diagnostic as `artc lint`'s graph pass).
                from repro.core.analysis import find_cycle, thread_edges

                preds = benchmark.graph.preds
                if (
                    config.reduced_deps
                    and benchmark.graph.reduced_preds is not None
                ):
                    preds = benchmark.graph.reduced_preds
                merged = [
                    list(p) + extra
                    for p, extra in zip(preds, thread_edges(benchmark.actions))
                ]
                cycle = find_cycle(merged)
                if cycle is not None:
                    message += "; dependency cycle: %s" % " -> ".join(
                        str(c) for c in cycle + cycle[:1]
                    )
            raise ReplayError(message)
        self.report.finished = max(
            (r.done for r in self.report.results), default=self.engine.now
        )
        self.report.results.sort(key=lambda r: r.idx)
        for warning in self.report.warnings:
            if warning.count > 1:
                warning.message += " [x%d]" % warning.count
        if self._obs is not None:
            metrics = self._obs.metrics
            metrics.gauge("replay.elapsed_seconds").set(self.report.elapsed)
            metrics.gauge("replay.threads").set(len(processes))
            self._obs.collect_stack(self.fs.stack)
        return self.report


def replay(benchmark, fs, config=None):
    """Replay ``benchmark`` on the file system ``fs``.

    The caller is responsible for initialization
    (:mod:`repro.artc.init`) before invoking replay.  Returns a
    :class:`~repro.artc.report.ReplayReport`.
    """
    if config is None:
        config = ReplayConfig()
    return _ReplayRun(benchmark, fs, config).run()
