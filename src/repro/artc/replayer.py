"""The ARTC replayer and the three baseline replay strategies.

Replay enforcement mirrors section 4.3.3: thread sequencing is
implicit -- there is one replay thread per traced thread, each looping
over its own actions in trace order -- and cross-thread dependencies
are enforced by one of two interchangeable cores:

- **Scoreboard core** (the hot path): integer pending-predecessor
  counters over the (reduced) dependency graph.  Completing an action
  decrements each successor's counter; a thread whose next action still
  has unfinished predecessors parks on its single per-thread
  :class:`~repro.sim.events.Gate` and is woken exactly once, when the
  counter hits zero.  No per-action events, no waiter lists, no
  O(preds) zero-delay engine round-trips.
- **Event core** (the paper's literal mechanism and the differential-
  testing oracle): every action has a condition variable (a one-shot
  event); before issuing, a thread waits on the events of the actions
  it depends on; on completion, its own event is broadcast.  Hardened
  (retry/watchdog/degrade) and crash/recovery-resumed replays always
  use this core.

A third core, the **JIT** (``core="jit"``), is the scoreboard with the
interpretation specialized away: per-thread straight-line Python is
generated from the execution-plan IR (:mod:`repro.artc.planir`,
:mod:`repro.artc.codegen`), with a *batched release* decrementing whole
runs of same-thread successor counters per completion.  It has the
scoreboard's support envelope; where the scoreboard falls back to
dynamic bodies (attached observability, timed replay), so does the JIT.

``ReplayConfig(core=...)`` selects ``"auto"`` (scoreboard whenever
supported), ``"scoreboard"``, ``"jit"``, or ``"events"``.  All cores
enforce the same partial order and produce identical reports.
``program_seq`` (and the single-threaded baseline) instead replay
everything from one thread.

Timing modes: AFAP ignores inter-call gaps; natural-speed sleeps each
action's *predelay* (the gap attributable to computation); a numeric
scale multiplies predelay (e.g. CPU-speed correction).
"""

from repro.core.modes import ReplayMode
from repro.errors import MachineCrashed, ReplayAborted, ReplayError
from repro.artc import planir
from repro.artc.report import ActionResult, ReplayReport, ReplayWarning
from repro.obs.context import of_engine
from repro.sim.events import Delay, Event, Gate, WaitEvent
from repro.syscalls.emulation import DEFAULT_OPTIONS, plan_for
from repro.syscalls.execute import ExecContext, perform
from repro.syscalls.registry import spec_for

#: Valid ``ReplayConfig.core`` selections.
REPLAY_CORES = ("auto", "scoreboard", "events", "jit", "shard")


# Platforms spell some errors differently; a replayed failure with the
# target's spelling of the traced errno is semantically correct.
_ERRNO_ALIASES = {
    "ENOATTR": "ENODATA",  # BSD/Darwin vs Linux missing-xattr
    "ENODATA": "ENODATA",
}


def _nothing(idx):
    """No-op issue/completion hook: scoreboard-core runs have no
    per-action events, and modes without cross-thread counters
    (single-threaded, unconstrained) have no scoreboard either."""


def _errno_equivalent(replay_err, trace_err):
    if replay_err == trace_err:
        return True
    if replay_err is None or trace_err is None:
        return False
    return _ERRNO_ALIASES.get(replay_err, replay_err) == _ERRNO_ALIASES.get(
        trace_err, trace_err
    )


class ReplayConfig(object):
    """Knobs for one replay run.

    - ``mode``: one of :class:`~repro.core.modes.ReplayMode`.
    - ``timing``: ``"afap"``, ``"natural"``, or a float predelay scale.
    - ``jitter``: uniform-random extra delay (seconds) added per action;
      used to explore race outcomes of the unconstrained baseline
      across seeds.
    - ``emulation``: cross-platform emulation options.
    - ``o_excl_fix``: replay trace-successful O_CREAT|O_EXCL opens
      without O_EXCL (the paper's workaround for the iTunes traces'
      missing-detail inconsistencies).
    - ``reduced_deps``: wait on the compiler's transitively-reduced
      predecessor sets when the benchmark carries them (the replay
      fast path); ``False`` forces the full per-edge wait sets.
    - ``core``: dependency-enforcement core -- ``"auto"`` picks the
      scoreboard whenever supported (no hardening, no crash-recovery
      resume, not temporal mode) and falls back to the classic
      per-action event machinery otherwise; ``"scoreboard"`` /
      ``"jit"`` / ``"events"`` force one core (forcing the scoreboard
      or the JIT where they are unsupported raises).  The JIT
      additionally requires the scoreboard fast path (AFAP timing, no
      attached observability) to run generated bodies, and quietly
      runs the equivalent dynamic scoreboard bodies otherwise.
      ``"shard"`` (:mod:`repro.artc.shardcore`) partitions the action
      set by resource affinity and replays the shards in ``jobs``
      forked worker processes; ``"auto"`` never selects it.
    - ``jobs``: worker-process count for the shard core.  ``jobs > 1``
      requires ``core="shard"``; every other core is single-process.
    - ``harden``: a :class:`~repro.faults.harden.HardenConfig` enabling
      transient-EIO retry, the deadlock watchdog, and graceful
      degradation (None = the classic brittle replayer).
    - ``resume_completed``: action indices already completed by an
      earlier (crashed) phase; their events are pre-fired and they are
      not re-executed (crash/recovery replay).
    - ``reopen_actions``: fd-creating action indices to silently
      re-issue before the measured window, rebuilding descriptor state
      a crash destroyed.
    """

    def __init__(
        self,
        mode=ReplayMode.ARTC,
        timing="afap",
        jitter=0.0,
        emulation=DEFAULT_OPTIONS,
        o_excl_fix=True,
        suppress_warnings=(),
        reduced_deps=True,
        harden=None,
        resume_completed=(),
        reopen_actions=(),
        core="auto",
        jobs=1,
    ):
        if mode not in ReplayMode.ALL:
            raise ReplayError("unknown replay mode %r" % (mode,))
        if not (timing in ("afap", "natural") or isinstance(timing, (int, float))):
            raise ReplayError("timing must be 'afap', 'natural', or a scale")
        if core not in REPLAY_CORES:
            raise ReplayError(
                "unknown replay core %r (choose from %s)"
                % (core, ", ".join(REPLAY_CORES))
            )
        if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
            raise ReplayError("jobs must be a positive integer")
        if jobs > 1 and core != "shard":
            raise ReplayError(
                "jobs > 1 requires the shard core (core=\"shard\"); "
                "the %s core is single-process" % core
            )
        self.core = core
        self.jobs = jobs
        self.mode = mode
        self.timing = timing
        self.jitter = jitter
        self.emulation = emulation
        self.o_excl_fix = o_excl_fix
        self.reduced_deps = reduced_deps
        self.harden = harden
        self.resume_completed = frozenset(resume_completed)
        self.reopen_actions = tuple(reopen_actions)
        # Warning kinds to drop (the paper: ARTC "sometimes suppresses
        # them in cases such as this" -- known-benign nonconformance).
        self.suppress_warnings = frozenset(suppress_warnings)


class _ReplayRun(object):
    def __init__(self, benchmark, fs, config):
        self.benchmark = benchmark
        self.fs = fs
        self.engine = fs.engine
        self.config = config
        self.ctx = ExecContext(fs)
        self.report = ReplayReport(config.mode, benchmark.label)
        # Live-follow status (repro.stream): attached by the follow
        # controller so the watchdog can tell "awaiting producer" from
        # a genuine dependency deadlock.  None on batch runs.
        self.stream = None
        self.source = benchmark.platform
        self.target = fs.platform
        # Hardening state (repro.faults.harden).
        self._harden = config.harden
        self._exec = (
            self._execute if self._harden is None else self._execute_hardened
        )
        self._poisoned = set()
        # Crash/recovery resume: completed actions count as done.
        self._reopening = False
        self._resumed = config.resume_completed
        # AFAP with no jitter issues every action back-to-back; skip the
        # per-action timing generator entirely on that (dominant) path.
        self._afap = config.timing == "afap" and not config.jitter
        # Core selection: the scoreboard covers plain replay; hardening
        # (retry/degrade poisoning, pre-fired resume events) and the
        # temporal mode's completed-before-issue relation still need
        # per-action events.
        self.scoreboard = self._resolve_core(config)
        # The scoreboard's precompiled fast path additionally requires
        # back-to-back timing (no per-action predelay generator) and no
        # attached observability (the instrumented bodies stay dynamic).
        self._fast = self.scoreboard and self._afap and of_engine(fs.engine) is None
        # The JIT core drives trace-specialized generated bodies; it
        # shares the fast path's preconditions and degrades to the
        # dynamic scoreboard bodies where they do not hold.
        self._jit = config.core == "jit" and self._fast
        self._exec_plan = None
        if self.scoreboard:
            self.done_events = None
            self.issue_events = None
            self._mark_issued = _nothing
            self._finish = _nothing  # rebound per mode in run()
        else:
            n = len(benchmark.actions)
            self.done_events = [Event() for _ in range(n)]
            self.issue_events = [Event() for _ in range(n)]
            self._mark_issued = self._mark_issued_events
            self._finish = self._finish_events
            for idx in self._resumed:
                self.done_events[idx].set()
                self.issue_events[idx].set()
        # Repeated warnings of one (kind, syscall) pair collapse onto
        # the first emission; the count is suffixed after the run.
        self._warn_seen = {}
        # Observability (repro.obs): ``None`` disables every site.
        self._obs = of_engine(self.engine)
        if self._obs is not None:
            metrics = self._obs.metrics
            self._spans = self._obs.spans
            self._c_actions = metrics.counter("replay.actions")
            self._c_waits = metrics.counter("replay.dep_waits")
            self._h_dep_wait = metrics.histogram("replay.dep_wait_seconds")
            self._h_latency = metrics.histogram("replay.action_latency_seconds")
            self._c_sb_dispatch = metrics.counter("replay.scoreboard.dispatches")
            self._c_sb_wakeups = metrics.counter("replay.scoreboard.wakeups")

    # -- argument translation -------------------------------------------

    def _translate(self, action):
        record = action.record
        args = dict(record.args)
        ann = action.ann
        if "fd" in ann and "fd" in args:
            args["fd"] = self.ctx.fd_map.get((args["fd"], ann["fd"]), args["fd"])
        if "aiocb" in ann and "aiocb" in args:
            args["aiocb"] = "%s@%d" % (args["aiocb"], ann["aiocb"])
        if "aiocb_gens" in ann and "aiocbs" in args:
            args["aiocbs"] = [
                "%s@%d" % (cb, gen)
                for cb, gen in zip(args["aiocbs"], ann["aiocb_gens"])
            ]
        if self.config.o_excl_fix and record.ok and isinstance(args.get("flags"), str):
            if "O_EXCL" in args["flags"] and "O_CREAT" in args["flags"]:
                args["flags"] = "|".join(
                    part for part in args["flags"].split("|") if part != "O_EXCL"
                )
        if self._reopening and isinstance(args.get("flags"), str):
            # Recovery's reopen pass re-issues an open that may have
            # carried O_TRUNC; the truncation already happened before
            # the crash, and repeating it would zero recovered data.
            kept = [p for p in args["flags"].split("|") if p != "O_TRUNC"]
            args["flags"] = "|".join(kept) or "O_RDONLY"
        return args

    def _update_maps(self, action, ret, err):
        if err is not None:
            return
        record = action.record
        ann = action.ann
        if "ret_fd" in ann and isinstance(record.ret, int):
            self.ctx.fd_map[(record.ret, ann["ret_fd"])] = ret
        if "newfd_gen" in ann:
            self.ctx.fd_map[(record.args["newfd"], ann["newfd_gen"])] = ret
        if "ret_fds" in ann and isinstance(record.ret, (list, tuple)):
            for trace_fd, gen, actual in zip(record.ret, ann["ret_fds"], ret):
                self.ctx.fd_map[(trace_fd, gen)] = actual

    # -- execution --------------------------------------------------------

    def _perform(self, action):
        """Translate and run one action's step plan, with no outcome
        assessment.  Returns ``(ret, err, performed)``; ``performed``
        is False when emulation planned nothing (always a match)."""
        record = action.record
        tid = record.tid
        args = self._translate(action)
        name = record.name
        # dup2's descriptor number is an OS artifact; replaying it as a
        # plain dup lets same-name descriptors coexist (section 4.2).
        if spec_for(name).kind == "dup2":
            name = "dup"
        plan = plan_for(name, args, self.source, self.target, self.config.emulation)
        if not plan:
            yield Delay(self.fs.stack.META_CPU)
            return 0, None, False
        ret, err = 0, None
        for step_name, step_args in plan:
            ret, err = yield from perform(self.ctx, tid, step_name, step_args)
            if err is not None:
                break
        self._update_maps(action, ret, err)
        return ret, err, True

    def _execute(self, action):
        ret, err, performed = yield from self._perform(action)
        matched = self._assess(action, ret, err) if performed else True
        return ret, err, matched

    def _execute_hardened(self, action):
        """:meth:`_execute` plus the hardening mechanisms: capped
        exponential-backoff retry on transient EIO (only for actions
        the trace saw succeed), and poisoning for graceful degradation."""
        record = action.record
        retry = self._harden.retry
        ret, err, performed = yield from self._perform(action)
        if retry is not None and record.ok and performed:
            attempt = 0
            while err == "EIO" and attempt < retry.max_attempts:
                yield Delay(retry.backoff(attempt))
                attempt += 1
                self.report.retries += 1
                if self._obs is not None:
                    self._obs.metrics.counter("replay.retries").inc()
                ret, err, performed = yield from self._perform(action)
            if attempt and err is None:
                self.report.retries_recovered += 1
        matched = self._assess(action, ret, err) if performed else True
        if self._harden.degrade and record.ok and err is not None:
            self._poisoned.add(action.idx)
        return ret, err, matched

    def _assess(self, action, ret, err):
        """Compare one executed action's outcome against the trace,
        emitting nonconformance warnings; returns ``matched``."""
        record = action.record
        if record.ok:
            matched = err is None
            if not matched:
                self._warn(
                    record, ReplayWarning.UNEXPECTED_FAILURE,
                    "%s failed with %s (succeeded in trace)" % (record.name, err),
                )
            elif spec_for(record.name).kind in ("read", "pread"):
                # Return-value similarity (section 4.3.3): a short read
                # means the replay saw a smaller file than the trace
                # did -- an ordering problem the file-size dependency
                # refinement exists to prevent.
                matched = ret == record.ret
                if not matched:
                    self._warn(
                        record, ReplayWarning.SHORT_READ,
                        "%s returned %r, trace had %r"
                        % (record.name, ret, record.ret),
                    )
        else:
            matched = _errno_equivalent(err, record.err)
            if not matched:
                if err is None:
                    self._warn(
                        record, ReplayWarning.UNEXPECTED_SUCCESS,
                        "%s succeeded (failed with %s in trace)"
                        % (record.name, record.err),
                    )
                else:
                    self._warn(
                        record, ReplayWarning.WRONG_ERRNO,
                        "%s failed with %s, trace had %s"
                        % (record.name, err, record.err),
                    )
        return matched

    def _warn(self, record, kind, message):
        if self._obs is not None:
            self._obs.metrics.counter("replay.warnings.%s" % kind).inc()
            self._spans.instant(
                kind, "warning", "T%s" % record.tid, self.engine.now,
                args={"idx": record.idx, "call": record.name},
            )
        if kind in self.config.suppress_warnings:
            return
        key = (kind, record.name)
        first = self._warn_seen.get(key)
        if first is not None:
            first.count += 1
            return
        warning = ReplayWarning(record.idx, kind, message, call=record.name)
        self._warn_seen[key] = warning
        self.report.warn(warning)

    def _timing_delay(self, action):
        timing = self.config.timing
        if timing == "afap":
            pre = 0.0
        elif timing == "natural":
            pre = action.predelay
        else:
            pre = action.predelay * float(timing)
        if self.config.jitter:
            pre += self.engine.rng.random() * self.config.jitter
        if pre > 0:
            yield Delay(pre)

    def _play_one(self, action):
        if not self._afap:
            yield from self._timing_delay(action)
        self._mark_issued(action.idx)
        issue = self.engine.now
        ret, err, matched = yield from self._exec(action)
        done = self.engine.now
        self.report.add(
            ActionResult(
                action.idx,
                action.record.tid,
                action.record.name,
                issue,
                done,
                ret if isinstance(ret, (int, float)) else 0,
                err,
                matched,
            )
        )
        if self._obs is not None:
            self._c_actions.inc()
            self._h_latency.observe(done - issue)
            args = {"idx": action.idx}
            if err is not None:
                args["err"] = err
            if not matched:
                args["mismatch"] = True
            self._spans.record(
                action.record.name, "syscall",
                "T%s" % action.record.tid, issue, done, args,
            )
        self._finish(action.idx)

    def _mark_issued_events(self, idx):
        if not self.issue_events[idx].is_set:
            self.issue_events[idx].set()

    def _finish_events(self, idx):
        self.done_events[idx].set()

    def _skip(self, action):
        """Graceful degradation: record a poisoned action as skipped
        (it still fires its completion event so waiters proceed)."""
        now = self.engine.now
        self._mark_issued(action.idx)
        self.report.add(
            ActionResult(
                action.idx, action.record.tid, action.record.name,
                now, now, 0, None, True, skipped=True,
            )
        )
        self._poisoned.add(action.idx)
        if self._obs is not None:
            self._obs.metrics.counter("replay.skipped").inc()
            self._spans.instant(
                "skipped", "warning", "T%s" % action.record.tid, now,
                args={"idx": action.idx, "call": action.record.name},
            )
        self._finish(action.idx)

    # -- core selection and the scoreboard ----------------------------------

    def _resolve_core(self, config):
        """True when this run uses the scoreboard core."""
        supported = (
            config.harden is None
            and not config.resume_completed
            and config.mode != ReplayMode.TEMPORAL
        )
        if config.core == "auto":
            return supported
        if config.core in ("scoreboard", "jit"):
            if not supported:
                raise ReplayError(
                    "%s core does not support %s"
                    % (
                        config.core,
                        "temporal replay"
                        if config.mode == ReplayMode.TEMPORAL
                        else "hardened or crash-recovery-resumed replay",
                    )
                )
            return True
        return False

    def _setup_scoreboard(self, preds):
        """Build the scoreboard over ``preds``: one pending-predecessor
        counter and successor list per action, one gate per thread."""
        n = len(self.benchmark.actions)
        pending = [0] * n
        succs = [[] for _ in range(n)]
        for dst, plist in enumerate(preds):
            pending[dst] = len(plist)
            for src in plist:
                succs[src].append(dst)
        self._sb_pending = pending
        self._sb_succs = succs
        self._sb_tid = [a.record.tid for a in self.benchmark.actions]
        self._sb_gates = {tid: Gate() for tid in self.benchmark.threads}
        # tid -> action idx that thread is currently parked on.
        self._sb_waiting = {}

    def _sb_complete(self, idx):
        """Scoreboard completion: decrement each successor's counter
        and ring the owning thread's gate when one becomes ready."""
        pending = self._sb_pending
        waiting = self._sb_waiting
        for succ in self._sb_succs[idx]:
            left = pending[succ] - 1
            pending[succ] = left
            if not left and waiting:
                tid = self._sb_tid[succ]
                if waiting.get(tid) == succ:
                    del waiting[tid]
                    self._sb_gates[tid].open()

    def _sb_complete_observed(self, idx):
        """:meth:`_sb_complete` with dispatch accounting (chosen when an
        observability context is attached)."""
        pending = self._sb_pending
        waiting = self._sb_waiting
        for succ in self._sb_succs[idx]:
            self._c_sb_dispatch.inc()
            left = pending[succ] - 1
            pending[succ] = left
            if not left and waiting:
                tid = self._sb_tid[succ]
                if waiting.get(tid) == succ:
                    del waiting[tid]
                    self._c_sb_wakeups.inc()
                    self._sb_gates[tid].open()

    def _sb_thread(self, actions, tid):
        """Scoreboard ARTC thread body: play own actions in trace
        order, parking once on the thread's gate whenever the next
        action still has unfinished predecessors."""
        pending = self._sb_pending
        waiting = self._sb_waiting
        gate = self._sb_gates[tid]
        for action in actions:
            idx = action.idx
            if pending[idx]:
                waiting[tid] = idx
                yield gate
            yield from self._play_one(action)

    def _sb_thread_observed(self, actions, tid):
        """The scoreboard thread body with dependency-wait accounting
        (mirrors :meth:`_artc_thread_observed`)."""
        pending = self._sb_pending
        waiting = self._sb_waiting
        gate = self._sb_gates[tid]
        engine = self.engine
        for action in actions:
            idx = action.idx
            if pending[idx]:
                wait_start = engine.now
                self._c_waits.inc()
                waiting[tid] = idx
                yield gate
                stalled = engine.now - wait_start
                self._h_dep_wait.observe(stalled)
                if stalled > 0:
                    self._spans.record(
                        "dep-wait", "wait", "T%s" % action.record.tid,
                        wait_start, engine.now, args={"before": idx},
                    )
            yield from self._play_one(action)

    # -- the precompiled fast path ------------------------------------------
    #
    # The event core re-derives everything per action per replay:
    # argument translation builds a fresh dict, dup2 aliasing and
    # emulation planning consult the registry, and the executor
    # re-dispatches name -> kind -> handler.  All of that except the
    # runtime fd remap is a pure function of (benchmark, source,
    # target, emulation options, o_excl_fix) -- the execution-plan IR
    # (:mod:`repro.artc.planir`), compiled once and cached on the
    # benchmark object, so replays of the same compiled benchmark (the
    # compile-once/replay-many pipeline) reuse the entries.  Entry
    # kinds and their runtime tuples are documented in planir; the
    # scoreboard bodies below interpret them, the JIT core
    # (:mod:`repro.artc.codegen`) compiles them to straight-line code.

    def _exec_plans(self):
        """The active :class:`~repro.artc.planir.ExecutionPlan`."""
        return planir.plans_for(
            self.benchmark,
            self.source,
            self.target,
            self.config.o_excl_fix,
            self.config.emulation,
        )

    def _call_handler(self, handler, tid, args, step_name, step_kind):
        """Mirror :func:`repro.syscalls.execute.perform`'s eager-binding
        KeyError audit on the precompiled path."""
        try:
            return handler(self.ctx, tid, args)
        except KeyError as exc:
            raise ReplayError(
                "syscall %s (kind %s) is missing argument %s; got %r"
                % (step_name, step_kind, exc, sorted(args))
            )

    def _exec_fast(self, action):
        """Play one action from its precompiled entry: the fast-path
        equivalent of :meth:`_play_one` (AFAP timing, no hardening, no
        instrumentation), producing the identical report entry."""
        record = action.record
        tid = record.tid
        entry = self._exec_plan[action.idx]
        kind = entry[0]
        engine = self.engine
        issue = engine.now
        if kind == 1:
            handler, args, step_name, step_kind = entry[1]
            ret, err = yield from self._call_handler(
                handler, tid, args, step_name, step_kind
            )
        elif kind == 2:
            handler, base, fd_key, step_name, step_kind = entry[1]
            args = dict(base)
            args["fd"] = self.ctx.fd_map.get(fd_key, base["fd"])
            ret, err = yield from self._call_handler(
                handler, tid, args, step_name, step_kind
            )
        elif kind == 0:
            yield self._meta_delay
            self.report.results.append(
                ActionResult(
                    action.idx, tid, record.name, issue, engine.now,
                    0, None, True,
                )
            )
            return
        elif kind == 3:
            ret, err = 0, None
            for handler, args, step_name, step_kind in entry[1]:
                ret, err = yield from self._call_handler(
                    handler, tid, args, step_name, step_kind
                )
                if err is not None:
                    break
        else:
            ret, err, performed = yield from self._perform(action)
            matched = self._assess(action, ret, err) if performed else True
            self.report.results.append(
                ActionResult(
                    action.idx, tid, record.name, issue, engine.now,
                    ret if isinstance(ret, (int, float)) else 0, err, matched,
                )
            )
            return
        if entry[3]:
            self._update_maps(action, ret, err)
        if record.ok and err is None and (not entry[2] or ret == record.ret):
            matched = True  # the overwhelmingly common conforming case
        else:
            matched = self._assess(action, ret, err)
        self.report.results.append(
            ActionResult(
                action.idx, tid, record.name, issue, engine.now,
                ret if isinstance(ret, (int, float)) else 0, err, matched,
            )
        )

    def _sb_thread_fast(self, actions, tid):
        """:meth:`_sb_thread` over precompiled entries, with the action
        execution (the body of :meth:`_exec_fast`) and the completion
        broadcast both inlined.  At replay rates the generator frame
        per action -- and the extra delegation level it adds to every
        engine resume -- are measurable, so the scoreboard's hot loop
        flattens them; keep the logic in lockstep with
        :meth:`_exec_fast`.  Entry kinds are tested in measured
        frequency order (fd-remapped single steps dominate real
        traces, static single steps next)."""
        pending = self._sb_pending
        succs = self._sb_succs
        sb_tid = self._sb_tid
        gates = self._sb_gates
        waiting = self._sb_waiting
        gate = gates[tid]
        exec_plan = self._exec_plan
        engine = self.engine
        ctx = self.ctx
        fd_map = ctx.fd_map
        meta_delay = self._meta_delay
        call_handler = self._call_handler
        append = self.report.results.append
        for action in actions:
            idx = action.idx
            if pending[idx]:
                waiting[tid] = idx
                yield gate
            record = action.record
            kind, payload, is_read, upd = exec_plan[idx]
            issue = engine.now
            if kind == 2:
                handler, base, fd_key, step_name, step_kind = payload
                args = dict(base)
                args["fd"] = fd_map.get(fd_key, base["fd"])
                # _call_handler with the eager argument binding inlined
                # (the try guards generator *creation* only -- handler
                # KeyErrors during iteration must propagate unchanged).
                try:
                    step = handler(ctx, record.tid, args)
                except KeyError as exc:
                    raise ReplayError(
                        "syscall %s (kind %s) is missing argument %s; got %r"
                        % (step_name, step_kind, exc, sorted(args))
                    )
                ret, err = yield from step
            elif kind == 1:
                handler, args, step_name, step_kind = payload
                try:
                    step = handler(ctx, record.tid, args)
                except KeyError as exc:
                    raise ReplayError(
                        "syscall %s (kind %s) is missing argument %s; got %r"
                        % (step_name, step_kind, exc, sorted(args))
                    )
                ret, err = yield from step
            elif kind == 0:
                yield meta_delay
                append(
                    ActionResult(
                        idx, record.tid, record.name, issue, engine.now,
                        0, None, True,
                    )
                )
            elif kind == 3:
                ret, err = 0, None
                for handler, args, step_name, step_kind in payload:
                    ret, err = yield from call_handler(
                        handler, record.tid, args, step_name, step_kind
                    )
                    if err is not None:
                        break
            else:
                ret, err, performed = yield from self._perform(action)
                matched = self._assess(action, ret, err) if performed else True
                append(
                    ActionResult(
                        idx, record.tid, record.name, issue, engine.now,
                        ret if isinstance(ret, (int, float)) else 0, err, matched,
                    )
                )
            if 0 < kind < 4:
                if upd:
                    self._update_maps(action, ret, err)
                if record.ok and err is None and (not is_read or ret == record.ret):
                    matched = True  # the overwhelmingly common conforming case
                else:
                    matched = self._assess(action, ret, err)
                append(
                    ActionResult(
                        idx, record.tid, record.name, issue, engine.now,
                        ret if isinstance(ret, (int, float)) else 0, err, matched,
                    )
                )
            for succ in succs[idx]:
                left = pending[succ] - 1
                pending[succ] = left
                if not left and waiting:
                    owner = sb_tid[succ]
                    if waiting.get(owner) == succ:
                        del waiting[owner]
                        gates[owner].open()

    def _single_thread_fast(self, actions):
        """Precompiled sequential play: single-threaded replay, and the
        unconstrained baseline's per-thread bodies (no cross-thread
        constraints, so no scoreboard either)."""
        exec_fast = self._exec_fast
        for action in actions:
            yield from exec_fast(action)

    # -- per-mode thread bodies ---------------------------------------------

    def _artc_thread(self, actions, preds):
        # Hot loop: bind the event table once, and fast-path events
        # that already fired without touching the engine.
        done_events = self.done_events
        for action in actions:
            for dep in preds[action.idx]:
                event = done_events[dep]
                if not event._fired:
                    yield WaitEvent(event)
            yield from self._play_one(action)

    def _artc_thread_observed(self, actions, preds):
        """The ARTC thread body with dependency-wait accounting: same
        enforcement as :meth:`_artc_thread`, plus a metric per blocking
        wait and a span per stall (chosen in :meth:`run` so the fast
        path carries no instrumentation branches)."""
        done_events = self.done_events
        engine = self.engine
        for action in actions:
            wait_start = engine.now
            blocked = False
            for dep in preds[action.idx]:
                event = done_events[dep]
                if not event._fired:
                    blocked = True
                    self._c_waits.inc()
                    yield WaitEvent(event)
            if blocked:
                stalled = engine.now - wait_start
                self._h_dep_wait.observe(stalled)
                if stalled > 0:
                    self._spans.record(
                        "dep-wait", "wait", "T%s" % action.record.tid,
                        wait_start, engine.now, args={"before": action.idx},
                    )
            yield from self._play_one(action)

    def _artc_thread_degraded(self, actions, preds):
        """The ARTC thread body under graceful degradation: wait for
        dependencies as usual, but if any of them is poisoned (failed
        unexpectedly or was itself skipped), record-and-skip instead of
        executing against corrupted state."""
        done_events = self.done_events
        poisoned = self._poisoned
        for action in actions:
            for dep in preds[action.idx]:
                event = done_events[dep]
                if not event._fired:
                    yield WaitEvent(event)
            if poisoned and any(dep in poisoned for dep in preds[action.idx]):
                self._skip(action)
                continue
            yield from self._play_one(action)

    def _temporal_prepare(self):
        """Precompute the completed-before-issue relation.

        Temporally-ordered replay preserves the trace's observed
        ordering without allowing any new reordering: an action is
        issued only after (a) every earlier action has been *issued*
        and (b) every action that had *completed* before this action's
        issue during tracing has completed during replay."""
        import bisect

        actions = self.benchmark.actions
        self._comp_order = sorted(
            range(len(actions)), key=lambda i: actions[i].record.t_return
        )
        returns = [actions[i].record.t_return for i in self._comp_order]
        self._prefix_of = [
            bisect.bisect_right(returns, action.record.t_enter)
            for action in actions
        ]
        self._frontier = 0

    def _wait_completed_prefix(self, k):
        while self._frontier < k:
            event = self.done_events[self._comp_order[self._frontier]]
            if not event.is_set:
                yield WaitEvent(event)
            while (
                self._frontier < len(self._comp_order)
                and self.done_events[self._comp_order[self._frontier]].is_set
            ):
                self._frontier += 1

    def _temporal_thread(self, actions):
        for action in actions:
            if action.idx > 0:
                event = self.issue_events[action.idx - 1]
                if not event.is_set:
                    yield WaitEvent(event)
            yield from self._wait_completed_prefix(self._prefix_of[action.idx])
            yield from self._play_one(action)

    def _single_thread(self, actions):
        for action in actions:
            yield from self._play_one(action)

    # -- hardening: watchdog and stall diagnosis ----------------------------

    def _merged_preds(self):
        """Enforced predecessor lists plus implicit thread sequencing
        (the same view ``artc lint``'s graph pass analyzes)."""
        from repro.core.analysis import thread_edges

        benchmark = self.benchmark
        if self.config.mode == ReplayMode.ARTC:
            preds = benchmark.graph.preds
            if self.config.reduced_deps and benchmark.graph.reduced_preds is not None:
                preds = benchmark.graph.reduced_preds
        else:
            preds = [[] for _ in benchmark.actions]
        return [
            list(p) + extra
            for p, extra in zip(preds, thread_edges(benchmark.actions))
        ]

    def _diagnose_stall(self):
        """Why is nothing completing?  Returns ``(cycle_members,
        context)``: one dependency cycle among the pending actions (if
        any) plus progress counts and the trace critical path -- the
        chain the stall is most likely sitting on."""
        from repro.core.analysis import find_cycle

        completed = {r.idx for r in self.report.results} | set(self._resumed)
        pending = [
            a.idx for a in self.benchmark.actions if a.idx not in completed
        ]
        cycle = None
        if pending:
            cycle = find_cycle(self._merged_preds(), restrict=pending)
        context = {
            "now": self.engine.now,
            "completed": len(completed),
            "pending": len(pending),
            "pending_head": pending[:8],
        }
        try:
            from repro.obs.critpath import trace_critical_path

            path = trace_critical_path(self.benchmark)
            context["critical_path"] = {
                "length": path.length,
                "path_actions": len(path.path),
                "pending_on_path": sum(
                    1 for idx in path.path if idx not in completed
                ),
                "time_by_kind": dict(path.time_by_kind),
            }
        except Exception:  # diagnosis must never mask the stall itself
            pass
        return (cycle or []), context

    def _watchdog(self, stall):
        """Convert a wedged replay into a clean abort: if no action
        completes between two consecutive ``stall``-second wakeups, the
        run is stuck (a dead drive, a dependency cycle) and hanging
        forever helps nobody."""
        engine = self.engine
        expected = len(self.benchmark.actions) - len(self._resumed)
        last = -1
        while True:
            yield WaitEvent(engine.timer(stall))
            done = len(self.report.results)
            stream = self.stream
            if stream is not None:
                # Live follow: the target grows with the stream; only
                # a drained producer makes the run finishable.
                if stream.drained and done >= stream.fed:
                    return
            elif done >= expected:
                return
            if done == last:
                if stream is not None and not stream.drained:
                    # Starved, not deadlocked: the producer is still
                    # writing, so report the lag instead of hunting a
                    # spurious dependency cycle in a partial graph.
                    raise ReplayAborted(
                        "watchdog: no replay progress for %gs of"
                        " simulated time; awaiting producer (lag=%d"
                        " records, %d fed, %d replayed)"
                        % (stall, stream.lag(), stream.fed,
                           stream.replayed),
                        context={"stream": stream.to_dict()},
                    )
                members, context = self._diagnose_stall()
                message = (
                    "watchdog: no replay progress for %gs of simulated time"
                    " (%d/%d actions completed)" % (stall, done, expected)
                )
                if members:
                    message += "; dependency cycle: %s" % " -> ".join(
                        str(m) for m in members + members[:1]
                    )
                raise ReplayAborted(message, members=members, context=context)
            last = done

    def _reissue(self, action):
        """Recovery's reopen pass: silently re-run one fd-creating
        action to rebuild descriptor state, with no report entry and no
        nonconformance assessment."""
        self._reopening = True
        try:
            yield from self._perform(action)
        finally:
            self._reopening = False

    # -- top level -------------------------------------------------------------

    def _live_actions(self, actions):
        if not self._resumed:
            return actions
        return [a for a in actions if a.idx not in self._resumed]

    def run(self):
        benchmark = self.benchmark
        config = self.config
        mode = config.mode
        if config.reopen_actions:
            # Rebuild crashed-away fd state before the measured window.
            for idx in config.reopen_actions:
                self.engine.run_process(
                    self._reissue(benchmark.actions[idx])
                )
        self.report.started = self.engine.now
        processes = []
        harden = self._harden
        plan = None
        if self._fast:
            plan = self._exec_plans()
            self._exec_plan = plan.entries
            self._meta_delay = Delay(self.fs.stack.META_CPU)
        if self._jit:
            from repro.artc import codegen
        if mode == ReplayMode.SINGLE or (
            mode == ReplayMode.ARTC and benchmark.graph.program_seq
        ):
            if self._jit:
                program = codegen.program_for(benchmark, plan, "seq")
                processes.append(
                    self.engine.spawn(program.main(self), name="replay-single")
                )
            else:
                body = (
                    self._single_thread_fast if self._fast else self._single_thread
                )
                processes.append(
                    self.engine.spawn(
                        body(self._live_actions(benchmark.actions)),
                        name="replay-single",
                    )
                )
        elif mode == ReplayMode.TEMPORAL:
            self._temporal_prepare()
            for tid, actions in benchmark.by_thread().items():
                processes.append(
                    self.engine.spawn(
                        self._temporal_thread(self._live_actions(actions)),
                        name="replay-T%s" % tid,
                    )
                )
        elif mode == ReplayMode.UNCONSTRAINED:
            if self.scoreboard:
                # No cross-thread constraints: plain per-thread loops,
                # no events, no counters.
                if self._jit:
                    program = codegen.program_for(benchmark, plan, "free")
                    for tid in benchmark.by_thread():
                        processes.append(
                            self.engine.spawn(
                                program.threads[tid](self),
                                name="replay-T%s" % tid,
                            )
                        )
                else:
                    body = (
                        self._single_thread_fast
                        if self._fast
                        else self._single_thread
                    )
                    for tid, actions in benchmark.by_thread().items():
                        processes.append(
                            self.engine.spawn(
                                body(actions),
                                name="replay-T%s" % tid,
                            )
                        )
            else:
                empty = [[] for _ in benchmark.actions]
                for tid, actions in benchmark.by_thread().items():
                    processes.append(
                        self.engine.spawn(
                            self._artc_thread(self._live_actions(actions), empty),
                            name="replay-T%s" % tid,
                        )
                    )
        elif self.scoreboard:  # ARTC, scoreboard core
            preds = benchmark.graph.preds
            if config.reduced_deps and benchmark.graph.reduced_preds is not None:
                preds = benchmark.graph.reduced_preds
            self._setup_scoreboard(preds)
            if self._jit:
                self._finish = self._sb_complete
                reduced = preds is benchmark.graph.reduced_preds
                program = codegen.program_for(benchmark, plan, "artc", reduced)
                for tid in benchmark.by_thread():
                    processes.append(
                        self.engine.spawn(
                            program.threads[tid](self), name="replay-T%s" % tid
                        )
                    )
            else:
                if self._fast:
                    self._finish = self._sb_complete
                    thread_body = self._sb_thread_fast
                elif self._obs is None:
                    self._finish = self._sb_complete
                    thread_body = self._sb_thread
                else:
                    self._finish = self._sb_complete_observed
                    thread_body = self._sb_thread_observed
                for tid, actions in benchmark.by_thread().items():
                    processes.append(
                        self.engine.spawn(
                            thread_body(actions, tid), name="replay-T%s" % tid
                        )
                    )
        else:  # ARTC, event core
            preds = benchmark.graph.preds
            if config.reduced_deps and benchmark.graph.reduced_preds is not None:
                preds = benchmark.graph.reduced_preds
            if harden is not None and harden.degrade:
                thread_body = self._artc_thread_degraded
            elif self._obs is None:
                thread_body = self._artc_thread
            else:
                thread_body = self._artc_thread_observed
            for tid, actions in benchmark.by_thread().items():
                processes.append(
                    self.engine.spawn(
                        thread_body(self._live_actions(actions), preds),
                        name="replay-T%s" % tid,
                    )
                )
        if harden is not None and harden.watchdog_stall:
            self.engine.spawn(
                self._watchdog(harden.watchdog_stall), name="replay-watchdog"
            )
        try:
            self.engine.run()
        except (MachineCrashed, ReplayAborted) as exc:
            # Attach the partial report so callers (crash recovery, the
            # CLI) can see how far the run got before re-raising.
            self._finalize(processes)
            exc.partial_report = self.report
            raise
        stuck = [p.name for p in processes if p.alive]
        if stuck:
            message = "replay deadlocked; threads still blocked: %s" % (
                ", ".join(stuck)
            )
            members, _context = self._diagnose_stall()
            if members:
                message += "; dependency cycle: %s" % " -> ".join(
                    str(c) for c in members + members[:1]
                )
            raise ReplayError(message)
        self._finalize(processes)
        return self.report

    def _finalize(self, processes):
        self.report.finished = max(
            (r.done for r in self.report.results), default=self.engine.now
        )
        self.report.results.sort(key=lambda r: r.idx)
        for warning in self.report.warnings:
            if warning.count > 1:
                warning.message += " [x%d]" % warning.count
        if self._obs is not None:
            metrics = self._obs.metrics
            metrics.gauge("replay.elapsed_seconds").set(self.report.elapsed)
            metrics.gauge("replay.threads").set(len(processes))
            if self.config.core == "jit":
                # Codegen / compile-cache statistics are process-wide
                # (programs are cached across runs); exporting them on
                # every jit-core run keeps the newest totals visible.
                from repro.artc import codegen

                for name, value in codegen.COUNTERS.items():
                    metrics.gauge("replay.jit.%s" % name).set(value)
            self._obs.collect_stack(self.fs.stack)


def replay(benchmark, fs, config=None):
    """Replay ``benchmark`` on the file system ``fs``.

    The caller is responsible for initialization
    (:mod:`repro.artc.init`) before invoking replay.  Returns a
    :class:`~repro.artc.report.ReplayReport`.
    """
    if config is None:
        config = ReplayConfig()
    if config.core == "shard":
        # Local import: shardcore builds on _ReplayRun.
        from repro.artc.shardcore import replay_sharded

        return replay_sharded(benchmark, fs, config)
    return _ReplayRun(benchmark, fs, config).run()
