"""The ARTC compiler: trace + snapshot -> compiled benchmark.

Pipeline (paper section 4.3.1):

1. interpret the trace against the symbolic file-system model,
   producing per-action resource touches and replay annotations
   (:class:`repro.core.model.TraceModel`);
2. apply the configured ordering rules to obtain the dependency graph
   (:func:`repro.core.deps.build_dependencies`);
3. package actions + graph + snapshot into a
   :class:`repro.artc.benchmark.CompiledBenchmark`.
"""

from repro.artc.benchmark import CompiledBenchmark
from repro.core.deps import build_dependencies
from repro.core.model import TraceModel
from repro.core.modes import RuleSet


def compile_trace(trace, snapshot=None, ruleset=None, label=None):
    """Compile ``trace`` into a replayable benchmark.

    ``snapshot`` initializes the compiler's symbolic namespace (and is
    carried along for target initialization); ``ruleset`` defaults to
    ARTC's standard modes (every supported constraint except
    ``program_seq``).
    """
    if ruleset is None:
        ruleset = RuleSet.artc_default()
    model = TraceModel(trace, snapshot)
    graph = build_dependencies(model.actions, ruleset)
    stats = {
        "model_misses": model.model_misses,
        "n_actions": len(model.actions),
        "n_edges": graph.n_edges,
        "n_threads": len(trace.threads),
    }
    return CompiledBenchmark(
        model.actions,
        graph,
        ruleset,
        snapshot,
        trace.platform,
        label if label is not None else trace.label,
        stats,
    )
