"""The ARTC compiler: trace + snapshot -> compiled benchmark.

Pipeline (paper section 4.3.1):

1. interpret the trace against the symbolic file-system model,
   producing per-action resource touches and replay annotations
   (:class:`repro.core.model.TraceModel`);
2. apply the configured ordering rules to obtain the dependency graph
   (:func:`repro.core.deps.build_dependencies`);
3. reduce the graph's wait sets (:func:`repro.core.reduce.reduce_graph`)
   -- a replay fast path; the full attributed edge set is kept for
   analysis;
4. package actions + graph + snapshot into a
   :class:`repro.artc.benchmark.CompiledBenchmark`.
"""

import time

from repro.artc.benchmark import CompiledBenchmark
from repro.core.deps import build_dependencies
from repro.core.model import TraceModel
from repro.core.modes import RuleSet
from repro.core.reduce import reduce_graph


def compile_trace(trace, snapshot=None, ruleset=None, label=None, reduce=True):
    """Compile ``trace`` into a replayable benchmark.

    ``snapshot`` initializes the compiler's symbolic namespace (and is
    carried along for target initialization); ``ruleset`` defaults to
    ARTC's standard modes (every supported constraint except
    ``program_seq``).  ``reduce=False`` skips the edge-reduction pass
    (the replayer then waits on the raw ``preds``); used by the
    compile-speed microbenchmark and for before/after comparisons.
    """
    if ruleset is None:
        ruleset = RuleSet.artc_default()
    started = time.perf_counter()
    model = TraceModel(trace, snapshot)
    graph = build_dependencies(model.actions, ruleset)
    edges_removed = 0
    if reduce:
        tid_of = [action.record.tid for action in model.actions]
        edges_removed = reduce_graph(graph, tid_of)
    stats = {
        "model_misses": model.model_misses,
        "n_actions": len(model.actions),
        "n_edges": graph.n_edges,
        "n_threads": len(trace.threads),
        "n_edges_reduced": graph.n_edges - edges_removed,
        "edges_removed": edges_removed,
        "compile_seconds": time.perf_counter() - started,
    }
    return CompiledBenchmark(
        model.actions,
        graph,
        ruleset,
        snapshot,
        trace.platform,
        label if label is not None else trace.label,
        stats,
    )
