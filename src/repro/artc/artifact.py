"""Persistent compiled-benchmark artifacts (the ``.artcb`` format).

ARTC proper compiles traces into shared libraries that are built once
and replayed many times; our JSON benchmarks are re-parsed and (worse)
re-traced per experiment cell.  An ``.artcb`` file is the equivalent
durable artifact for this reproduction: a versioned, integrity-checked
container around :class:`~repro.artc.benchmark.CompiledBenchmark`.

Layout (all integers big-endian)::

    offset  size  field
    0       6     magic  b"ARTCB\\x00"
    6       4     format version (uint32)
    10      32    SHA-256 of the compressed payload
    42      8     payload length in bytes (uint64)
    50      ...   zlib-compressed wrapper JSON (UTF-8)

Format version 2 wraps the benchmark JSON together with its serialized
execution-plan IR (:mod:`repro.artc.planir`)::

    {"format": "artcb-v2", "benchmark": {...}, "plans": [{...}, ...]}

An optional ``"certificates"`` key carries ``artc verify`` translation
-validation certificates (:mod:`repro.verify.transval`), re-attached
to the benchmark as ``benchmark.certificates`` on load; readers that
predate it ignore the key, so no format bump is needed.

``pack`` precompiles the self-targeted default plan, so a load -- and
every :mod:`repro.bench.artifacts` cache hit -- skips IR extraction
entirely; the load also stamps the benchmark with its content address
(``benchmark.content_key``), which keys the JIT core's compiled-program
cache.  Version 1 artifacts (benchmark JSON only) are rejected loudly:
re-pack from the source trace rather than silently re-extracting.

The hash is over the *stored* bytes, so corruption is detected before
any decompression or parsing happens, and the hex digest doubles as
the content address under which the benchmark cache files the
artifact (see :mod:`repro.bench.artifacts`).
"""

import hashlib
import json
import os
import struct
import zlib

from repro.errors import ReproError

MAGIC = b"ARTCB\x00"
FORMAT_VERSION = 2
_WRAPPER_FORMAT = "artcb-v2"
_HEADER = struct.Struct(">6sI32sQ")


class ArtifactError(ReproError):
    """An ``.artcb`` file is unreadable: wrong magic, an incompatible
    format version, or a content hash that does not match the payload."""


def pack_bytes(benchmark):
    """Serialize ``benchmark`` to ``.artcb`` bytes.

    Precompiles the self-targeted default execution plan and embeds it
    (plus any other plans already cached on the benchmark), then stamps
    ``benchmark.content_key`` so in-process replays of a just-packed
    benchmark already hit the JIT's content-addressed program cache.
    """
    from repro.artc import planir

    planir.default_plan(benchmark)
    wrapper = {
        "format": _WRAPPER_FORMAT,
        "benchmark": benchmark.to_payload(),
        "plans": [plan.to_payload() for plan in planir.cached_plans(benchmark)],
    }
    certificates = getattr(benchmark, "certificates", None)
    if certificates:
        wrapper["certificates"] = [cert.to_dict() for cert in certificates]
    payload = zlib.compress(json.dumps(wrapper).encode("utf-8"), 6)
    digest = hashlib.sha256(payload).digest()
    benchmark.content_key = digest.hex()
    return _HEADER.pack(MAGIC, FORMAT_VERSION, digest, len(payload)) + payload


def unpack_bytes(data):
    """Parse ``.artcb`` bytes back into a ``CompiledBenchmark`` with
    its execution plans pre-installed and its content address stamped."""
    from repro.artc import planir
    from repro.artc.benchmark import CompiledBenchmark

    if len(data) < _HEADER.size:
        raise ArtifactError("truncated artifact: %d bytes" % len(data))
    magic, version, digest, length = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise ArtifactError("not an .artcb artifact (bad magic %r)" % (magic,))
    if version != FORMAT_VERSION:
        raise ArtifactError(
            "unsupported artifact format version %d (this build reads %d);"
            " re-pack the benchmark from its source trace"
            % (version, FORMAT_VERSION)
        )
    payload = data[_HEADER.size:]
    if len(payload) != length:
        raise ArtifactError(
            "truncated artifact: header promises %d payload bytes, found %d"
            % (length, len(payload))
        )
    if hashlib.sha256(payload).digest() != digest:
        raise ArtifactError("artifact content hash mismatch (corrupted file)")
    wrapper = json.loads(zlib.decompress(payload).decode("utf-8"))
    if wrapper.get("format") != _WRAPPER_FORMAT:
        raise ArtifactError(
            "artifact payload is not %r (found %r)"
            % (_WRAPPER_FORMAT, wrapper.get("format"))
        )
    benchmark = CompiledBenchmark.from_payload(wrapper["benchmark"])
    try:
        planir.install(benchmark, wrapper.get("plans", ()))
    except ValueError as exc:
        raise ArtifactError(
            "artifact carries an execution plan this build cannot run: %s"
            % (exc,)
        ) from exc
    raw_certs = wrapper.get("certificates")
    if raw_certs:
        from repro.verify.transval import Certificate

        try:
            benchmark.certificates = [
                Certificate.from_dict(item) for item in raw_certs
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise ArtifactError(
                "artifact carries unreadable verification certificates: %s"
                % (exc,)
            ) from exc
    benchmark.content_key = digest.hex()
    return benchmark


def content_hash(path):
    """Hex SHA-256 recorded in an artifact's header (no payload parse)."""
    with open(path, "rb") as handle:
        head = handle.read(_HEADER.size)
    if len(head) < _HEADER.size:
        raise ArtifactError("truncated artifact: %d bytes" % len(head))
    magic, version, digest, _length = _HEADER.unpack(head)
    if magic != MAGIC:
        raise ArtifactError("not an .artcb artifact (bad magic %r)" % (magic,))
    return digest.hex()


def save(benchmark, path):
    """Atomically write ``benchmark`` to ``path`` as an ``.artcb``."""
    data = pack_bytes(benchmark)
    tmp = "%s.tmp.%d" % (path, os.getpid())
    with open(tmp, "wb") as handle:
        handle.write(data)
    os.replace(tmp, path)
    return path


def load(path):
    """Read an ``.artcb`` written by :func:`save`."""
    with open(path, "rb") as handle:
        return unpack_bytes(handle.read())
