"""The execution-plan IR: precompiled per-action replay plans.

Replaying one action means translating its trace arguments, consulting
the cross-platform emulation table, and dispatching name -> kind ->
handler.  All of that except the runtime fd remap is a pure function of
``(benchmark, source, target, emulation options, o_excl_fix)`` -- so it
is compiled once per benchmark into an :class:`ExecutionPlan`: a list
of per-action *entries*, one of five shapes:

========  =========  ====================================================
kind      name       meaning
========  =========  ====================================================
``0``     meta       emulation planned nothing; charge metadata CPU,
                     trivially matched
``1``     static     one step, arguments fully static
``2``     fdremap    one step whose ``fd`` must be remapped through the
                     live fd table at issue time
``3``     multi      several static steps, stop on first error
``4``     dynamic    fall back to the dynamic interpreter (multi-step
                     plans over remapped fds, unknown handlers)
========  =========  ====================================================

The runtime entry representation is the tuple the replayer hot loops
consume directly: ``(kind, payload, is_read, upd)`` with handler
callables already bound.  The IR is also *serializable* -- handlers are
rebound from the syscall registry on load -- so compiled artifacts
(:mod:`repro.artc.artifact`) can carry the plans and a cache hit skips
extraction entirely.

Three replay cores share this module: the event core's scoreboard fast
path, the scoreboard core's inlined executor, and the JIT core
(:mod:`repro.artc.codegen`), which specializes the IR per trace into
straight-line Python.

The module also defines the *batched release* step used by the JIT
core: successor lists grouped into maximal consecutive runs owned by
one thread, so a completion decrements a whole run's counters in one
pass and probes the waiting table once per run instead of once per
successor.  :func:`release_serial` is the one-at-a-time reference
semantics (what the scoreboard core does); the two are proven
equivalent by ``tests/artc/test_release_batch.py`` and the hypothesis
property in ``tests/property/test_release_property.py``.
"""

from collections import namedtuple

from repro.syscalls.emulation import EmulationOptions, plan_for
from repro.syscalls.execute import HANDLERS
from repro.syscalls.registry import spec_for

#: Entry kinds, in the order the replayer's dispatch knows them.
META, STATIC, FDREMAP, MULTI, DYNAMIC = range(5)

KIND_NAMES = ("meta", "static", "fdremap", "multi", "dynamic")

#: Serialized-IR format tag (embedded in ``.artcb`` v2 artifacts).
IR_FORMAT = "artc-planir-v1"


#: Everything outside the benchmark that shapes an execution plan.
PlanKey = namedtuple(
    "PlanKey",
    ("source", "target", "o_excl_fix", "fsync_mode", "ignore_unsupported_hints"),
)


def plan_key(source, target, o_excl_fix, emulation):
    """The :class:`PlanKey` for one (replay config, target) pairing."""
    return PlanKey(
        source,
        target,
        bool(o_excl_fix),
        emulation.fsync_mode,
        emulation.ignore_unsupported_hints,
    )


def _emulation_of(key):
    return EmulationOptions(
        fsync_mode=key.fsync_mode,
        ignore_unsupported_hints=key.ignore_unsupported_hints,
    )


def emulation_of(key):
    """The :class:`EmulationOptions` a :class:`PlanKey` encodes.  The
    translation validator (:mod:`repro.verify.transval`) uses this to
    recompile entries independently and diff them against a plan that
    may have been loaded from an artifact."""
    return _emulation_of(key)


def compile_entry(action, key, emulation):
    """Compile one action into its runtime plan entry.

    Mirrors the event core's per-action work exactly: argument
    translation (aiocb generations, the O_EXCL workaround), dup2
    aliasing, emulation planning, and handler binding.  Anything that
    cannot be decided statically falls back to ``dynamic`` -- errors
    then surface at the same point, with the same message, as the
    event core.
    """
    record = action.record
    ann = action.ann
    is_read = spec_for(record.name).kind in ("read", "pread")
    upd = (
        ("ret_fd" in ann and isinstance(record.ret, int))
        or "newfd_gen" in ann
        or ("ret_fds" in ann and isinstance(record.ret, (list, tuple)))
    )
    dynamic = (DYNAMIC, None, is_read, upd)
    args = dict(record.args)
    if "aiocb" in ann and "aiocb" in args:
        args["aiocb"] = "%s@%d" % (args["aiocb"], ann["aiocb"])
    if "aiocb_gens" in ann and "aiocbs" in args:
        args["aiocbs"] = [
            "%s@%d" % (cb, gen)
            for cb, gen in zip(args["aiocbs"], ann["aiocb_gens"])
        ]
    if key.o_excl_fix and record.ok and isinstance(args.get("flags"), str):
        if "O_EXCL" in args["flags"] and "O_CREAT" in args["flags"]:
            args["flags"] = "|".join(
                part for part in args["flags"].split("|") if part != "O_EXCL"
            )
    fd_key = None
    if "fd" in ann and "fd" in args:
        fd_key = (args["fd"], ann["fd"])
    name = record.name
    if spec_for(name).kind == "dup2":
        name = "dup"
    try:
        plan = plan_for(name, args, key.source, key.target, emulation)
    except Exception:
        return dynamic
    if not plan:
        return (META, None, is_read, upd)
    steps = []
    for step_name, step_args in plan:
        kind = spec_for(step_name).kind
        handler = HANDLERS.get(kind)
        if handler is None:
            return dynamic
        steps.append((handler, step_args, step_name, kind))
    if fd_key is not None:
        # The emulation planner may embed the (untranslated) fd in
        # fresh step dicts; only the pass-through shape -- one step
        # reusing the translated-args dict -- can defer the remap.
        if len(steps) == 1 and plan[0][1] is args:
            handler, _, step_name, kind = steps[0]
            return (FDREMAP, (handler, args, fd_key, step_name, kind), is_read, upd)
        return dynamic
    if len(steps) == 1:
        return (STATIC, steps[0], is_read, upd)
    return (MULTI, steps, is_read, upd)


class ExecutionPlan(object):
    """One benchmark's compiled entries under one :class:`PlanKey`."""

    __slots__ = ("key", "entries")

    def __init__(self, key, entries):
        self.key = key
        self.entries = entries

    @classmethod
    def compile(cls, benchmark, key):
        emulation = _emulation_of(key)
        entries = [
            compile_entry(action, key, emulation) for action in benchmark.actions
        ]
        return cls(key, entries)

    def __len__(self):
        return len(self.entries)

    # -- introspection (artc compile --dump-ir / artc stats --ir) ------

    def kind_counts(self):
        counts = [0] * len(KIND_NAMES)
        for entry in self.entries:
            counts[entry[0]] += 1
        return counts

    def thread_kind_counts(self, benchmark):
        """``{tid: [count per kind]}`` in first-appearance thread order."""
        out = {}
        for action, entry in zip(benchmark.actions, self.entries):
            tid = action.record.tid
            counts = out.get(tid)
            if counts is None:
                counts = out[tid] = [0] * len(KIND_NAMES)
            counts[entry[0]] += 1
        return out

    def _describe(self, action, entry):
        kind, payload = entry[0], entry[1]
        if kind == STATIC:
            return "%s(%s)" % (payload[2], _brief_args(payload[1]))
        if kind == FDREMAP:
            return "%s(fd@%r, %s)" % (
                payload[3], payload[2], _brief_args(payload[1], skip=("fd",))
            )
        if kind == MULTI:
            return "+".join(step[2] for step in payload)
        return action.record.name

    def render(self, benchmark, verbose=False):
        """Pretty-print the plan; ``verbose`` lists every entry (the
        ``--dump-ir`` debugging view for codegen divergences)."""
        key = self.key
        lines = [
            "execution-plan IR: %s -> %s (o_excl_fix=%s, fsync=%s, hints=%s)"
            % (
                key.source, key.target, key.o_excl_fix, key.fsync_mode,
                "ignore" if key.ignore_unsupported_hints else "strict",
            )
        ]
        counts = self.kind_counts()
        lines.append(
            "kinds: "
            + "  ".join(
                "%s=%d" % (KIND_NAMES[k], counts[k])
                for k in range(len(KIND_NAMES))
            )
        )
        for tid, tcounts in self.thread_kind_counts(benchmark).items():
            breakdown = ", ".join(
                "%s %d" % (KIND_NAMES[k], tcounts[k])
                for k in range(len(KIND_NAMES))
                if tcounts[k]
            )
            lines.append("T%s: %d actions (%s)" % (tid, sum(tcounts), breakdown))
        if verbose:
            for action, entry in zip(benchmark.actions, self.entries):
                flags = "".join(
                    flag for flag, on in (("r", entry[2]), ("u", entry[3])) if on
                )
                lines.append(
                    "  [T%s] #%-5d %-8s %s%s"
                    % (
                        action.record.tid,
                        action.idx,
                        KIND_NAMES[entry[0]],
                        self._describe(action, entry),
                        (" [%s]" % flags) if flags else "",
                    )
                )
        return "\n".join(lines)

    # -- serialization -------------------------------------------------

    def to_payload(self):
        """A JSON-serializable form: handlers drop to step names and
        are rebound from the registry by :meth:`from_payload`."""
        entries = []
        for kind, payload, is_read, upd in self.entries:
            entry = {"k": kind}
            if is_read:
                entry["r"] = True
            if upd:
                entry["u"] = True
            if kind in (STATIC, FDREMAP):
                if kind == STATIC:
                    _handler, args, step_name, _step_kind = payload
                else:
                    _handler, args, fd_key, step_name, _step_kind = payload
                    entry["fd"] = list(fd_key)
                entry["call"] = step_name
                entry["args"] = args
            elif kind == MULTI:
                entry["steps"] = [
                    {"call": step_name, "args": args}
                    for _handler, args, step_name, _step_kind in payload
                ]
            entries.append(entry)
        return {
            "format": IR_FORMAT,
            "key": {
                "source": self.key.source,
                "target": self.key.target,
                "o_excl_fix": self.key.o_excl_fix,
                "fsync_mode": self.key.fsync_mode,
                "ignore_unsupported_hints": self.key.ignore_unsupported_hints,
            },
            "entries": entries,
        }

    @classmethod
    def from_payload(cls, payload):
        """Rebind a serialized plan against this build's registry.  A
        plan that names a call this build cannot execute raises
        ``ValueError`` (the artifact layer turns that into a loud
        rejection rather than silently diverging)."""
        if payload.get("format") != IR_FORMAT:
            raise ValueError(
                "not a serialized execution plan (format %r)"
                % (payload.get("format"),)
            )
        raw_key = payload["key"]
        key = PlanKey(
            raw_key["source"],
            raw_key["target"],
            bool(raw_key["o_excl_fix"]),
            raw_key["fsync_mode"],
            bool(raw_key["ignore_unsupported_hints"]),
        )
        entries = []
        for entry in payload["entries"]:
            kind = entry["k"]
            is_read = bool(entry.get("r"))
            upd = bool(entry.get("u"))
            if kind in (META, DYNAMIC):
                entries.append((kind, None, is_read, upd))
                continue
            if kind == MULTI:
                steps = [
                    _bind_step(step["call"], step["args"])
                    for step in entry["steps"]
                ]
                entries.append((MULTI, steps, is_read, upd))
                continue
            step = _bind_step(entry["call"], entry["args"])
            if kind == STATIC:
                entries.append((STATIC, step, is_read, upd))
            elif kind == FDREMAP:
                handler, args, step_name, step_kind = step
                fd_key = tuple(entry["fd"])
                entries.append(
                    (FDREMAP, (handler, args, fd_key, step_name, step_kind),
                     is_read, upd)
                )
            else:
                raise ValueError("unknown execution-plan kind %r" % (kind,))
        return cls(key, entries)


def _bind_step(step_name, args):
    try:
        step_kind = spec_for(step_name).kind
    except Exception as exc:
        raise ValueError(
            "serialized execution plan names unknown call %r" % (step_name,)
        ) from exc
    handler = HANDLERS.get(step_kind)
    if handler is None:
        raise ValueError(
            "serialized execution plan names call %r (kind %r) with no "
            "handler in this build" % (step_name, step_kind)
        )
    return (handler, args, step_name, step_kind)


def _brief_args(args, skip=(), limit=60):
    text = ", ".join(
        "%s=%r" % (name, value)
        for name, value in args.items()
        if name not in skip
    )
    if len(text) > limit:
        text = text[: limit - 3] + "..."
    return text


# -- the per-benchmark plan cache ---------------------------------------


def plans_for(benchmark, source, target, o_excl_fix, emulation):
    """The cached :class:`ExecutionPlan` for one benchmark + key,
    compiling (and caching on the benchmark object) on first use.
    Artifacts that carried serialized plans pre-populate this cache
    (:func:`install`), so loads from the content-addressed store skip
    extraction entirely."""
    key = plan_key(source, target, o_excl_fix, emulation)
    cache = getattr(benchmark, "_exec_plans", None)
    if cache is None:
        cache = {}
        benchmark._exec_plans = cache
    plan = cache.get(key)
    if plan is None:
        plan = ExecutionPlan.compile(benchmark, key)
        cache[key] = plan
    return plan


def default_plan(benchmark, emulation=None, o_excl_fix=True):
    """The self-targeted plan (source platform replayed on itself under
    default emulation) -- what ``artc pack`` precompiles into the
    artifact, because same-platform replay is the dominant case."""
    from repro.syscalls.emulation import DEFAULT_OPTIONS

    return plans_for(
        benchmark,
        benchmark.platform,
        benchmark.platform,
        o_excl_fix,
        emulation or DEFAULT_OPTIONS,
    )


def cached_plans(benchmark):
    """Every plan currently cached on ``benchmark``, in insertion
    order (what the artifact writer serializes)."""
    cache = getattr(benchmark, "_exec_plans", None)
    if not cache:
        return []
    return list(cache.values())


def install(benchmark, payloads):
    """Install serialized plans (artifact load path); raises
    ``ValueError`` on any malformed or unbindable plan."""
    cache = getattr(benchmark, "_exec_plans", None)
    if cache is None:
        cache = {}
        benchmark._exec_plans = cache
    for payload in payloads:
        plan = ExecutionPlan.from_payload(payload)
        if len(plan.entries) != len(benchmark.actions):
            raise ValueError(
                "serialized execution plan covers %d actions, benchmark has %d"
                % (len(plan.entries), len(benchmark.actions))
            )
        cache[plan.key] = plan


# -- batched release -----------------------------------------------------


def release_runs(succ_list, tid_of):
    """Group ``succ_list`` into maximal *consecutive* runs owned by one
    thread: ``[(tid, (succ, ...)), ...]``.  Consecutiveness preserves
    the relative order of gate wakeups across threads, which the
    byte-identity guarantee depends on (a wake may reorder engine
    scheduling within a timestep)."""
    runs = []
    last_tid = object()
    for succ in succ_list:
        tid = tid_of[succ]
        if tid == last_tid:
            runs[-1][1].append(succ)
        else:
            runs.append((tid, [succ]))
            last_tid = tid
    return [(tid, tuple(members)) for tid, members in runs]


def release_serial(pending, waiting, gates, succ_list, tid_of):
    """One-at-a-time release (the scoreboard core's reference
    semantics): decrement each successor, waking its owner thread the
    moment the action that thread parked on hits zero.  Returns the
    tids woken, in wake order."""
    woken = []
    for succ in succ_list:
        left = pending[succ] - 1
        pending[succ] = left
        if not left and waiting:
            tid = tid_of[succ]
            if waiting.get(tid) == succ:
                del waiting[tid]
                gates[tid].open()
                woken.append(tid)
    return woken


def release_batched(pending, waiting, gates, runs):
    """Batched release over :func:`release_runs` output: one pass of
    decrements per run, then a single waiting-table probe for the run's
    owner.  Equivalent to :func:`release_serial` because a thread parks
    on at most one action, each successor is decremented exactly once
    per release, and nothing yields mid-release -- so the probe's
    outcome cannot differ from the per-successor checks."""
    woken = []
    for tid, members in runs:
        for succ in members:
            pending[succ] -= 1
        if waiting:
            parked = waiting.get(tid)
            if parked is not None and parked in members and not pending[parked]:
                del waiting[tid]
                gates[tid].open()
                woken.append(tid)
    return woken
