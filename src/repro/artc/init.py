"""Target initialization (paper section 4.3.2).

Before replay, the initial state snapshot is restored in the directory
where the benchmark executes: directories created, files populated to
the right sizes (contents are arbitrary), symlinks created.  Special
files such as /dev/random are created as symlinks to the target's own
special files -- with an option to point /dev/random at /dev/urandom,
the paper's fix for Linux's blocking entropy pool.

``delta_init`` only creates/deletes/resizes what differs from the
snapshot, for fast re-initialization between runs.  ``overlay`` applies
several snapshots (optionally under per-trace prefixes) so multiple
benchmarks can replay concurrently (the iPhoto+iTunes example).
"""

from repro.errors import SnapshotError
from repro.vfs.nodes import FileType


class InitStats(object):
    def __init__(self):
        self.dirs_created = 0
        self.files_created = 0
        self.files_resized = 0
        self.symlinks_created = 0
        self.entries_removed = 0

    def as_dict(self):
        return dict(self.__dict__)

    def __repr__(self):
        return "<InitStats %r>" % (self.as_dict(),)


def _prefixed(path, prefix):
    if not prefix:
        return path
    return "/" + prefix.strip("/") + path


def initialize(fs, snapshot, prefix="", dev_random_to_urandom=True):
    """Restore ``snapshot`` into ``fs`` from scratch.

    Initialization happens outside the measured window ("initialization
    is not a major focus of our work"), so it uses the instant setup
    helpers rather than timed system calls.
    """
    stats = InitStats()
    snapshot.validate()
    for entry in snapshot.sorted():
        path = _prefixed(entry.path, prefix)
        if entry.ftype == FileType.DIR:
            fs.makedirs_now(path)
            stats.dirs_created += 1
        elif entry.ftype == FileType.SYMLINK:
            parent = path.rsplit("/", 1)[0]
            if parent:
                fs.makedirs_now(parent)
            if fs.exists(path, follow=False):
                fs.unlink_now(path)
            fs.symlink_now(entry.target, path)
            stats.symlinks_created += 1
        elif entry.ftype == FileType.REG:
            parent = path.rsplit("/", 1)[0]
            if parent:
                fs.makedirs_now(parent)
            inode = fs.create_file_now(path, size=entry.size)
            for xattr in entry.xattrs:
                inode.xattrs[xattr] = 16
            stats.files_created += 1
        else:
            raise SnapshotError("unknown entry type %r" % entry.ftype)
    if dev_random_to_urandom and fs.platform == "linux":
        _symlink_dev_random(fs)
    _warm_metadata(fs, snapshot, prefix)
    return stats


def _warm_metadata(fs, snapshot, prefix):
    """Creating the tree leaves its dentries/inodes cached, exactly as
    a real initialization pass would."""
    inos = set()
    for entry in snapshot.sorted():
        path = _prefixed(entry.path, prefix)
        node = fs.lookup(path, follow=False)
        while path and path != "/":
            if node is not None:
                inos.add(node.ino)
            path = path.rsplit("/", 1)[0] or "/"
            node = fs.lookup(path, follow=False)
        inos.add(fs.table.ROOT_INO)
    fs.stack.warm_metadata(sorted(inos))


def delta_init(fs, snapshot, prefix="", dev_random_to_urandom=True):
    """Bring ``fs`` back to the snapshot state with minimal changes:
    create what is missing, delete extraneous entries under the
    snapshot's roots, fix sizes of existing files."""
    stats = InitStats()
    snapshot.validate()
    wanted = {}
    roots = set()
    for entry in snapshot.sorted():
        path = _prefixed(entry.path, prefix)
        wanted[path] = entry
        roots.add("/" + path.strip("/").split("/")[0])

    # Remove entries that exist but should not (depth-first).
    for root in sorted(roots):
        for path in reversed(_walk_paths(fs, root)):
            if path not in wanted:
                fs.unlink_now(path)
                stats.entries_removed += 1

    for path, entry in sorted(wanted.items(), key=lambda kv: kv[0].count("/")):
        inode = fs.lookup(path, follow=False)
        if entry.ftype == FileType.DIR:
            if inode is None:
                fs.makedirs_now(path)
                stats.dirs_created += 1
        elif entry.ftype == FileType.SYMLINK:
            if inode is None or not inode.is_symlink or (
                inode.symlink_target != entry.target
            ):
                if inode is not None:
                    fs.unlink_now(path)
                    stats.entries_removed += 1
                fs.symlink_now(entry.target, path)
                stats.symlinks_created += 1
        else:
            if inode is None:
                node = fs.create_file_now(path, size=entry.size)
                for xattr in entry.xattrs:
                    node.xattrs[xattr] = 16
                stats.files_created += 1
            elif not inode.is_reg:
                fs.unlink_now(path)
                stats.entries_removed += 1
                fs.create_file_now(path, size=entry.size)
                stats.files_created += 1
            elif inode.size != entry.size:
                inode.size = entry.size
                stats.files_resized += 1
    if dev_random_to_urandom and fs.platform == "linux":
        _symlink_dev_random(fs)
    _warm_metadata(fs, snapshot, prefix)
    return stats


def timed_initialize(osapi, snapshot, tid="init", prefix=""):
    """Restore a snapshot through real (timed) system calls.

    A generator; returns :class:`InitStats`.  This is what a real
    initialization pass costs the target — useful when studying init
    time itself (e.g. why delta init matters for short traces).  The
    instant :func:`initialize` remains the default because
    "initialization is not a major focus" (section 4.3.2).
    """
    from repro.vfs.nodes import FileType

    stats = InitStats()
    snapshot.validate()
    for entry in snapshot.sorted():
        path = _prefixed(entry.path, prefix)
        if entry.ftype == FileType.DIR:
            _ret, err = yield from osapi.call(tid, "mkdir", path=path, mode=0o755)
            if err not in (None, "EEXIST"):
                raise SnapshotError("mkdir %s failed: %s" % (path, err))
            stats.dirs_created += 1
        elif entry.ftype == FileType.SYMLINK:
            yield from osapi.call(tid, "symlink", target=entry.target, path=path)
            stats.symlinks_created += 1
        else:
            fd, err = yield from osapi.call(
                tid, "open", path=path, flags="O_WRONLY|O_CREAT", mode=0o644
            )
            if err is not None:
                raise SnapshotError("create %s failed: %s" % (path, err))
            if entry.size:
                # Populate with arbitrary data, then size exactly.
                chunk = 1 << 20
                offset = 0
                while offset < entry.size:
                    nbytes = min(chunk, entry.size - offset)
                    yield from osapi.call(
                        tid, "pwrite", fd=fd, nbytes=nbytes, offset=offset
                    )
                    offset += nbytes
            for xattr in entry.xattrs:
                yield from osapi.call(tid, "setxattr", path=path, xname=xattr, size=16)
            yield from osapi.call(tid, "close", fd=fd)
            stats.files_created += 1
    yield from osapi.call(tid, "sync")
    return stats


def overlay(fs, snapshots, prefixes=None, dev_random_to_urandom=True):
    """Initialize several snapshots into one tree for concurrent replay."""
    if prefixes is None:
        prefixes = ["" for _ in snapshots]
    if len(prefixes) != len(snapshots):
        raise SnapshotError("need one prefix per snapshot")
    stats = []
    for snapshot, prefix in zip(snapshots, prefixes):
        stats.append(
            initialize(fs, snapshot, prefix, dev_random_to_urandom)
        )
    return stats


def _symlink_dev_random(fs):
    """Replace /dev/random with a symlink to /dev/urandom so replay on
    Linux does not block on the entropy pool (paper section 5.1)."""
    node = fs.lookup("/dev/random", follow=False)
    if node is not None and node.is_symlink:
        return
    if node is not None:
        fs.unlink_now("/dev/random")
    fs.symlink_now("/dev/urandom", "/dev/random")


def _walk_paths(fs, root):
    """All paths under ``root`` (excluding it), parents first."""
    out = []
    node = fs.lookup(root, follow=False)
    if node is None or not node.is_dir:
        return out

    def _walk(current, prefix):
        for name in sorted(current.children):
            child = fs.table.get(current.children[name])
            child_path = prefix + "/" + name
            out.append(child_path)
            if child.is_dir:
                _walk(child, child_path)

    _walk(node, root.rstrip("/"))
    return out
