"""The compiled benchmark: actions, dependencies, and metadata.

ARTC proper serializes to generated C compiled into a shared library;
the paper notes that "generating input files that the replay program
parses would work as well".  We serialize to JSON.
"""

import json

from repro.core.deps import DependencyGraph
from repro.core.model import Action
from repro.core.modes import RuleSet
from repro.tracing.snapshot import Snapshot
from repro.tracing.trace import Trace, TraceRecord


class CompiledBenchmark(object):
    """Everything the replayer needs, decoupled from the compiler."""

    #: Hex SHA-256 of the ``.artcb`` payload this benchmark was loaded
    #: from, or None for benchmarks that never passed through an
    #: artifact.  The JIT core keys its process-wide compiled-program
    #: cache on this, so reloading the same artifact skips codegen.
    content_key = None

    def __init__(self, actions, graph, ruleset, snapshot, platform, label="", stats=None):
        self.actions = actions
        self.graph = graph
        self.ruleset = ruleset
        self.snapshot = snapshot
        self.platform = platform  # source platform of the trace
        self.label = label
        self.stats = dict(stats or {})

    def __len__(self):
        return len(self.actions)

    def by_thread(self):
        out = {}
        for action in self.actions:
            out.setdefault(action.record.tid, []).append(action)
        return out

    @property
    def threads(self):
        seen = []
        known = set()
        for action in self.actions:
            tid = action.record.tid
            if tid not in known:
                known.add(tid)
                seen.append(tid)
        return seen

    # -- serialization -------------------------------------------------

    def to_payload(self):
        """The JSON-ready dict form (what :meth:`dumps` serializes and
        the ``.artcb`` v2 container embeds next to the execution-plan
        IR)."""
        payload = {
            "format": "artc-benchmark-v1",
            "label": self.label,
            "platform": self.platform,
            "ruleset": {
                flag: getattr(self.ruleset, flag) for flag in RuleSet.__slots__
            },
            "stats": self.stats,
            "snapshot": json.loads(self.snapshot.dumps()) if self.snapshot else None,
            "actions": [
                {
                    "record": action.record.to_dict(),
                    "ann": action.ann,
                    "predelay": action.predelay,
                    "deps": sorted(self.graph.preds[action.idx]),
                }
                for action in self.actions
            ],
            "edge_kinds": [
                [src, dst, kind] for (src, dst), kind in self.graph.edge_kinds.items()
            ],
        }
        if self.graph.reduced_preds is not None:
            payload["reduced_preds"] = self.graph.reduced_preds
        return payload

    def dumps(self):
        return json.dumps(self.to_payload())

    @classmethod
    def loads(cls, text):
        return cls.from_payload(json.loads(text))

    @classmethod
    def from_payload(cls, payload):
        if payload.get("format") != "artc-benchmark-v1":
            raise ValueError("not an ARTC benchmark (bad header)")
        ruleset = RuleSet(**payload["ruleset"])
        actions = []
        for index, entry in enumerate(payload["actions"]):
            record = TraceRecord.from_dict(entry["record"])
            actions.append(
                Action(index, record, touches=[], ann=entry["ann"], predelay=entry["predelay"])
            )
        graph = DependencyGraph(len(actions), program_seq=ruleset.program_seq)
        for src, dst, kind in payload["edge_kinds"]:
            graph.add_edge(src, dst, kind)
        if payload.get("reduced_preds") is not None:
            graph.reduced_preds = payload["reduced_preds"]
        snapshot = None
        if payload.get("snapshot"):
            snapshot = Snapshot.loads(json.dumps(payload["snapshot"]))
        return cls(
            actions,
            graph,
            ruleset,
            snapshot,
            payload.get("platform", "linux"),
            payload.get("label", ""),
            payload.get("stats"),
        )

    def save(self, path):
        """Write to ``path``; ``.artcb`` selects the versioned binary
        artifact format (:mod:`repro.artc.artifact`), anything else the
        plain benchmark JSON."""
        if path.endswith(".artcb"):
            from repro.artc import artifact

            artifact.save(self, path)
            return
        with open(path, "w") as handle:
            handle.write(self.dumps())

    @classmethod
    def load(cls, path):
        if path.endswith(".artcb"):
            from repro.artc import artifact

            return artifact.load(path)
        with open(path) as handle:
            return cls.loads(handle.read())

    def to_trace(self):
        """Recover the underlying trace (e.g. for re-compilation)."""
        return Trace(
            [action.record for action in self.actions],
            platform=self.platform,
            label=self.label,
        )

    def __repr__(self):
        return "<CompiledBenchmark %s: %d actions, %d edges>" % (
            self.label or "?",
            len(self.actions),
            self.graph.n_edges,
        )
