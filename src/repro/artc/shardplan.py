"""Shard plans: partitioning a compiled benchmark across processes.

The sharded replay core (:mod:`repro.artc.shardcore`) runs one forked
worker per shard, each with its own scoreboard inner loop over a
private copy-on-write fs-simulation replica.  For that to reproduce
the single-process replay, the partition must respect two invariants:

1. **Resource atomicity.**  Every action series of one resource (file,
   path generation, descriptor, aiocb) stays inside one shard: a
   resource's state lives in exactly one worker's replica, so every
   materialized dependency edge is intra-shard and every worker's view
   of the data it touches is complete.  The unit of placement is
   therefore a *weak component* of the resource-sharing relation
   (:func:`repro.core.analysis.weak_components`) -- series that share
   an action transitively share a component.

2. **Thread sequencing across shards.**  Threads may span shards (a
   thread's actions follow its resources).  The only cross-shard
   ordering the runner must enforce is thread sequencing between
   *consecutive* actions of one thread that land in different shards;
   transitivity covers the rest.  Each such pair has exactly one
   producer, which is what lets the runner use lock-free single-writer
   completion flags in shared memory.

The partitioner minimizes those cross-shard transitions: components
are greedily assigned to the shard holding the most transition-adjacent
already-placed work (subject to a load cap), then improved by local
move sweeps -- a lightweight greedy min-cut over the reduced graph's
component/transition structure.

Traces that mutate global replay state shared by all threads (the
process cwd, via chdir/fchdir) cannot be split: each worker replica
would see a different cwd.  Such traces fall back to one shard, with
the reason recorded in the plan stats.
"""

import math

from repro.core.analysis import weak_components
from repro.core.resources import AIOCB, FD, FILE, PATH

#: Syscalls that mutate process-global replay state (the shared cwd);
#: a trace containing any of these is never split across shards.
CWD_MUTATORS = frozenset(("chdir", "fchdir"))

#: Greedy-assignment load headroom over the perfectly balanced shard.
_CAP_SLACK = 1.10

#: Local-improvement sweeps after the greedy pass.
_REFINE_SWEEPS = 6


class ShardPlan(object):
    """One partition of a compiled benchmark into ``n_shards`` shards.

    - ``shard_actions[s]`` -- ascending action indices of shard ``s``
      (the explicit per-shard sub-plans; together an exact partition
      of the action set);
    - ``assign[idx]`` -- the shard of action ``idx`` (derived view);
    - ``cross_edges`` -- ``(producer_idx, consumer_idx)`` pairs, one
      per thread-sequencing transition that crosses shards, sorted by
      consumer; each pair is backed by exactly one completion flag at
      run time;
    - ``stats`` -- ``shards``, ``cross_edges``, ``cut_fraction``,
      ``actions_per_shard``, ``components``, plus ``fallback`` when
      the partitioner clamped to one shard.
    """

    __slots__ = ("n_shards", "shard_actions", "assign", "cross_edges", "stats")

    def __init__(self, n_shards, shard_actions, cross_edges, stats):
        self.n_shards = n_shards
        self.shard_actions = [list(acts) for acts in shard_actions]
        self.cross_edges = [tuple(edge) for edge in cross_edges]
        self.stats = dict(stats)
        # Sized by the largest index so even malformed plans (validated
        # separately by check_plan) can be represented; -1 = unassigned.
        n = 1 + max(
            (idx for acts in self.shard_actions for idx in acts), default=-1
        )
        self.assign = [-1] * n
        for shard, acts in enumerate(self.shard_actions):
            for idx in acts:
                self.assign[idx] = shard

    @property
    def n_workers(self):
        """Shards that actually hold work (forked at run time)."""
        return sum(1 for acts in self.shard_actions if acts)

    def to_payload(self):
        return {
            "format": "artc-shardplan-v1",
            "n_shards": self.n_shards,
            "shard_actions": [list(acts) for acts in self.shard_actions],
            "cross_edges": [list(edge) for edge in self.cross_edges],
            "stats": dict(self.stats),
        }

    @classmethod
    def from_payload(cls, payload):
        if payload.get("format") != "artc-shardplan-v1":
            raise ValueError("not an ARTC shard plan (bad header)")
        return cls(
            payload["n_shards"],
            payload["shard_actions"],
            [tuple(edge) for edge in payload["cross_edges"]],
            payload.get("stats", {}),
        )

    def __repr__(self):
        return "<ShardPlan %d shards, %d cross edges>" % (
            self.n_shards,
            len(self.cross_edges),
        )


def _touch_keys(benchmark):
    """Per-action resource keys (file/path/fd/aiocb touches only --
    thread sequencing is handled separately).  Benchmarks loaded from
    artifacts carry no touches; those are re-derived by re-running the
    symbolic model over the recovered trace, the same interpretation
    the compiler ran."""
    actions = benchmark.actions
    if any(action.touches for action in actions):
        source = actions
    else:
        from repro.core.model import TraceModel

        source = TraceModel(benchmark.to_trace(), benchmark.snapshot).actions
    kinds = (FILE, PATH, FD, AIOCB)
    return [
        [touch.key for touch in action.touches if touch.kind in kinds]
        for action in source
    ]


def _components(benchmark, touch_keys=None):
    """Component label per action (smallest member index): the
    transitive closure of resource sharing, plus every materialized
    graph edge and the file-size annotation edges as a safety net."""
    n = len(benchmark.actions)
    if touch_keys is None:
        touch_keys = _touch_keys(benchmark)
    series = {}
    for idx, keys in enumerate(touch_keys):
        for key in keys:
            series.setdefault(key, []).append(idx)

    def groups():
        for members in series.values():
            if len(members) > 1:
                yield members
        for edge in benchmark.graph.edge_kinds:
            yield edge
        for idx, action in enumerate(benchmark.actions):
            for ann_key in ("size_dep", "size_chain"):
                dep = action.ann.get(ann_key)
                if dep is not None:
                    yield (dep, idx)

    return weak_components(n, groups())


def _thread_order(benchmark):
    """Action indices per thread, in trace order (insertion-ordered)."""
    order = {}
    for action in benchmark.actions:
        order.setdefault(action.record.tid, []).append(action.idx)
    return order


def _cross_edges_for(assign, thread_order):
    """The thread-seq transitions crossing shards under ``assign``:
    one ``(producer, consumer)`` per consecutive same-thread pair in
    different shards, sorted by consumer index."""
    cross = []
    for acts in thread_order.values():
        for prev, idx in zip(acts, acts[1:]):
            if assign[prev] != assign[idx]:
                cross.append((prev, idx))
    cross.sort(key=lambda edge: edge[1])
    return cross


def _single_shard(benchmark, fallback=None):
    n = len(benchmark.actions)
    stats = {
        "shards": 1,
        "cross_edges": 0,
        "cut_fraction": 0.0,
        "actions_per_shard": [n],
        "components": None,
    }
    if fallback:
        stats["fallback"] = fallback
    return ShardPlan(1, [list(range(n))], [], stats)


def build_shard_plan(benchmark, jobs):
    """Partition ``benchmark`` into at most ``jobs`` shards.

    Deterministic for a given (benchmark, jobs).  Returns a
    :class:`ShardPlan`; plans that cannot be split (one job, empty
    trace, cwd-mutating trace) come back as a single shard with the
    reason in ``stats["fallback"]``.
    """
    n = len(benchmark.actions)
    jobs = max(1, int(jobs))
    if jobs == 1 or n == 0:
        return _single_shard(benchmark)
    cwd_hits = [
        action.record.name
        for action in benchmark.actions
        if action.record.name in CWD_MUTATORS
    ]
    if cwd_hits:
        return _single_shard(
            benchmark,
            fallback="trace mutates the process-global cwd (%s)"
            % ", ".join(sorted(set(cwd_hits))),
        )
    labels = _components(benchmark)
    thread_order = _thread_order(benchmark)

    comp_members = {}
    for idx, label in enumerate(labels):
        comp_members.setdefault(label, []).append(idx)

    # Transition multigraph between components: consecutive same-thread
    # actions in different components contribute one unit of potential
    # cut weight to that component pair.
    weight = {}
    for acts in thread_order.values():
        for prev, idx in zip(acts, acts[1:]):
            a, b = labels[prev], labels[idx]
            if a == b:
                continue
            if a > b:
                a, b = b, a
            weight[(a, b)] = weight.get((a, b), 0) + 1
    neighbors = {}
    for (a, b), w in weight.items():
        neighbors.setdefault(a, {})[b] = w
        neighbors.setdefault(b, {})[a] = w

    # Greedy placement: big components first, each to the shard with
    # the highest transition affinity among shards with headroom.
    order = sorted(comp_members, key=lambda c: (-len(comp_members[c]), c))
    cap = max(
        int(math.ceil(n * _CAP_SLACK / jobs)),
        max(len(m) for m in comp_members.values()),
    )
    load = [0] * jobs
    shard_of = {}

    def affinity(comp, shard):
        total = 0
        for other, w in neighbors.get(comp, {}).items():
            if shard_of.get(other) == shard:
                total += w
        return total

    for comp in order:
        size = len(comp_members[comp])
        best, best_key = 0, None
        for shard in range(jobs):
            if load[shard] + size > cap and load[shard] > 0:
                continue
            key = (affinity(comp, shard), -load[shard])
            if best_key is None or key > best_key:
                best, best_key = shard, key
        shard_of[comp] = best
        load[best] += size

    # Local refinement: move components toward their transition
    # neighbors while the load cap holds; stop at a fixed sweep budget
    # or the first sweep with no improving move.
    for _sweep in range(_REFINE_SWEEPS):
        moved = False
        for comp in order:
            current = shard_of[comp]
            size = len(comp_members[comp])
            here = affinity(comp, current)
            best_gain, best_shard = 0, current
            for shard in range(jobs):
                if shard == current or load[shard] + size > cap:
                    continue
                gain = affinity(comp, shard) - here
                if gain > best_gain:
                    best_gain, best_shard = gain, shard
            if best_shard != current:
                shard_of[comp] = best_shard
                load[current] -= size
                load[best_shard] += size
                moved = True
        if not moved:
            break

    assign = [shard_of[label] for label in labels]
    cross = _cross_edges_for(assign, thread_order)
    shard_actions = [[] for _ in range(jobs)]
    for idx, shard in enumerate(assign):
        shard_actions[shard].append(idx)
    transitions = n - len(thread_order)
    stats = {
        # Workers that will actually fork: requested shards minus any
        # a coarse component structure left empty.
        "shards": sum(1 for acts in shard_actions if acts),
        "cross_edges": len(cross),
        "cut_fraction": (len(cross) / transitions) if transitions else 0.0,
        "actions_per_shard": [len(acts) for acts in shard_actions],
        "components": len(comp_members),
        "largest_component": max(len(m) for m in comp_members.values()),
    }
    return ShardPlan(jobs, shard_actions, cross, stats)


def plan_for(benchmark, jobs):
    """The cached shard plan for ``(benchmark, jobs)``; plans are pure
    functions of the compiled benchmark, so repeat replays of one
    loaded artifact partition once."""
    cache = getattr(benchmark, "_shard_plans", None)
    if cache is None:
        cache = benchmark._shard_plans = {}
    jobs = max(1, int(jobs))
    plan = cache.get(jobs)
    if plan is None:
        plan = cache[jobs] = build_shard_plan(benchmark, jobs)
    return plan


def check_plan(benchmark, plan):
    """Validate ``plan`` against ``benchmark``; returns a list of
    human-readable problems (empty means certified).

    Checks the contract the runner relies on: the shard sub-plans
    partition the action set exactly (no dropped, duplicated, or
    out-of-range actions; per-shard order preserved), no resource
    component is split across shards, every cross-shard thread
    transition is covered by exactly one completion flag (and no flag
    covers a non-edge), and multi-shard plans never carry a
    cwd-mutating trace.
    """
    problems = []
    n = len(benchmark.actions)
    if plan.n_shards < 1:
        return ["plan has %d shards" % plan.n_shards]
    if len(plan.shard_actions) != plan.n_shards:
        return [
            "plan declares %d shards but carries %d sub-plans"
            % (plan.n_shards, len(plan.shard_actions))
        ]
    seen = {}
    for shard, acts in enumerate(plan.shard_actions):
        previous = -1
        for idx in acts:
            if not (0 <= idx < n):
                problems.append(
                    "shard %d references out-of-range action %d" % (shard, idx)
                )
                continue
            if idx in seen:
                problems.append(
                    "action %d assigned to shards %d and %d (duplicate)"
                    % (idx, seen[idx], shard)
                )
            else:
                seen[idx] = shard
            if idx <= previous:
                problems.append(
                    "shard %d breaks trace order at action %d" % (shard, idx)
                )
            previous = idx
    missing = n - len(seen)
    if missing:
        for idx in range(n):
            if idx not in seen:
                problems.append("action %d is assigned to no shard" % idx)
                break
        if missing > 1:
            problems.append(
                "%d actions are assigned to no shard in total" % missing
            )
    if problems:
        return problems

    multi = plan.n_workers > 1
    if multi:
        cwd_hits = sorted(
            {
                action.record.name
                for action in benchmark.actions
                if action.record.name in CWD_MUTATORS
            }
        )
        if cwd_hits:
            problems.append(
                "multi-shard plan over a cwd-mutating trace (%s); such "
                "traces must replay in one shard" % ", ".join(cwd_hits)
            )
        labels = _components(benchmark)
        comp_shard = {}
        for idx, label in enumerate(labels):
            shard = seen[idx]
            first = comp_shard.setdefault(label, (shard, idx))
            if first[0] != shard:
                problems.append(
                    "resource component split across shards: actions %d "
                    "(shard %d) and %d (shard %d) share resources"
                    % (first[1], first[0], idx, shard)
                )
                break

    assign = [seen[idx] for idx in range(n)]
    required = set(_cross_edges_for(assign, _thread_order(benchmark)))
    declared = [tuple(edge) for edge in plan.cross_edges]
    declared_set = set(declared)
    if len(declared) != len(declared_set):
        problems.append("duplicate completion flags in plan")
    consumers = [edge[1] for edge in declared]
    if len(consumers) != len(set(consumers)):
        problems.append(
            "a consumer action is covered by more than one completion flag"
        )
    for edge in sorted(required - declared_set):
        problems.append(
            "cross-shard thread transition %d -> %d has no completion flag"
            % edge
        )
    for edge in sorted(declared_set - required):
        problems.append(
            "completion flag %d -> %d covers no cross-shard transition" % edge
        )
    return problems
