"""The iBench dtrace trace format.

ARTC's second input format is "a special dtrace-generated format used
by the iBench traces" (section 4.3.1).  We model it as the tab-separated
layout iBench's dtrace scripts produce: one line per call with entry
timestamp (microseconds), elapsed microseconds, thread id, call name,
the raw argument list, and the return value/errno::

    1380000000123456\t85\t0x70000abc\topen\t"/Library/x.plist", 0x0, 0x1B6\t3
    1380000000123999\t12\t0x70000abc\tread\t0x3, 0x7fff5fbff000, 0x1000\t4096
    1380000000124500\t9\t0x70000def\tstat64\t"/missing"\t-1 ENOENT

Buffer pointers are parsed and discarded (ARTC ignores them); sizes and
descriptors are kept.  The normalized records are the same as those of
the other formats, so iBench-style traces feed the same compiler.
"""

from repro.errors import TraceParseError
from repro.syscalls.registry import spec_for
from repro.tracing.trace import Trace, TraceRecord

#: Argument layouts (by kind) in the raw dtrace argument order.
#: ``None`` marks a position to discard (e.g. a buffer pointer).
_RAW_LAYOUT = {
    "open": ["path", "flags", "mode"],
    "creat": ["path", "mode"],
    "close": ["fd"],
    "read": ["fd", None, "nbytes"],
    "write": ["fd", None, "nbytes"],
    "pread": ["fd", None, "nbytes", "offset"],
    "pwrite": ["fd", None, "nbytes", "offset"],
    "lseek": ["fd", "offset", "whence"],
    "fsync": ["fd"],
    "fdatasync": ["fd"],
    "stat": ["path"],
    "lstat": ["path"],
    "fstat": ["fd"],
    "stat_extended": ["path"],
    "lstat_extended": ["path"],
    "fstat_extended": ["fd"],
    "access": ["path", "mode"],
    "getattrlist": ["path"],
    "setattrlist": ["path"],
    "fgetattrlist": ["fd"],
    "fsetattrlist": ["fd"],
    "getattrlistbulk": ["fd"],
    "getdirentriesattr": ["fd"],
    "getdents": ["fd"],
    "exchangedata": ["path1", "path2"],
    "mkdir": ["path", "mode"],
    "rmdir": ["path"],
    "unlink": ["path"],
    "rename": ["old", "new"],
    "link": ["target", "path"],
    "symlink": ["target", "path"],
    "readlink": ["path"],
    "truncate": ["path", "length"],
    "ftruncate": ["fd", "length"],
    "chmod": ["path", "mode"],
    "fchmod": ["fd", "mode"],
    "chown": ["path"],
    "fchown": ["fd"],
    "utimes": ["path"],
    "futimes": ["fd"],
    "dup": ["fd"],
    "dup2": ["fd", "newfd"],
    "fcntl": ["fd", "cmd", "arg"],
    "flock": ["fd", "op"],
    "statfs": ["path"],
    "fstatfs": ["fd"],
    "statfs_global": [],
    "mmap": [None, "length", None, None, "fd", "offset"],
    "munmap": ["addr", "length"],
    "msync": ["addr", "length"],
    "chdir": ["path"],
    "fchdir": ["fd"],
    "getcwd": [],
    "sync": [],
    "pipe": [],
    "shm_open": ["name", "flags", "mode"],
    "shm_unlink": ["name"],
    "getxattr": ["path", "xname"],
    "lgetxattr": ["path", "xname"],
    "fgetxattr": ["fd", "xname"],
    "setxattr": ["path", "xname", "size"],
    "lsetxattr": ["path", "xname", "size"],
    "fsetxattr": ["fd", "xname", "size"],
    "listxattr": ["path"],
    "llistxattr": ["path"],
    "flistxattr": ["fd"],
    "removexattr": ["path", "xname"],
    "lremovexattr": ["path", "xname"],
    "fremovexattr": ["fd", "xname"],
    "fadvise": ["fd", "offset", "length"],
    "fallocate": ["fd", "offset", "length"],
}

_FLAG_ARGS = frozenset(["flags"])


def _split_raw_args(text):
    parts = []
    depth = 0
    in_string = False
    escaped = False
    current = []
    for char in text:
        if in_string:
            current.append(char)
            if escaped:
                escaped = False
            elif char == "\\":
                escaped = True
            elif char == '"':
                in_string = False
            continue
        if char == '"':
            in_string = True
            current.append(char)
        elif char in "([{":
            depth += 1
            current.append(char)
        elif char in ")]}":
            depth -= 1
            current.append(char)
        elif char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _value(token, arg_name):
    if token.startswith('"'):
        return token[1:-1].replace('\\"', '"')
    if arg_name in _FLAG_ARGS:
        if token.startswith("0x") or token.isdigit():
            return _flags_text(int(token, 0))
        return token
    try:
        return int(token, 0)  # handles 0x..., 0o-style octal via int(,0)
    except ValueError:
        return token


def _flags_text(value):
    from repro.vfs.flags import format_flags

    return format_flags(value)


def loads(text, label=""):
    """Parse iBench dtrace text into a :class:`Trace` (Darwin platform)."""
    records = []
    for line_number, line in enumerate(text.splitlines(), 1):
        line = line.rstrip("\n")
        if not line.strip() or line.lstrip().startswith("#"):
            continue
        fields = line.split("\t")
        if len(fields) != 6:
            raise TraceParseError(
                "expected 6 tab-separated fields, got %d" % len(fields),
                line_number,
                line,
            )
        ts_text, elapsed_text, tid_text, name, raw_args, ret_text = fields
        spec = spec_for(name)  # raises UnsupportedSyscallError when unknown
        layout = _RAW_LAYOUT.get(spec.kind)
        args = {}
        if layout:
            for arg_name, token in zip(layout, _split_raw_args(raw_args)):
                if arg_name is None:
                    continue
                args[arg_name] = _value(token, arg_name)
        ret_parts = ret_text.strip().split()
        err = None
        if len(ret_parts) >= 2 and ret_parts[1].isupper():
            err = ret_parts[1]
        try:
            ret = int(ret_parts[0], 0) if ret_parts else 0
        except ValueError:
            ret = ret_parts[0]
        t_enter = int(ts_text) / 1e6
        duration = int(elapsed_text) / 1e6
        records.append(
            TraceRecord(
                len(records),
                tid_text if not tid_text.isdigit() else int(tid_text),
                name,
                args,
                ret,
                err,
                t_enter,
                t_enter + duration,
            )
        )
    return Trace(records, platform="darwin", label=label)


def dumps(trace):
    """Emit a trace in the iBench dtrace layout."""
    lines = []
    for record in trace.records:
        spec = spec_for(record.name)
        layout = _RAW_LAYOUT.get(spec.kind, [])
        raw = []
        for arg_name in layout:
            if arg_name is None:
                raw.append("0x0")
            elif arg_name in record.args:
                value = record.args[arg_name]
                if isinstance(value, str) and arg_name not in _FLAG_ARGS:
                    raw.append('"%s"' % value.replace('"', '\\"'))
                else:
                    raw.append(str(value))
        if record.ok:
            ret_text = str(record.ret if isinstance(record.ret, int) else 0)
        else:
            ret_text = "-1 %s" % record.err
        lines.append(
            "\t".join(
                [
                    str(int(record.t_enter * 1e6)),
                    str(int(record.duration * 1e6)),
                    str(record.tid),
                    record.name,
                    ", ".join(raw),
                    ret_text,
                ]
            )
        )
    return "\n".join(lines) + "\n"


def load(path, label=""):
    with open(path) as handle:
        return loads(handle.read(), label=label)


def save(trace, path):
    with open(path, "w") as handle:
        handle.write(dumps(trace))
