"""An strace-compatible text format.

Emits and parses lines in the style of ``strace -f -ttt -T``::

    1001 5.002419 open("/a/b/c", O_RDWR|O_CREAT, 0644) = 3 <0.000210>
    1002 5.002933 read(4, 4096) = 4096 <0.004001>
    1001 5.010022 stat("/a/gone") = -1 ENOENT <0.000005>

Arguments are rendered positionally following each call's registry
spec, so the format round-trips through :func:`dumps`/:func:`loads`.
Buffer pointers are omitted (ARTC ignores them too); ``read``'s second
argument is the byte count.
"""

import json

from repro.errors import TraceParseError, UnsupportedSyscallError
from repro.syscalls.registry import spec_for
from repro.tracing.trace import ParseWarnings, Trace, TraceRecord

_STRING_ARGS = frozenset(
    ["path", "old", "new", "target", "name", "xname", "path1", "path2", "aiocb"]
)
_SYMBOL_ARGS = frozenset(["cmd", "advice", "flags", "whence"])


def _render_value(name, value):
    if value is None:
        return "NULL"
    if name in _STRING_ARGS and isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, str):
        return value
    if isinstance(value, (list, tuple, dict)):
        return json.dumps(value, separators=(",", ":"))
    return str(value)


def _render_args(record):
    spec = spec_for(record.name)
    parts = []
    for arg_name in spec.args:
        if arg_name not in record.args:
            break
        parts.append(_render_value(arg_name, record.args[arg_name]))
    return ", ".join(parts)


def dumps(trace):
    roster = trace.thread_roster if trace.thread_roster is not None else trace.threads
    lines = [
        "# repro-strace-v1 platform=%s label=%s threads=%s"
        % (trace.platform, trace.label, json.dumps(roster, separators=(",", ":")))
    ]
    for record in trace.records:
        ret = json.dumps(record.ret, separators=(",", ":")) if record.ok else "-1"
        err = "" if record.ok else " %s" % record.err
        lines.append(
            "%s %.6f %s(%s) = %s%s <%.6f>"
            % (
                record.tid,
                record.t_enter,
                record.name,
                _render_args(record),
                ret,
                err,
                record.duration,
            )
        )
    return "\n".join(lines) + "\n"


def _split_args(text):
    """Split an argument list on top-level commas, honoring quotes and
    brackets."""
    parts = []
    depth = 0
    in_string = False
    escaped = False
    current = []
    for char in text:
        if in_string:
            current.append(char)
            if escaped:
                escaped = False
            elif char == "\\":
                escaped = True
            elif char == '"':
                in_string = False
            continue
        if char == '"':
            in_string = True
            current.append(char)
        elif char in "[{(":
            depth += 1
            current.append(char)
        elif char in ")}]":
            depth -= 1
            current.append(char)
        elif char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _parse_value(name, token):
    if token == "NULL":
        return None
    if token.startswith('"') or token.startswith("[") or token.startswith("{"):
        return json.loads(token)
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token  # symbolic: flags, fcntl command, errno...


def _scan_call(text, line_number, line):
    """Split ``name(args) = ret [ERR] <dur>`` into its pieces."""
    open_paren = text.find("(")
    if open_paren < 0:
        raise TraceParseError("missing '(' in call", line_number, line)
    name = text[:open_paren]
    depth = 0
    in_string = False
    escaped = False
    for index in range(open_paren, len(text)):
        char = text[index]
        if in_string:
            if escaped:
                escaped = False
            elif char == "\\":
                escaped = True
            elif char == '"':
                in_string = False
            continue
        if char == '"':
            in_string = True
        elif char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth == 0:
                return name, text[open_paren + 1 : index], text[index + 1 :]
    raise TraceParseError("unbalanced parentheses", line_number, line)


def parse_header_line(line, into):
    """Apply one ``#`` header line's tokens to the dict ``into``
    (keys: platform, label, thread_roster)."""
    for token in line[1:].split():
        if token.startswith("platform="):
            into["platform"] = token.split("=", 1)[1]
        elif token.startswith("label="):
            into["label"] = token.split("=", 1)[1]
        elif token.startswith("threads="):
            try:
                into["thread_roster"] = list(json.loads(token.split("=", 1)[1]))
            except ValueError:
                pass  # an unreadable roster only disables pipelining


def _parse_body(line, idx):
    """Parse one record line (no location info -- the caller attaches
    line number and byte offset).  Raises TraceParseError on malformed
    structure, UnsupportedSyscallError on unknown calls."""
    try:
        tid_text, ts_text, rest = line.split(None, 2)
    except ValueError:
        raise TraceParseError("too few fields", line=line) from None
    name, args_text, tail = _scan_call(rest, None, line)
    tail = tail.strip()
    if not tail.startswith("="):
        raise TraceParseError("missing '=' result", line=line)
    tail = tail[1:].strip()
    if not tail.endswith(">"):
        raise TraceParseError("missing <duration>", line=line)
    body, _, dur_text = tail.rpartition("<")
    try:
        duration = float(dur_text[:-1])
    except ValueError:
        raise TraceParseError(
            "bad duration %r" % dur_text[:-1], line=line
        ) from None
    body = body.strip()
    pieces = body.split()
    err = None
    if len(pieces) >= 2 and pieces[-1].isupper():
        err = pieces[-1]
        ret_text = " ".join(pieces[:-1])
    else:
        ret_text = body
    try:
        ret = _parse_value("ret", ret_text)
    except ValueError:
        raise TraceParseError("bad return value %r" % ret_text, line=line) from None
    spec = spec_for(name)
    args = {}
    try:
        for arg_name, token in zip(spec.args, _split_args(args_text)):
            args[arg_name] = _parse_value(arg_name, token)
    except ValueError:
        raise TraceParseError("bad argument list %r" % args_text, line=line) from None
    tid = int(tid_text) if tid_text.isdigit() else tid_text
    try:
        t_enter = float(ts_text)
    except ValueError:
        raise TraceParseError("bad timestamp %r" % ts_text, line=line) from None
    return TraceRecord(idx, tid, name, args, ret, err, t_enter, t_enter + duration)


def parse_line(line, fallback_idx):
    """Tolerant single-line parse: ``(TraceRecord, None)`` on success,
    ``(None, failure_kind)`` on garbage.  Shared by the tolerant batch
    loader and the streaming tailer."""
    try:
        return _parse_body(line, fallback_idx), None
    except UnsupportedSyscallError:
        return None, "unsupported-call"
    except TraceParseError:
        return None, "bad-line"


def loads(text, tolerant=False, warnings=None):
    """Parse strace-format text.

    Strict mode (the default) raises a single actionable
    :class:`~repro.errors.TraceError` with line number and byte offset
    on the first malformed line; tolerant mode skips garbage with one
    deduped :class:`~repro.tracing.trace.ParseWarnings` entry per kind.
    """
    if tolerant and warnings is None:
        warnings = ParseWarnings()
    head = {"platform": "linux", "label": "", "thread_roster": None}
    records = []
    offset = 0
    for line_number, raw in enumerate(text.splitlines(True), 1):
        line = raw.strip()
        line_offset = offset
        offset += len(raw.encode("utf-8")) if isinstance(raw, str) else len(raw)
        if not line:
            continue
        if line.startswith("#"):
            parse_header_line(line, head)
            continue
        if tolerant:
            record, kind = parse_line(line, len(records))
            if record is None:
                warnings.warn(kind, line_number, line_offset, line[:120])
                continue
            records.append(record)
            continue
        try:
            records.append(_parse_body(line, len(records)))
        except UnsupportedSyscallError:
            raise
        except TraceParseError as exc:
            raise TraceParseError(
                str(exc), line_number, line, line_offset
            ) from None
    return Trace(
        records,
        platform=head["platform"],
        label=head["label"],
        thread_roster=head["thread_roster"],
    )


def save(trace, path):
    with open(path, "w") as handle:
        handle.write(dumps(trace))


def load(path):
    with open(path) as handle:
        return loads(handle.read())
