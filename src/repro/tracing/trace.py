"""The trace model: a totally-ordered list of system-call records.

Matches the paper's required fields (section 4.3.1): entry/return
timestamps, numeric thread ID, call type, parameters, return value.
Failed calls carry a symbolic errno.  Traces serialize to JSON-lines.
"""

import json


class TraceRecord(object):
    """One system call as observed during tracing."""

    __slots__ = ("idx", "tid", "name", "args", "ret", "err", "t_enter", "t_return")

    def __init__(self, idx, tid, name, args, ret, err, t_enter, t_return):
        self.idx = idx
        self.tid = tid
        self.name = name
        self.args = args
        self.ret = ret
        self.err = err
        self.t_enter = t_enter
        self.t_return = t_return

    @property
    def ok(self):
        return self.err is None

    @property
    def duration(self):
        return self.t_return - self.t_enter

    def to_dict(self):
        return {
            "idx": self.idx,
            "tid": self.tid,
            "name": self.name,
            "args": self.args,
            "ret": self.ret,
            "err": self.err,
            "t_enter": self.t_enter,
            "t_return": self.t_return,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            data["idx"],
            data["tid"],
            data["name"],
            data.get("args", {}),
            data.get("ret"),
            data.get("err"),
            data["t_enter"],
            data["t_return"],
        )

    def __repr__(self):
        status = "=%r" % (self.ret,) if self.ok else "=-1 %s" % self.err
        return "<#%d [T%s] %s%s>" % (self.idx, self.tid, self.name, status)


class Trace(object):
    """An ordered collection of records plus source metadata."""

    def __init__(self, records=None, platform="linux", label=""):
        self.records = list(records or [])
        self.platform = platform
        self.label = label

    def append(self, record):
        self.records.append(record)

    def __len__(self):
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, index):
        return self.records[index]

    @property
    def threads(self):
        """Thread IDs in order of first appearance."""
        seen = []
        known = set()
        for record in self.records:
            if record.tid not in known:
                known.add(record.tid)
                seen.append(record.tid)
        return seen

    @property
    def duration(self):
        if not self.records:
            return 0.0
        start = min(r.t_enter for r in self.records)
        end = max(r.t_return for r in self.records)
        return end - start

    def by_thread(self):
        out = {}
        for record in self.records:
            out.setdefault(record.tid, []).append(record)
        return out

    def renumber(self):
        """Re-assign contiguous indices (after filtering records)."""
        for index, record in enumerate(self.records):
            record.idx = index

    def sort_by_issue(self):
        """Order records by entry timestamp.

        Tracers (like strace) emit a record when the call *returns*, so
        overlapping calls appear in completion order; the ROOT model
        wants the issue order (within a thread the two coincide, since
        system calls are synchronous).
        """
        self.records.sort(key=lambda record: (record.t_enter, record.idx))
        self.renumber()

    # -- serialization -------------------------------------------------

    def dumps(self):
        header = json.dumps(
            {"format": "repro-trace-v1", "platform": self.platform, "label": self.label}
        )
        lines = [header]
        lines.extend(json.dumps(r.to_dict()) for r in self.records)
        return "\n".join(lines) + "\n"

    @classmethod
    def loads(cls, text):
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            return cls()
        header = json.loads(lines[0])
        if header.get("format") != "repro-trace-v1":
            raise ValueError("not a repro trace (bad header)")
        records = [TraceRecord.from_dict(json.loads(line)) for line in lines[1:]]
        return cls(records, header.get("platform", "linux"), header.get("label", ""))

    def save(self, path):
        with open(path, "w") as handle:
            handle.write(self.dumps())

    @classmethod
    def load(cls, path):
        with open(path) as handle:
            return cls.loads(handle.read())

    def __repr__(self):
        return "<Trace %s: %d records, %d threads, %.3fs>" % (
            self.label or "?",
            len(self.records),
            len(self.threads),
            self.duration,
        )
