"""The trace model: a totally-ordered list of system-call records.

Matches the paper's required fields (section 4.3.1): entry/return
timestamps, numeric thread ID, call type, parameters, return value.
Failed calls carry a symbolic errno.  Traces serialize to JSON-lines.

Parsing comes in two strictnesses, shared by the batch loaders here
and the streaming tailer (:mod:`repro.stream.tail`):

- strict (the default): any malformed mid-file line raises a single
  actionable :class:`~repro.errors.TraceError` carrying the line
  number and byte offset;
- tolerant (``tolerant=True``): malformed lines are skipped with one
  deduplicated :class:`ParseWarnings` entry per failure kind, and
  records are renumbered sequentially so downstream consumers always
  see contiguous indices.  This is how a live tail survives torn
  writes and producer garbage without crashing.
"""

import json

from repro.errors import TraceError


class ParseWarnings(object):
    """Deduplicated skippable-garbage warnings from tolerant parsing.

    One entry per failure *kind* (``bad-json``, ``bad-record``,
    ``torn-tail``, ``unsupported-call``, ...): the first occurrence
    keeps its location and detail, repeats only bump the count.  Both
    the batch loaders (``tolerant=True``) and the streaming tailer
    feed the same sink, so diagnostics look identical either way.
    """

    def __init__(self):
        self.counts = {}
        self.first = {}

    def warn(self, kind, line_number=None, byte_offset=None, detail=""):
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if kind not in self.first:
            self.first[kind] = {
                "line": line_number,
                "byte_offset": byte_offset,
                "detail": detail,
            }

    @property
    def total(self):
        return sum(self.counts.values())

    def to_dict(self):
        return {
            kind: dict(self.first[kind], count=count)
            for kind, count in sorted(self.counts.items())
        }

    def merge(self, other):
        for kind, count in other.counts.items():
            self.counts[kind] = self.counts.get(kind, 0) + count
            self.first.setdefault(kind, other.first[kind])

    def render(self):
        lines = []
        for kind, count in sorted(self.counts.items()):
            first = self.first[kind]
            where = ""
            if first["line"] is not None:
                where = " (first at line %s, byte %s)" % (
                    first["line"], first["byte_offset"],
                )
            detail = (": %s" % first["detail"]) if first["detail"] else ""
            lines.append("%s x%d%s%s" % (kind, count, where, detail))
        return "\n".join(lines)

    def __len__(self):
        return len(self.counts)

    def __repr__(self):
        return "<ParseWarnings %d kinds, %d total>" % (
            len(self.counts), self.total,
        )


class TraceRecord(object):
    """One system call as observed during tracing."""

    __slots__ = ("idx", "tid", "name", "args", "ret", "err", "t_enter", "t_return")

    def __init__(self, idx, tid, name, args, ret, err, t_enter, t_return):
        self.idx = idx
        self.tid = tid
        self.name = name
        self.args = args
        self.ret = ret
        self.err = err
        self.t_enter = t_enter
        self.t_return = t_return

    @property
    def ok(self):
        return self.err is None

    @property
    def duration(self):
        return self.t_return - self.t_enter

    def to_dict(self):
        return {
            "idx": self.idx,
            "tid": self.tid,
            "name": self.name,
            "args": self.args,
            "ret": self.ret,
            "err": self.err,
            "t_enter": self.t_enter,
            "t_return": self.t_return,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            data["idx"],
            data["tid"],
            data["name"],
            data.get("args", {}),
            data.get("ret"),
            data.get("err"),
            data["t_enter"],
            data["t_return"],
        )

    def __repr__(self):
        status = "=%r" % (self.ret,) if self.ok else "=-1 %s" % self.err
        return "<#%d [T%s] %s%s>" % (self.idx, self.tid, self.name, status)


def parse_record_line(line, fallback_idx):
    """Parse one JSON-lines record: ``(TraceRecord, None)`` on
    success, ``(None, failure_kind)`` on garbage.  Shared by the batch
    loader and the streaming tailer so both classify failures (and
    therefore warn) identically."""
    try:
        data = json.loads(line)
    except ValueError:
        return None, "bad-json"
    if not isinstance(data, dict):
        return None, "bad-record"
    try:
        record = TraceRecord.from_dict(data)
    except (KeyError, TypeError):
        return None, "bad-record"
    if not isinstance(record.idx, int):
        record.idx = fallback_idx
    return record, None


class Trace(object):
    """An ordered collection of records plus source metadata."""

    def __init__(self, records=None, platform="linux", label="", thread_roster=None):
        self.records = list(records or [])
        self.platform = platform
        self.label = label
        # Optional declared thread roster (first-appearance order).  A
        # streaming consumer needs the full thread set *before* the
        # trace ends to spawn every replay thread at t=0 exactly like a
        # batch replay; headers written by :meth:`dumps` carry it.
        self.thread_roster = list(thread_roster) if thread_roster else None

    def append(self, record):
        self.records.append(record)

    def __len__(self):
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, index):
        return self.records[index]

    @property
    def threads(self):
        """Thread IDs in order of first appearance."""
        seen = []
        known = set()
        for record in self.records:
            if record.tid not in known:
                known.add(record.tid)
                seen.append(record.tid)
        return seen

    @property
    def duration(self):
        if not self.records:
            return 0.0
        start = min(r.t_enter for r in self.records)
        end = max(r.t_return for r in self.records)
        return end - start

    def by_thread(self):
        out = {}
        for record in self.records:
            out.setdefault(record.tid, []).append(record)
        return out

    def renumber(self):
        """Re-assign contiguous indices (after filtering records)."""
        for index, record in enumerate(self.records):
            record.idx = index

    def sort_by_issue(self):
        """Order records by entry timestamp.

        Tracers (like strace) emit a record when the call *returns*, so
        overlapping calls appear in completion order; the ROOT model
        wants the issue order (within a thread the two coincide, since
        system calls are synchronous).
        """
        self.records.sort(key=lambda record: (record.t_enter, record.idx))
        self.renumber()

    # -- serialization -------------------------------------------------

    def dumps(self):
        head = {
            "format": "repro-trace-v1",
            "platform": self.platform,
            "label": self.label,
        }
        head["threads"] = (
            self.thread_roster if self.thread_roster is not None else self.threads
        )
        lines = [json.dumps(head)]
        lines.extend(json.dumps(r.to_dict()) for r in self.records)
        return "\n".join(lines) + "\n"

    @classmethod
    def loads(cls, text, tolerant=False, warnings=None):
        """Parse JSON-lines trace text.

        Strict mode raises :class:`~repro.errors.TraceError` (with
        line number and byte offset) on the first malformed line;
        tolerant mode skips garbage, records one deduped warning per
        failure kind in ``warnings`` (a :class:`ParseWarnings`), and
        renumbers the surviving records contiguously.
        """
        if tolerant and warnings is None:
            warnings = ParseWarnings()
        trace = cls()
        offset = 0
        saw_header = False
        for line_number, raw in enumerate(text.splitlines(True), 1):
            line = raw.strip()
            line_offset = offset
            offset += len(raw.encode("utf-8")) if isinstance(raw, str) else len(raw)
            if not line:
                continue
            if not saw_header:
                saw_header = True
                try:
                    header = json.loads(line)
                    if not isinstance(header, dict):
                        raise ValueError("header is not an object")
                except ValueError:
                    raise TraceError(
                        "not a repro trace (unparseable header)",
                        line_number, line, line_offset,
                    ) from None
                if header.get("format") != "repro-trace-v1":
                    raise TraceError(
                        "not a repro trace (bad header)",
                        line_number, line, line_offset,
                    )
                trace.platform = header.get("platform", "linux")
                trace.label = header.get("label", "")
                if header.get("threads"):
                    trace.thread_roster = list(header["threads"])
                continue
            idx = len(trace.records)
            record, kind = parse_record_line(line, idx)
            if record is not None:
                if tolerant:
                    # Skipped garbage leaves holes; keep indices
                    # contiguous (downstream assumes idx == position).
                    record.idx = idx
                trace.records.append(record)
                continue
            if not tolerant:
                raise TraceError(
                    "malformed trace record (%s)" % kind,
                    line_number, line, line_offset,
                )
            warnings.warn(kind, line_number, line_offset, line[:120])
        return trace

    def save(self, path):
        with open(path, "w") as handle:
            handle.write(self.dumps())

    def with_roster(self):
        """Stamp the declared thread roster from the records
        (first-appearance order, what a batch replay spawns)."""
        self.thread_roster = self.threads
        return self

    @classmethod
    def load(cls, path):
        with open(path) as handle:
            return cls.loads(handle.read())

    def __repr__(self):
        return "<Trace %s: %d records, %d threads, %.3fs>" % (
            self.label or "?",
            len(self.records),
            len(self.threads),
            self.duration,
        )
