"""Passive tracing of live workloads.

:class:`TracedOS` is the facade simulated applications use to make
system calls.  With a trace attached it records every call (passively
-- timing is unperturbed, since recording costs no simulated time);
without one it is just the plain syscall interface, used for
ground-truth runs on target platforms.
"""

from repro.syscalls.execute import ExecContext, perform
from repro.tracing.trace import Trace, TraceRecord


def _jsonable(value):
    """Normalize return values for storage in a trace."""
    if value is None or isinstance(value, (int, float, str, bool)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    # StatResult and friends: keep the interesting fields.
    if hasattr(value, "size") and hasattr(value, "ftype"):
        return {"ino": value.ino, "ftype": value.ftype, "size": value.size}
    return repr(value)


class TracedOS(object):
    """System-call interface for simulated applications."""

    def __init__(self, fs, trace=None):
        self.fs = fs
        self.ctx = ExecContext(fs)
        self.trace = trace

    def start_tracing(self, label="", platform=None):
        self.trace = Trace(platform=platform or self.fs.platform, label=label)
        return self.trace

    def call(self, tid, name, /, **args):
        """Issue one system call; a generator returning (ret, errno).

        ``tid`` and ``name`` are positional-only so that calls whose
        argument is literally named ``name`` (shm_open) work."""
        t_enter = self.fs.engine.now
        ret, err = yield from perform(self.ctx, tid, name, args)
        t_return = self.fs.engine.now
        if self.trace is not None:
            self.trace.append(
                TraceRecord(
                    len(self.trace.records),
                    tid,
                    name,
                    dict(args),
                    _jsonable(ret),
                    err,
                    t_enter,
                    t_return,
                )
            )
        return ret, err
