"""Trace statistics: what a trace contains, before replaying it."""

from collections import Counter

from repro.syscalls.registry import spec_for


def trace_statistics(trace):
    """Summarize a trace: volumes, mixes, failures, hot paths."""
    by_name = Counter()
    by_category = Counter()
    by_thread = Counter()
    failures = Counter()
    paths = Counter()
    bytes_read = 0
    bytes_written = 0
    in_call_time = 0.0
    for record in trace.records:
        spec = spec_for(record.name)
        by_name[record.name] += 1
        by_category[spec.category] += 1
        by_thread[record.tid] += 1
        in_call_time += record.duration
        if not record.ok:
            failures[record.err] += 1
        for arg in ("path", "old", "new", "path1", "path2", "target"):
            value = record.args.get(arg)
            if isinstance(value, str):
                paths[value] += 1
        if record.ok and isinstance(record.ret, int) and record.ret > 0:
            if spec.category == "read":
                bytes_read += record.ret
            elif spec.category == "write":
                bytes_written += record.ret
    duration = trace.duration
    return {
        "label": trace.label,
        "platform": trace.platform,
        "records": len(trace),
        "threads": dict(by_thread),
        "duration": duration,
        "in_call_time": in_call_time,
        "mean_outstanding": (in_call_time / duration) if duration else 0.0,
        "by_name": dict(by_name),
        "by_category": dict(by_category),
        "failures": dict(failures),
        "bytes_read": bytes_read,
        "bytes_written": bytes_written,
        "top_paths": paths.most_common(10),
    }


def format_statistics(stats, top=12):
    lines = []
    lines.append(
        "trace %s (%s): %d records, %d threads, %.4f s"
        % (
            stats["label"] or "?",
            stats["platform"],
            stats["records"],
            len(stats["threads"]),
            stats["duration"],
        )
    )
    lines.append(
        "in-call time %.4f s (mean %.2f outstanding); "
        "%.1f KB read, %.1f KB written"
        % (
            stats["in_call_time"],
            stats["mean_outstanding"],
            stats["bytes_read"] / 1024.0,
            stats["bytes_written"] / 1024.0,
        )
    )
    lines.append("calls by category:")
    for category, count in sorted(
        stats["by_category"].items(), key=lambda kv: -kv[1]
    ):
        lines.append("  %-8s %6d" % (category, count))
    lines.append("top calls:")
    for name, count in sorted(stats["by_name"].items(), key=lambda kv: -kv[1])[:top]:
        lines.append("  %-20s %6d" % (name, count))
    if stats["failures"]:
        lines.append("failed calls (as traced):")
        for errno, count in sorted(stats["failures"].items(), key=lambda kv: -kv[1]):
            lines.append("  %-12s %6d" % (errno, count))
    if stats["top_paths"]:
        lines.append("hottest paths:")
        for path, count in stats["top_paths"][:top]:
            lines.append("  %5d  %s" % (count, path))
    return "\n".join(lines)
