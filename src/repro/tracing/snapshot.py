"""Initial file-tree snapshots.

A snapshot records the parts of the tree the traced program accesses:
directory contents, file sizes, symlink targets, and extended-attribute
names (the iBench traces famously *lack* xattr values, which is the
paper's explanation for ARTC's residual Table-3 errors -- we reproduce
that by letting snapshots omit xattrs).  File contents are never
recorded; replay initialization fills files with arbitrary bytes.
"""

import json

from repro.errors import SnapshotError
from repro.vfs.nodes import FileType


class SnapshotEntry(object):
    __slots__ = ("path", "ftype", "size", "target", "xattrs")

    def __init__(self, path, ftype, size=0, target=None, xattrs=None):
        self.path = path
        self.ftype = ftype
        self.size = size
        self.target = target
        self.xattrs = list(xattrs or [])

    def to_dict(self):
        out = {"path": self.path, "type": self.ftype}
        if self.size:
            out["size"] = self.size
        if self.target is not None:
            out["target"] = self.target
        if self.xattrs:
            out["xattrs"] = self.xattrs
        return out

    @classmethod
    def from_dict(cls, data):
        return cls(
            data["path"],
            data["type"],
            data.get("size", 0),
            data.get("target"),
            data.get("xattrs"),
        )

    def __repr__(self):
        return "<SnapshotEntry %s %s size=%d>" % (self.path, self.ftype, self.size)


class Snapshot(object):
    """An ordered list of entries; parents always precede children."""

    def __init__(self, entries=None, label=""):
        self.entries = list(entries or [])
        self.label = label

    def __len__(self):
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def add(self, path, ftype, size=0, target=None, xattrs=None):
        self.entries.append(SnapshotEntry(path, ftype, size, target, xattrs))

    def paths(self):
        return [entry.path for entry in self.entries]

    def entry_for(self, path):
        for entry in self.entries:
            if entry.path == path:
                return entry
        return None

    def sorted(self):
        """Entries ordered so that parents precede children."""
        return sorted(self.entries, key=lambda e: (e.path.count("/"), e.path))

    def validate(self):
        """Check internal consistency (parents exist, no duplicates)."""
        seen = set()
        dirs = {"/"}
        for entry in self.sorted():
            if entry.path in seen:
                raise SnapshotError("duplicate snapshot path %r" % entry.path)
            seen.add(entry.path)
            parent = entry.path.rsplit("/", 1)[0] or "/"
            if parent not in dirs and parent != "/":
                raise SnapshotError(
                    "snapshot entry %r has no parent directory" % entry.path
                )
            if entry.ftype == FileType.DIR:
                dirs.add(entry.path)
            if entry.ftype == FileType.SYMLINK and not entry.target:
                raise SnapshotError("symlink %r lacks a target" % entry.path)

    # -- capture from a live file system -------------------------------

    @classmethod
    def capture(cls, fs, roots=("/",), include_xattrs=True, label=""):
        """Walk a :class:`~repro.vfs.filesystem.FileSystem` and record
        everything under ``roots`` (excluding /dev)."""
        snap = cls(label=label)

        def _walk(inode, path):
            if path.startswith("/dev"):
                return
            if path != "/":
                if inode.is_dir:
                    snap.add(path, FileType.DIR)
                elif inode.is_symlink:
                    snap.add(path, FileType.SYMLINK, target=inode.symlink_target)
                elif inode.is_reg:
                    xattrs = sorted(inode.xattrs) if include_xattrs else None
                    snap.add(path, FileType.REG, size=inode.size, xattrs=xattrs)
                else:
                    return  # special files are recreated by init, not snapshotted
            if inode.is_dir:
                for name in sorted(inode.children):
                    child = fs.table.get(inode.children[name])
                    _walk(child, (path.rstrip("/") + "/" + name))

        for root in roots:
            inode = fs.lookup(root, follow=False)
            if inode is None:
                raise SnapshotError("snapshot root %r does not exist" % root)
            _walk(inode, root if root.startswith("/") else "/" + root)
        return snap

    # -- serialization -------------------------------------------------

    def dumps(self):
        return json.dumps(
            {
                "format": "repro-snapshot-v1",
                "label": self.label,
                "entries": [entry.to_dict() for entry in self.entries],
            },
            indent=1,
        )

    @classmethod
    def loads(cls, text):
        data = json.loads(text)
        if data.get("format") != "repro-snapshot-v1":
            raise SnapshotError("not a repro snapshot (bad header)")
        return cls(
            [SnapshotEntry.from_dict(e) for e in data.get("entries", [])],
            data.get("label", ""),
        )

    def save(self, path):
        with open(path, "w") as handle:
            handle.write(self.dumps())

    @classmethod
    def load(cls, path):
        with open(path) as handle:
            return cls.loads(handle.read())

    def __repr__(self):
        return "<Snapshot %s: %d entries>" % (self.label or "?", len(self.entries))
