"""Traces, snapshots, and trace formats.

- :mod:`repro.tracing.trace` -- in-memory trace model + JSON-lines format
- :mod:`repro.tracing.tracer` -- records calls made by live workloads
- :mod:`repro.tracing.snapshot` -- initial file-tree snapshots
- :mod:`repro.tracing.strace` -- strace-compatible text parsing/emission
"""

from repro.tracing.trace import Trace, TraceRecord
from repro.tracing.tracer import TracedOS
from repro.tracing.snapshot import Snapshot

__all__ = ["Trace", "TraceRecord", "TracedOS", "Snapshot"]
