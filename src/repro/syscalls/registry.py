"""The system-call registry.

Each entry maps a call name to:

- ``kind``: the semantic interpreter key shared by the executor
  (:mod:`repro.syscalls.execute`) and the ROOT resource extractor
  (:mod:`repro.core.fsstate`).  Many names share one kind (``pread64``
  and ``pread_nocancel`` are both ``pread``).
- ``category``: the Figure-10 thread-time bucket.
- ``platforms``: where the call exists natively; replaying a trace on a
  platform outside this set goes through the emulation layer.
- ``args``: documentation of the normalized argument names.

The registry knows 90+ calls, matching ARTC's "over 80 different
system calls".
"""

from repro.errors import UnsupportedSyscallError

ALL = frozenset(["linux", "darwin", "freebsd", "illumos"])
LINUX = frozenset(["linux"])
DARWIN = frozenset(["darwin"])
BSDISH = frozenset(["darwin", "freebsd"])
NOT_DARWIN = frozenset(["linux", "freebsd", "illumos"])


class SyscallSpec(object):
    __slots__ = ("name", "kind", "category", "platforms", "args")

    def __init__(self, name, kind, category, platforms, args):
        self.name = name
        self.kind = kind
        self.category = category
        self.platforms = platforms
        self.args = args

    def available_on(self, platform):
        return platform in self.platforms

    def __repr__(self):
        return "<SyscallSpec %s kind=%s>" % (self.name, self.kind)


def _spec(name, kind, category, platforms, args):
    return SyscallSpec(name, kind, category, platforms, tuple(args))


_TABLE = [
    # --- open/close --------------------------------------------------
    ("open", "open", "open", ALL, ["path", "flags", "mode"]),
    ("open64", "open", "open", LINUX, ["path", "flags", "mode"]),
    ("openat", "open", "open", ALL, ["path", "flags", "mode"]),
    ("open_nocancel", "open", "open", DARWIN, ["path", "flags", "mode"]),
    ("open_extended", "open", "open", DARWIN, ["path", "flags", "mode"]),
    ("guarded_open_np", "open", "open", DARWIN, ["path", "flags", "mode"]),
    ("creat", "creat", "open", ALL, ["path", "mode"]),
    ("close", "close", "close", ALL, ["fd"]),
    ("close_nocancel", "close", "close", DARWIN, ["fd"]),
    ("guarded_close_np", "close", "close", DARWIN, ["fd"]),
    # --- data transfer ----------------------------------------------
    ("read", "read", "read", ALL, ["fd", "nbytes"]),
    ("read_nocancel", "read", "read", DARWIN, ["fd", "nbytes"]),
    ("readv", "read", "read", ALL, ["fd", "nbytes"]),
    ("pread", "pread", "read", ALL, ["fd", "nbytes", "offset"]),
    ("pread64", "pread", "read", LINUX, ["fd", "nbytes", "offset"]),
    ("pread_nocancel", "pread", "read", DARWIN, ["fd", "nbytes", "offset"]),
    ("preadv", "pread", "read", ALL, ["fd", "nbytes", "offset"]),
    ("write", "write", "write", ALL, ["fd", "nbytes"]),
    ("write_nocancel", "write", "write", DARWIN, ["fd", "nbytes"]),
    ("writev", "write", "write", ALL, ["fd", "nbytes"]),
    ("pwrite", "pwrite", "write", ALL, ["fd", "nbytes", "offset"]),
    ("pwrite64", "pwrite", "write", LINUX, ["fd", "nbytes", "offset"]),
    ("pwrite_nocancel", "pwrite", "write", DARWIN, ["fd", "nbytes", "offset"]),
    ("pwritev", "pwrite", "write", ALL, ["fd", "nbytes", "offset"]),
    ("lseek", "lseek", "other", ALL, ["fd", "offset", "whence"]),
    ("_llseek", "lseek", "other", LINUX, ["fd", "offset", "whence"]),
    # --- durability --------------------------------------------------
    ("fsync", "fsync", "fsync", ALL, ["fd"]),
    ("fsync_nocancel", "fsync", "fsync", DARWIN, ["fd"]),
    ("fdatasync", "fdatasync", "fsync", NOT_DARWIN, ["fd"]),
    ("sync", "sync", "fsync", ALL, []),
    ("sync_file_range", "fdatasync", "fsync", LINUX, ["fd"]),
    # --- metadata reads ----------------------------------------------
    ("stat", "stat", "stat", ALL, ["path"]),
    ("stat64", "stat", "stat", BSDISH | LINUX, ["path"]),
    ("lstat", "lstat", "stat", ALL, ["path"]),
    ("lstat64", "lstat", "stat", BSDISH | LINUX, ["path"]),
    ("fstat", "fstat", "stat", ALL, ["fd"]),
    ("fstat64", "fstat", "stat", BSDISH | LINUX, ["fd"]),
    ("fstatat", "stat", "stat", ALL, ["path"]),
    ("newfstatat", "stat", "stat", LINUX, ["path"]),
    ("stat_extended", "stat_extended", "stat", DARWIN, ["path"]),
    ("lstat_extended", "lstat_extended", "stat", DARWIN, ["path"]),
    ("fstat_extended", "fstat_extended", "stat", DARWIN, ["fd"]),
    ("access", "access", "stat", ALL, ["path", "mode"]),
    ("faccessat", "access", "stat", ALL, ["path", "mode"]),
    ("readlink", "readlink", "stat", ALL, ["path"]),
    ("readlinkat", "readlink", "stat", ALL, ["path"]),
    ("statfs", "statfs", "stat", ALL, ["path"]),
    ("statfs64", "statfs", "stat", BSDISH | LINUX, ["path"]),
    ("fstatfs", "fstatfs", "stat", ALL, ["fd"]),
    ("fstatfs64", "fstatfs", "stat", BSDISH | LINUX, ["fd"]),
    ("getfsstat64", "statfs_global", "stat", DARWIN, []),
    # --- directories -------------------------------------------------
    ("mkdir", "mkdir", "meta", ALL, ["path", "mode"]),
    ("mkdirat", "mkdir", "meta", ALL, ["path", "mode"]),
    ("rmdir", "rmdir", "meta", ALL, ["path"]),
    ("getdents", "getdents", "dir", LINUX, ["fd"]),
    ("getdents64", "getdents", "dir", LINUX, ["fd"]),
    ("getdirentries", "getdents", "dir", BSDISH, ["fd"]),
    ("getdirentries64", "getdents", "dir", DARWIN, ["fd"]),
    ("getdirentriesattr", "getdirentriesattr", "dir", DARWIN, ["fd"]),
    # --- namespace ---------------------------------------------------
    ("unlink", "unlink", "meta", ALL, ["path"]),
    ("unlinkat", "unlink", "meta", ALL, ["path"]),
    ("rename", "rename", "meta", ALL, ["old", "new"]),
    ("renameat", "rename", "meta", ALL, ["old", "new"]),
    ("link", "link", "meta", ALL, ["target", "path"]),
    ("linkat", "link", "meta", ALL, ["target", "path"]),
    ("symlink", "symlink", "meta", ALL, ["target", "path"]),
    ("symlinkat", "symlink", "meta", ALL, ["target", "path"]),
    ("truncate", "truncate", "write", ALL, ["path", "length"]),
    ("truncate64", "truncate", "write", LINUX, ["path", "length"]),
    ("ftruncate", "ftruncate", "write", ALL, ["fd", "length"]),
    ("ftruncate64", "ftruncate", "write", LINUX, ["fd", "length"]),
    # --- attribute writes --------------------------------------------
    ("chmod", "chmod", "meta", ALL, ["path", "mode"]),
    ("chmod_extended", "chmod", "meta", DARWIN, ["path", "mode"]),
    ("fchmod", "fchmod", "meta", ALL, ["fd", "mode"]),
    ("fchmodat", "chmod", "meta", ALL, ["path", "mode"]),
    ("chown", "chown", "meta", ALL, ["path"]),
    ("lchown", "chown", "meta", ALL, ["path"]),
    ("fchown", "fchown", "meta", ALL, ["fd"]),
    ("fchownat", "chown", "meta", ALL, ["path"]),
    ("utimes", "utimes", "meta", ALL, ["path"]),
    ("utimensat", "utimes", "meta", LINUX, ["path"]),
    ("futimes", "futimes", "meta", BSDISH, ["fd"]),
    # --- descriptors -------------------------------------------------
    ("dup", "dup", "other", ALL, ["fd"]),
    ("dup2", "dup2", "other", ALL, ["fd", "newfd"]),
    ("dup3", "dup2", "other", LINUX, ["fd", "newfd"]),
    ("fcntl", "fcntl", "other", ALL, ["fd", "cmd", "arg"]),
    ("fcntl_nocancel", "fcntl", "other", DARWIN, ["fd", "cmd", "arg"]),
    ("flock", "flock", "other", ALL, ["fd", "op"]),
    # --- hints and allocation ----------------------------------------
    # The paper's FreeBSD target lacked analogous hint APIs, so those
    # calls are ignored there (section 4.3.4).
    ("posix_fadvise", "fadvise", "hint", frozenset(["linux", "illumos"]), ["fd", "offset", "length", "advice"]),
    ("readahead", "fadvise", "hint", LINUX, ["fd", "offset", "length"]),
    ("fallocate", "fallocate", "hint", LINUX, ["fd", "offset", "length"]),
    ("posix_fallocate", "fallocate", "hint", frozenset(["linux", "illumos"]), ["fd", "offset", "length"]),
    # --- memory mapping ----------------------------------------------
    ("mmap", "mmap", "read", ALL, ["fd", "offset", "length"]),
    ("mmap2", "mmap", "read", LINUX, ["fd", "offset", "length"]),
    ("munmap", "munmap", "other", ALL, ["addr", "length"]),
    ("msync", "msync", "fsync", ALL, ["addr", "length"]),
    # --- pipes, shm, cwd ---------------------------------------------
    ("pipe", "pipe", "other", ALL, []),
    ("pipe2", "pipe", "other", LINUX, []),
    ("shm_open", "shm_open", "open", ALL, ["name", "flags", "mode"]),
    ("shm_unlink", "shm_unlink", "meta", ALL, ["name"]),
    ("chdir", "chdir", "other", ALL, ["path"]),
    ("fchdir", "fchdir", "other", ALL, ["fd"]),
    ("getcwd", "getcwd", "other", ALL, []),
    # --- extended attributes (Linux spellings) -----------------------
    ("getxattr", "getxattr", "meta", LINUX | DARWIN, ["path", "xname"]),
    ("lgetxattr", "lgetxattr", "meta", LINUX, ["path", "xname"]),
    ("fgetxattr", "fgetxattr", "meta", LINUX | DARWIN, ["fd", "xname"]),
    ("setxattr", "setxattr", "meta", LINUX | DARWIN, ["path", "xname", "size"]),
    ("lsetxattr", "lsetxattr", "meta", LINUX, ["path", "xname", "size"]),
    ("fsetxattr", "fsetxattr", "meta", LINUX | DARWIN, ["fd", "xname", "size"]),
    ("listxattr", "listxattr", "meta", LINUX | DARWIN, ["path"]),
    ("llistxattr", "llistxattr", "meta", LINUX, ["path"]),
    ("flistxattr", "flistxattr", "meta", LINUX | DARWIN, ["fd"]),
    ("removexattr", "removexattr", "meta", LINUX | DARWIN, ["path", "xname"]),
    ("lremovexattr", "lremovexattr", "meta", LINUX, ["path", "xname"]),
    ("fremovexattr", "fremovexattr", "meta", LINUX | DARWIN, ["fd", "xname"]),
    # --- Darwin attribute-list family --------------------------------
    ("getattrlist", "getattrlist", "stat", DARWIN, ["path"]),
    ("setattrlist", "setattrlist", "meta", DARWIN, ["path"]),
    ("fgetattrlist", "fgetattrlist", "stat", DARWIN, ["fd"]),
    ("fsetattrlist", "fsetattrlist", "meta", DARWIN, ["fd"]),
    ("getattrlistbulk", "getattrlistbulk", "dir", DARWIN, ["fd"]),
    ("exchangedata", "exchangedata", "meta", DARWIN, ["path1", "path2"]),
    # --- asynchronous I/O --------------------------------------------
    ("aio_read", "aio_read", "aio", ALL, ["aiocb", "fd", "nbytes", "offset"]),
    ("aio_write", "aio_write", "aio", ALL, ["aiocb", "fd", "nbytes", "offset"]),
    ("aio_error", "aio_error", "aio", ALL, ["aiocb"]),
    ("aio_return", "aio_return", "aio", ALL, ["aiocb"]),
    ("aio_suspend", "aio_suspend", "aio", ALL, ["aiocbs"]),
    ("aio_cancel", "aio_cancel", "aio", ALL, ["aiocb"]),
    ("lio_listio", "lio_listio", "aio", ALL, ["ops"]),
]

REGISTRY = {}
for _name, _kind, _cat, _plats, _args in _TABLE:
    REGISTRY[_name] = _spec(_name, _kind, _cat, _plats, _args)


def spec_for(name):
    """Look up a call by name, raising UnsupportedSyscallError if unknown."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise UnsupportedSyscallError(name) from None


#: Figure 10 buckets in display order.
CATEGORIES = [
    "read",
    "write",
    "open",
    "close",
    "fsync",
    "stat",
    "meta",
    "dir",
    "hint",
    "aio",
    "other",
]
