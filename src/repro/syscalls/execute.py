"""One executor for every registered call.

The same dispatch table runs system calls in two situations:

1. *Live workloads* being traced (args are real values); and
2. *Replay* of compiled benchmarks (fd/aiocb args already translated
   through the replay remap tables by the replayer).

Using a single code path guarantees that replayed calls have exactly
the semantics of traced calls.  Every handler is a generator returning
``(retval, errno)``.
"""

from repro.errors import ReplayError
from repro.sim.events import Delay
from repro.syscalls.registry import spec_for
from repro.vfs import flags as F


class ExecContext(object):
    """Execution state shared across one run (trace or replay).

    ``fd_map``/``aio_map`` translate trace-time resource names (keyed
    by ``(name, generation)``) to runtime values; they stay empty for
    live workloads, which pass real descriptors.
    """

    def __init__(self, fs):
        self.fs = fs
        self.fd_map = {}
        self.aio_map = {}
        self._aio_counter = 0

    def fresh_aiocb(self):
        self._aio_counter += 1
        return "cb%d" % self._aio_counter


def _flags_of(args):
    value = args.get("flags", 0)
    if isinstance(value, str):
        value = F.parse_flags(value)
    return value


# ----------------------------------------------------------------------
# handlers: (ctx, tid, args) -> generator -> (ret, err)
# ----------------------------------------------------------------------


def _h_open(ctx, tid, args):
    return ctx.fs.open(tid, args["path"], _flags_of(args), args.get("mode", 0o644))


def _h_creat(ctx, tid, args):
    return ctx.fs.creat(tid, args["path"], args.get("mode", 0o644))


def _h_close(ctx, tid, args):
    return ctx.fs.close(tid, args["fd"])


def _h_read(ctx, tid, args):
    return ctx.fs.read(tid, args["fd"], args["nbytes"])


def _h_pread(ctx, tid, args):
    return ctx.fs.pread(tid, args["fd"], args["nbytes"], args["offset"])


def _h_write(ctx, tid, args):
    return ctx.fs.write(tid, args["fd"], args["nbytes"])


def _h_pwrite(ctx, tid, args):
    return ctx.fs.pwrite(tid, args["fd"], args["nbytes"], args["offset"])


def _h_lseek(ctx, tid, args):
    return ctx.fs.lseek(tid, args["fd"], args["offset"], args.get("whence", F.SEEK_SET))


def _h_fsync(ctx, tid, args):
    return ctx.fs.fsync(tid, args["fd"])


def _h_fdatasync(ctx, tid, args):
    return ctx.fs.fdatasync(tid, args["fd"])


def _h_sync(ctx, tid, args):
    return ctx.fs.sync(tid)


def _h_stat(ctx, tid, args):
    return ctx.fs.stat(tid, args["path"])


def _h_lstat(ctx, tid, args):
    return ctx.fs.lstat(tid, args["path"])


def _h_fstat(ctx, tid, args):
    return ctx.fs.fstat(tid, args["fd"])


def _h_access(ctx, tid, args):
    return ctx.fs.access(tid, args["path"], args.get("mode", 0))


def _h_readlink(ctx, tid, args):
    return ctx.fs.readlink(tid, args["path"])


def _h_statfs(ctx, tid, args):
    return ctx.fs.statfs(tid, args["path"])


def _h_fstatfs(ctx, tid, args):
    return ctx.fs.fstatfs(tid, args["fd"])


def _h_statfs_global(ctx, tid, args):
    return ctx.fs.statfs(tid, "/")


def _h_mkdir(ctx, tid, args):
    return ctx.fs.mkdir(tid, args["path"], args.get("mode", 0o755))


def _h_rmdir(ctx, tid, args):
    return ctx.fs.rmdir(tid, args["path"])


def _h_getdents(ctx, tid, args):
    return ctx.fs.getdents(tid, args["fd"])


def _h_unlink(ctx, tid, args):
    return ctx.fs.unlink(tid, args["path"])


def _h_rename(ctx, tid, args):
    return ctx.fs.rename(tid, args["old"], args["new"])


def _h_link(ctx, tid, args):
    return ctx.fs.link(tid, args["target"], args["path"])


def _h_symlink(ctx, tid, args):
    return ctx.fs.symlink(tid, args["target"], args["path"])


def _h_truncate(ctx, tid, args):
    return ctx.fs.truncate(tid, args["path"], args["length"])


def _h_ftruncate(ctx, tid, args):
    return ctx.fs.ftruncate(tid, args["fd"], args["length"])


def _h_chmod(ctx, tid, args):
    return ctx.fs.chmod(tid, args["path"], args.get("mode", 0o644))


def _h_fchmod(ctx, tid, args):
    return ctx.fs.fchmod(tid, args["fd"], args.get("mode", 0o644))


def _h_chown(ctx, tid, args):
    return ctx.fs.chown(tid, args["path"])


def _h_fchown(ctx, tid, args):
    return ctx.fs.futimes(tid, args["fd"])


def _h_utimes(ctx, tid, args):
    return ctx.fs.utimes(tid, args["path"])


def _h_futimes(ctx, tid, args):
    return ctx.fs.futimes(tid, args["fd"])


def _h_dup(ctx, tid, args):
    return ctx.fs.dup(tid, args["fd"])


def _h_dup2(ctx, tid, args):
    return ctx.fs.dup2(tid, args["fd"], args["newfd"])


def _h_flock(ctx, tid, args):
    return ctx.fs.flock(tid, args["fd"], args.get("op", 0))


def _h_fadvise(ctx, tid, args):
    return ctx.fs.fadvise(
        tid, args["fd"], args.get("offset", 0), args.get("length", 0)
    )


def _h_fallocate(ctx, tid, args):
    return ctx.fs.fallocate(tid, args["fd"], args.get("offset", 0), args["length"])


def _h_mmap(ctx, tid, args):
    return ctx.fs.mmap(tid, args.get("fd", -1), args.get("offset", 0), args["length"])


def _h_munmap(ctx, tid, args):
    return ctx.fs.munmap(tid, args.get("addr", 0), args.get("length", 0))


def _h_msync(ctx, tid, args):
    return ctx.fs.msync(tid, args.get("addr", 0), args.get("length", 0))


def _h_pipe(ctx, tid, args):
    return ctx.fs.pipe(tid)


def _h_shm_open(ctx, tid, args):
    return ctx.fs.shm_open(
        tid, args["name"], _flags_of(args) or (F.O_RDWR | F.O_CREAT), args.get("mode", 0o600)
    )


def _h_shm_unlink(ctx, tid, args):
    return ctx.fs.shm_unlink(tid, args["name"])


def _h_chdir(ctx, tid, args):
    return ctx.fs.chdir(tid, args["path"])


def _h_fchdir(ctx, tid, args):
    fd = args["fd"]

    def _body():
        open_file = ctx.fs.fdt.get(fd)
        ctx.fs.cwd = open_file.ino
        yield ctx.fs.stack.meta_delay
        return 0, None

    return _wrap_vfs(_body)


def _h_getcwd(ctx, tid, args):
    def _body():
        yield ctx.fs.stack.meta_delay
        return "/", None

    return _body()


def _wrap_vfs(body):
    from repro.vfs.errnos import VfsError

    def _gen():
        try:
            return (yield from body())
        except VfsError as exc:
            return -1, exc.errno

    return _gen()


def _h_fcntl(ctx, tid, args):
    cmd = args.get("cmd", "F_GETFL")
    fd = args["fd"]
    fs = ctx.fs
    if cmd == "F_FULLFSYNC":
        return fs.full_fsync(tid, fd)
    if cmd in ("F_DUPFD", "F_DUPFD_CLOEXEC"):
        return fs.dup(tid, fd)
    if cmd == "F_PREALLOCATE":
        return fs.fallocate(tid, fd, 0, args.get("arg", 0) or 0)
    if cmd == "F_RDADVISE":
        return fs.fadvise(tid, fd, args.get("offset", 0), args.get("arg", 0) or 0)
    # F_NOCACHE, F_GETFL, F_SETFL, F_SETLK, F_GETLK, F_SETLKW, F_GETPATH,
    # F_GETFD, F_SETFD: validate the descriptor, succeed trivially.
    return fs.flock(tid, fd)


# --- Darwin attribute-list family -------------------------------------


def _h_getattrlist(ctx, tid, args):
    return ctx.fs.getattrlist(tid, args["path"])


def _h_setattrlist(ctx, tid, args):
    return ctx.fs.setattrlist(tid, args["path"])


def _h_fgetattrlist(ctx, tid, args):
    return ctx.fs.fstat(tid, args["fd"])


def _h_fsetattrlist(ctx, tid, args):
    return ctx.fs.futimes(tid, args["fd"])


def _h_getattrlistbulk(ctx, tid, args):
    return ctx.fs.getdents(tid, args["fd"])


def _h_getdirentriesattr(ctx, tid, args):
    return ctx.fs.getdents(tid, args["fd"])


def _h_exchangedata(ctx, tid, args):
    return ctx.fs.exchangedata(tid, args["path1"], args["path2"])


def _h_stat_extended(ctx, tid, args):
    return ctx.fs.stat(tid, args["path"])


def _h_lstat_extended(ctx, tid, args):
    return ctx.fs.lstat(tid, args["path"])


def _h_fstat_extended(ctx, tid, args):
    return ctx.fs.fstat(tid, args["fd"])


# --- xattrs ------------------------------------------------------------


def _h_getxattr(ctx, tid, args):
    return ctx.fs.getxattr(tid, args["path"], args["xname"])


def _h_lgetxattr(ctx, tid, args):
    return ctx.fs.getxattr(tid, args["path"], args["xname"], follow=False)


def _h_fgetxattr(ctx, tid, args):
    return ctx.fs.fgetxattr(tid, args["fd"], args["xname"])


def _h_setxattr(ctx, tid, args):
    return ctx.fs.setxattr(tid, args["path"], args["xname"], args.get("size", 16))


def _h_lsetxattr(ctx, tid, args):
    return ctx.fs.setxattr(
        tid, args["path"], args["xname"], args.get("size", 16), follow=False
    )


def _h_fsetxattr(ctx, tid, args):
    return ctx.fs.fsetxattr(tid, args["fd"], args["xname"], args.get("size", 16))


def _h_listxattr(ctx, tid, args):
    return ctx.fs.listxattr(tid, args["path"])


def _h_llistxattr(ctx, tid, args):
    return ctx.fs.listxattr(tid, args["path"], follow=False)


def _h_flistxattr(ctx, tid, args):
    return ctx.fs.flistxattr(tid, args["fd"])


def _h_removexattr(ctx, tid, args):
    return ctx.fs.removexattr(tid, args["path"], args["xname"])


def _h_lremovexattr(ctx, tid, args):
    return ctx.fs.removexattr(tid, args["path"], args["xname"], follow=False)


def _h_fremovexattr(ctx, tid, args):
    return ctx.fs.fremovexattr(tid, args["fd"], args["xname"])


# --- asynchronous I/O ---------------------------------------------------


def _h_aio_read(ctx, tid, args):
    return ctx.fs.aio_submit(
        tid, args["aiocb"], args["fd"], args["nbytes"], args.get("offset", 0), False
    )


def _h_aio_write(ctx, tid, args):
    return ctx.fs.aio_submit(
        tid, args["aiocb"], args["fd"], args["nbytes"], args.get("offset", 0), True
    )


def _h_aio_error(ctx, tid, args):
    return ctx.fs.aio_error(tid, args["aiocb"])


def _h_aio_return(ctx, tid, args):
    return ctx.fs.aio_return(tid, args["aiocb"])


def _h_aio_suspend(ctx, tid, args):
    return ctx.fs.aio_suspend(tid, args["aiocbs"])


def _h_aio_cancel(ctx, tid, args):
    return ctx.fs.aio_error(tid, args["aiocb"])


def _h_lio_listio(ctx, tid, args):
    # Arguments are unpacked eagerly so a malformed op dict fails at
    # handler-construction time, where perform() converts the KeyError
    # into a ReplayError with call context.
    ops = [
        (op["aiocb"], op["fd"], op["nbytes"], op.get("offset", 0),
         op.get("is_write", False))
        for op in args.get("ops", [])
    ]

    def _body():
        for aiocb, fd, nbytes, offset, is_write in ops:
            ret, err = yield from ctx.fs.aio_submit(
                tid, aiocb, fd, nbytes, offset, is_write
            )
            if err is not None:
                return ret, err
        return 0, None

    return _body()


HANDLERS = {
    "open": _h_open,
    "creat": _h_creat,
    "close": _h_close,
    "read": _h_read,
    "pread": _h_pread,
    "write": _h_write,
    "pwrite": _h_pwrite,
    "lseek": _h_lseek,
    "fsync": _h_fsync,
    "fdatasync": _h_fdatasync,
    "sync": _h_sync,
    "stat": _h_stat,
    "lstat": _h_lstat,
    "fstat": _h_fstat,
    "access": _h_access,
    "readlink": _h_readlink,
    "statfs": _h_statfs,
    "fstatfs": _h_fstatfs,
    "statfs_global": _h_statfs_global,
    "mkdir": _h_mkdir,
    "rmdir": _h_rmdir,
    "getdents": _h_getdents,
    "unlink": _h_unlink,
    "rename": _h_rename,
    "link": _h_link,
    "symlink": _h_symlink,
    "truncate": _h_truncate,
    "ftruncate": _h_ftruncate,
    "chmod": _h_chmod,
    "fchmod": _h_fchmod,
    "chown": _h_chown,
    "fchown": _h_fchown,
    "utimes": _h_utimes,
    "futimes": _h_futimes,
    "dup": _h_dup,
    "dup2": _h_dup2,
    "fcntl": _h_fcntl,
    "flock": _h_flock,
    "fadvise": _h_fadvise,
    "fallocate": _h_fallocate,
    "mmap": _h_mmap,
    "munmap": _h_munmap,
    "msync": _h_msync,
    "pipe": _h_pipe,
    "shm_open": _h_shm_open,
    "shm_unlink": _h_shm_unlink,
    "chdir": _h_chdir,
    "fchdir": _h_fchdir,
    "getcwd": _h_getcwd,
    "getattrlist": _h_getattrlist,
    "setattrlist": _h_setattrlist,
    "fgetattrlist": _h_fgetattrlist,
    "fsetattrlist": _h_fsetattrlist,
    "getattrlistbulk": _h_getattrlistbulk,
    "getdirentriesattr": _h_getdirentriesattr,
    "exchangedata": _h_exchangedata,
    "stat_extended": _h_stat_extended,
    "lstat_extended": _h_lstat_extended,
    "fstat_extended": _h_fstat_extended,
    "getxattr": _h_getxattr,
    "lgetxattr": _h_lgetxattr,
    "fgetxattr": _h_fgetxattr,
    "setxattr": _h_setxattr,
    "lsetxattr": _h_lsetxattr,
    "fsetxattr": _h_fsetxattr,
    "listxattr": _h_listxattr,
    "llistxattr": _h_llistxattr,
    "flistxattr": _h_flistxattr,
    "removexattr": _h_removexattr,
    "lremovexattr": _h_lremovexattr,
    "fremovexattr": _h_fremovexattr,
    "aio_read": _h_aio_read,
    "aio_write": _h_aio_write,
    "aio_error": _h_aio_error,
    "aio_return": _h_aio_return,
    "aio_suspend": _h_aio_suspend,
    "aio_cancel": _h_aio_cancel,
    "lio_listio": _h_lio_listio,
}


def perform(ctx, tid, name, args):
    """Execute call ``name`` with normalized ``args``; a generator
    returning ``(retval, errno)``.

    Handlers bind their arguments eagerly (before the returned
    generator first runs), so a malformed record -- a missing ``path``,
    ``fd``, ``nbytes``, ... -- surfaces here as a :class:`ReplayError`
    naming the call, never as a bare ``KeyError`` escaping the replay.
    """
    spec = spec_for(name)
    handler = HANDLERS.get(spec.kind)
    if handler is None:
        raise ReplayError("no handler for syscall kind %r (%s)" % (spec.kind, name))
    try:
        return handler(ctx, tid, args)
    except KeyError as exc:
        raise ReplayError(
            "syscall %s (kind %s) is missing argument %s; got %r"
            % (name, spec.kind, exc, sorted(args))
        )
