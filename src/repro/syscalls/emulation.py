"""Cross-platform pseudo-call emulation (paper section 4.3.4).

When a trace collected on one platform is replayed on another, calls
with no native equivalent are converted to *pseudo-calls* and emulated
with the most similar call (or combination of calls) available on the
target.  ARTC emulates 19 calls; the table here mirrors its groups:

- 11 special metadata-access APIs (attribute lists, xattr spellings,
  bulk directory attributes) -> nearest stat/xattr/getdents equivalent,
  extra parameters ignored;
- 3 file-system hints (prefetch, preallocation, cache control) ->
  fadvise/fallocate where available, ignored on FreeBSD;
- 3 obscure undocumented Mac OS X calls (the ``*_extended`` stat
  family) -> small metadata accesses;
- 1 fsync-semantics difference (Darwin fsync only flushes to the device
  cache; Linux makes data durable) -> replay option selects which
  semantics to emulate;
- 1 ``exchangedata`` (Darwin's atomic data swap) -> a link and two
  renames (not truly atomic, as the paper notes).
"""

from repro.syscalls.registry import spec_for


class EmulationOptions(object):
    """Replay-time knobs for ambiguous emulations.

    ``fsync_mode``: how to emulate a *Darwin* fsync on a durable-fsync
    platform -- ``"durable"`` issues a full fsync (conservative),
    ``"flush"`` issues the cheaper fdatasync.  When replaying a *Linux*
    fsync on Darwin, the inverse option picks ``fcntl(F_FULLFSYNC)``
    (durable) or plain fsync (flush).
    """

    def __init__(self, fsync_mode="durable", ignore_unsupported_hints=True):
        if fsync_mode not in ("durable", "flush"):
            raise ValueError("fsync_mode must be 'durable' or 'flush'")
        self.fsync_mode = fsync_mode
        self.ignore_unsupported_hints = ignore_unsupported_hints


DEFAULT_OPTIONS = EmulationOptions()

#: The 19 emulated calls, grouped as in the paper.
EMULATED_CALLS = {
    "metadata": [
        "getattrlist",
        "setattrlist",
        "fgetattrlist",
        "fsetattrlist",
        "getattrlistbulk",
        "getdirentriesattr",
        "getxattr",  # Darwin spelling/options differ from Linux
        "setxattr",
        "listxattr",
        "removexattr",
        "getdirentries64",
    ],
    "hints": ["F_RDADVISE", "F_PREALLOCATE", "F_NOCACHE"],
    "obscure": ["stat_extended", "lstat_extended", "fstat_extended"],
    "fsync": ["fsync"],
    "atomicity": ["exchangedata"],
}

# Darwin-only call -> replacement call name per target family.  The
# replacement must exist in the registry for the target platform.
_METADATA_MAP = {
    "getattrlist": "stat",
    "setattrlist": "utimes",
    "fgetattrlist": "fstat",
    "fsetattrlist": "fchmod",
    "getattrlistbulk": "getdents",
    "getdirentriesattr": "getdents",
    "getdirentries64": "getdents",
    "stat_extended": "stat",
    "lstat_extended": "lstat",
    "fstat_extended": "fstat",
    "stat64": "stat",
    "lstat64": "lstat",
    "fstat64": "fstat",
    "statfs64": "statfs",
    "fstatfs64": "fstatfs",
    "getfsstat64": "statfs",
}

_TARGET_GETDENTS = {
    "linux": "getdents64",
    "freebsd": "getdirentries",
    "darwin": "getdirentries64",
    "illumos": "getdents",
}

# fcntl hint commands per target.
_HINT_FCNTL = frozenset(["F_RDADVISE", "F_PREALLOCATE", "F_NOCACHE"])


def _native_name(name, target):
    """Strip Darwin ``_nocancel`` suffixes and size-variant aliases down
    to a name available on ``target``."""
    base = name[: -len("_nocancel")] if name.endswith("_nocancel") else name
    spec = spec_for(base)
    if spec.available_on(target):
        return base
    mapped = _METADATA_MAP.get(base)
    if mapped is not None:
        if mapped == "getdents":
            concrete = _TARGET_GETDENTS[target]
            return concrete
        return mapped
    return None


def plan_for(name, args, source, target, options=DEFAULT_OPTIONS):
    """Build the execution plan for one call on ``target``.

    Returns a list of ``(call_name, args)`` steps.  An empty list means
    the call has no analogue and is skipped (succeeds trivially), which
    is how ARTC treats some hints on FreeBSD.
    """
    spec = spec_for(name)

    # fsync semantics differ between Darwin and everything else.
    if spec.kind in ("fsync", "fdatasync"):
        if source == "darwin" and target != "darwin":
            call = "fsync" if options.fsync_mode == "durable" else "fdatasync"
            if not spec_for(call).available_on(target):
                call = "fsync"
            return [(call, args)]
        if source != "darwin" and target == "darwin":
            if options.fsync_mode == "durable":
                return [("fcntl", {"fd": args["fd"], "cmd": "F_FULLFSYNC"})]
            return [("fsync", args)]
        return [(_native_name(name, target) or "fsync", args)]

    # fcntl hint commands.
    if spec.kind == "fcntl":
        cmd = args.get("cmd", "")
        if cmd in _HINT_FCNTL and target != "darwin":
            if cmd == "F_RDADVISE":
                if spec_for("posix_fadvise").available_on(target):
                    return [
                        (
                            "posix_fadvise",
                            {
                                "fd": args["fd"],
                                "offset": args.get("offset", 0),
                                "length": args.get("arg", 0) or 0,
                                "advice": "POSIX_FADV_WILLNEED",
                            },
                        )
                    ]
                return [] if options.ignore_unsupported_hints else [("flock", args)]
            if cmd == "F_PREALLOCATE":
                if spec_for("fallocate").available_on(target):
                    return [
                        (
                            "fallocate",
                            {"fd": args["fd"], "offset": 0, "length": args.get("arg", 0) or 0},
                        )
                    ]
                if spec_for("posix_fallocate").available_on(target):
                    return [
                        (
                            "posix_fallocate",
                            {"fd": args["fd"], "offset": 0, "length": args.get("arg", 0) or 0},
                        )
                    ]
                return []
            if cmd == "F_NOCACHE":
                return []  # no portable equivalent; ignore
        name_native = "fcntl"
        return [(name_native, args)]

    # Darwin's atomic swap: a link and two renames (section 4.3.4).
    if spec.kind == "exchangedata" and target != "darwin":
        path1 = args["path1"]
        path2 = args["path2"]
        tmp = path1 + ".exch-tmp"
        return [
            ("link", {"target": path1, "path": tmp}),
            ("rename", {"old": path2, "new": path1}),
            ("rename", {"old": tmp, "new": path2}),
        ]

    native = _native_name(name, target)
    if native is None:
        # Hint-like call with no analogue: skip.
        if spec.category in ("hint",):
            return []
        # Fall back to executing the semantic kind directly; the
        # executor dispatches on kind, so pick any registered name with
        # that kind available on the target.
        for candidate in _same_kind_names(spec.kind, target):
            return [(candidate, args)]
        return []
    return [(native, args)]


def _same_kind_names(kind, target):
    from repro.syscalls.registry import REGISTRY

    for name, spec in sorted(REGISTRY.items()):
        if spec.kind == kind and spec.available_on(target):
            yield name


def emulation_count():
    """How many distinct calls have emulation treatment (the paper's 19)."""
    return sum(len(v) for v in EMULATED_CALLS.values())
