"""System-call knowledge base.

- :mod:`repro.syscalls.registry` -- specs for 90+ calls across Linux,
  Darwin, FreeBSD, and Illumos: semantic kind, Figure-10 category,
  platform availability.
- :mod:`repro.syscalls.execute` -- one executor used both when tracing a
  live workload and when replaying a compiled benchmark, so replayed
  semantics match traced semantics by construction.
- :mod:`repro.syscalls.emulation` -- ARTC's 19 cross-platform
  pseudo-call emulations (Darwin-only calls replayed elsewhere).
"""

from repro.syscalls.registry import REGISTRY, SyscallSpec, spec_for
from repro.syscalls.execute import ExecContext, perform

__all__ = ["REGISTRY", "SyscallSpec", "spec_for", "perform", "ExecContext"]
