"""Live (``--follow``) replay: the freeze-the-world scoreboard.

A batch replay thread iterates a complete action list; a follow
thread iterates a queue the stream compiler is still filling.  The
single divergence point is starvation -- the queue is empty but the
trace has not ended -- and it is handled so that it leaves *no trace*
in the simulation:

- the starved thread yields a :class:`~repro.sim.events.Hold`, which
  parks it outside the engine queue (nothing scheduled, no sequence
  number consumed, simulated time untouched);
- :meth:`FollowRun.advance` drives the engine with
  :meth:`~repro.sim.engine.Engine.run_while`, which stops the instant
  a dispatch parks a process, so the engine *never runs while a
  thread is starved* (at most one thread can ever be starved -- the
  world froze the moment it happened);
- once the producer delivers the thread's next action,
  :meth:`FollowRun.feed` releases the hold, resuming the generator
  synchronously -- the exact inline continuation the batch replay
  would have executed.

Every other mechanism -- the per-thread gates, pending-predecessor
counters, precompiled fast path, report assembly -- is inherited from
:class:`repro.artc.replayer._ReplayRun` unchanged.  Follow replay is
therefore byte-identical to batch replay (same report, same FS state,
same simulated clock) by construction; ``tests/stream`` checks it
anyway, across modes and cores.

Scoreboard-incremental bookkeeping: feeding action ``i`` counts its
still-incomplete waits as ``pending[i]`` and registers ``i`` as a
successor of each, in wait-list order -- the same (src, dst) visit
order the batch scoreboard produces, so gate wakeups happen in the
same order and the engine's heap evolves identically.

Supported envelope: the scoreboard cores (``auto`` / ``scoreboard``),
ARTC / single-threaded / unconstrained modes, any timing, with or
without attached observability.  Temporal mode, the events and JIT
cores, hardening, and crash-resume use the deferred-start path in
:mod:`repro.stream.follow` (ingest everything, then batch replay --
still streamed ingestion, identical output, no live overlap).
"""

from collections import deque

from repro.artc import planir
from repro.artc.replayer import _ReplayRun, ReplayError
from repro.core.deps import DependencyGraph
from repro.core.modes import ReplayMode
from repro.sim.events import Delay, Gate, Hold


class _StreamBenchmark(object):
    """The minimal benchmark-shaped shell a :class:`FollowRun` hands
    to the :class:`_ReplayRun` constructor.  It retains *no* actions
    (windowed replay owns their lifetime); batch-only affordances
    (payloads, by_thread) are absent by design."""

    content_key = None

    def __init__(self, ruleset, snapshot, platform, label, roster):
        self.actions = ()
        self.ruleset = ruleset
        self.snapshot = snapshot
        self.platform = platform
        self.label = label
        self.graph = DependencyGraph(0, program_seq=ruleset.program_seq)
        self.threads = list(roster)


class FollowRun(_ReplayRun):
    """A scoreboard replay run fed one compiled action at a time."""

    def __init__(self, ruleset, fs, config, roster, platform, label=""):
        shell = _StreamBenchmark(ruleset, None, platform, label, roster)
        _ReplayRun.__init__(self, shell, fs, config)
        if not self.scoreboard:
            raise ReplayError(
                "follow replay requires a scoreboard-core configuration"
            )
        mode = config.mode
        self._single = mode == ReplayMode.SINGLE or (
            mode == ReplayMode.ARTC and ruleset.program_seq
        )
        self._artc = mode == ReplayMode.ARTC and not self._single
        self._use_reduced = config.reduced_deps
        self._roster = list(roster)
        self._appeared = set()
        self._queues = {tid: deque() for tid in self._roster}
        self._queue_all = deque()  # single-threaded replay order
        self._eof = False
        self._starved = None  # (tid, Hold) while the world is frozen
        self.fed = 0
        self.replayed = 0
        self._done = []
        # Scoreboard state, grown per fed action (built whole-graph by
        # _setup_scoreboard in batch runs).
        self._sb_pending = []
        self._sb_succs = []
        self._sb_tid = []
        self._sb_gates = {tid: Gate() for tid in self._roster}
        self._sb_waiting = {}
        self._finish = (
            self._follow_complete if self._artc else self._mark_done
        )
        self._processes = []
        self._started = False

    # -- lifecycle -----------------------------------------------------

    def start(self):
        """Spawn the replay threads (roster order = first-appearance
        order, matching batch ``by_thread()``) over still-empty
        queues.  Call once, before the first :meth:`feed`."""
        if self._started:
            raise ReplayError("follow replay already started")
        self._started = True
        if self._fast:
            # Per-action entries compiled at feed time and freed after
            # their single use (batch precompiles the whole list).
            self._exec_plan = {}
            self._meta_delay = Delay(self.fs.stack.META_CPU)
            self._plan_key = planir.plan_key(
                self.source, self.target,
                self.config.o_excl_fix, self.config.emulation,
            )
        self.report.started = self.engine.now
        if self._single:
            self._processes.append(
                self.engine.spawn(
                    self._follow_single(), name="replay-single"
                )
            )
        else:
            for tid in self._roster:
                self._processes.append(
                    self.engine.spawn(
                        self._follow_thread(tid), name="replay-T%s" % tid
                    )
                )

    def feed(self, compiled):
        """Hand one compiled action to its replay thread.  Must be
        called only while the engine is idle (between
        :meth:`advance` slices); releases the starved thread when this
        is the action it is waiting for."""
        action = compiled.action
        tid = action.record.tid
        idx = action.idx
        if tid not in self._appeared:
            # The roster must list threads in first-appearance order:
            # batch replay spawns threads in that order, and spawn
            # order decides engine scheduling.
            expected = (
                self._roster[len(self._appeared)]
                if len(self._appeared) < len(self._roster)
                else None
            )
            if tid != expected:
                raise ReplayError(
                    "trace thread %r appeared out of roster order"
                    " (roster %r expected %r next)"
                    % (tid, self._roster, expected)
                )
            self._appeared.add(tid)
        self._done.append(False)
        self._sb_tid.append(tid)
        self._sb_pending.append(0)
        self._sb_succs.append([])
        if self._artc:
            waits = compiled.preds
            if self._use_reduced and compiled.wait is not None:
                waits = compiled.wait
            pending = 0
            done = self._done
            succs = self._sb_succs
            for src in waits:
                if not done[src]:
                    pending += 1
                    succs[src].append(idx)
            self._sb_pending[idx] = pending
        if self._fast:
            self._exec_plan[idx] = planir.compile_entry(
                action, self._plan_key, self.config.emulation
            )
        if self._single:
            self._queue_all.append(action)
        else:
            self._queues[tid].append(action)
        self.fed += 1
        starved = self._starved
        if starved is not None and (self._single or starved[0] == tid):
            self._starved = None
            starved[1].release()

    def finish_input(self):
        """No more actions will arrive: starved threads now terminate
        instead of parking."""
        self._eof = True
        starved = self._starved
        if starved is not None:
            self._starved = None
            starved[1].release()

    def advance(self):
        """Run the simulation until a thread starves (the world
        freezes) or the engine queue drains.  Returns True while the
        run still has live threads."""
        self.engine.run_while(lambda: self._starved is None)
        return any(process.alive for process in self._processes)

    @property
    def starved_tid(self):
        return self._starved[0] if self._starved is not None else None

    @property
    def complete(self):
        return self._started and not any(
            process.alive for process in self._processes
        )

    def finalize(self):
        """Batch-identical report assembly; call after the run
        completed (or to salvage a partial report)."""
        stuck = [p.name for p in self._processes if p.alive]
        if stuck:
            # Mirrors the batch deadlock report; reachable only if the
            # compiled dependencies themselves are cyclic (the
            # follow-aware producer wait lives in follow.py and the
            # watchdog, not here).
            raise ReplayError(
                "replay deadlocked; threads still blocked: %s"
                % ", ".join(stuck)
            )
        self._finalize(self._processes)
        return self.report

    # -- completion hooks ---------------------------------------------

    def _mark_done(self, idx):
        self._done[idx] = True
        self.replayed += 1

    def _follow_complete(self, idx):
        """Batch ``_sb_complete`` plus the done flag the incremental
        feeder consults (kept in lockstep with the batch body: same
        successor visit order, same single gate wakeup)."""
        self._done[idx] = True
        self.replayed += 1
        pending = self._sb_pending
        waiting = self._sb_waiting
        for succ in self._sb_succs[idx]:
            left = pending[succ] - 1
            pending[succ] = left
            if not left and waiting:
                tid = self._sb_tid[succ]
                if waiting.get(tid) == succ:
                    del waiting[tid]
                    self._sb_gates[tid].open()

    # -- thread bodies -------------------------------------------------

    def _starve(self, tid):
        hold = Hold()
        self._starved = (tid, hold)
        return hold

    def _follow_thread(self, tid):
        """Queue-driven counterpart of ``_sb_thread`` (and, with no
        pending counters, of the unconstrained per-thread loop)."""
        queue = self._queues[tid]
        pending = self._sb_pending
        waiting = self._sb_waiting
        gate = self._sb_gates[tid]
        artc = self._artc
        fast = self._fast
        observed = self._obs is not None
        engine = self.engine
        while True:
            if not queue:
                if self._eof:
                    return
                yield self._starve(tid)
                continue
            action = queue.popleft()
            idx = action.idx
            if artc and pending[idx]:
                if observed:
                    wait_start = engine.now
                    self._c_waits.inc()
                    waiting[tid] = idx
                    yield gate
                    stalled = engine.now - wait_start
                    self._h_dep_wait.observe(stalled)
                    if stalled > 0:
                        self._spans.record(
                            "dep-wait", "wait", "T%s" % tid,
                            wait_start, engine.now, args={"before": idx},
                        )
                else:
                    waiting[tid] = idx
                    yield gate
            if fast:
                yield from self._exec_fast(action)
                self._exec_plan.pop(idx, None)  # consulted exactly once
                self._finish(idx)
            else:
                yield from self._play_one(action)

    def _follow_single(self):
        """Queue-driven counterpart of ``_single_thread[_fast]``: one
        global queue in trace order, no cross-thread bookkeeping (the
        done flags still feed window accounting)."""
        queue = self._queue_all
        fast = self._fast
        while True:
            if not queue:
                if self._eof:
                    return
                yield self._starve(None)
                continue
            action = queue.popleft()
            if fast:
                yield from self._exec_fast(action)
                self._exec_plan.pop(action.idx, None)
                self._finish(action.idx)
            else:
                yield from self._play_one(action)
