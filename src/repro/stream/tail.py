"""Tailing a growing trace: torn-tolerant incremental parsing.

:class:`TraceTailer` reads a trace that is still being written --
either one growing file or a watch-folder of segment files -- and
yields parsed :class:`~repro.tracing.trace.TraceRecord` objects as
complete lines land.  The tail protocol (docs/STREAMING.md):

- A line is consumed only once its terminating newline has been read.
  An unterminated final line is a *torn tail*: it stays buffered,
  unconsumed, until more bytes complete it (counted as a ``resync``)
  or the stream ends (one deduped ``torn-tail`` warning; never a
  crash).
- Complete-but-malformed lines are skippable garbage: one deduped
  :class:`~repro.tracing.trace.ParseWarnings` entry per failure kind,
  using the exact same classification as the tolerant batch loaders.
- Records are renumbered sequentially as they are emitted (garbage
  leaves no index holes), matching ``tolerant=True`` batch loads.
- In watch-folder mode the segments are read in sorted name order and
  behave exactly like the concatenation of their bytes: a segment is
  *sealed* once a later segment exists or the stream has ended, and an
  unterminated tail at a sealed segment's end carries over into the
  next segment (producers may cut segments mid-line).
- The stream ends when the done marker appears (``<file>.done``, or
  ``.done`` inside the watch folder) and every byte has been read.

Byte accounting is exact: ``position()`` is the resumable cursor
(segment ordinal + offset of consumed bytes), and a running SHA-256
over every consumed byte (:meth:`prefix_hexdigest`) lets a resume
prove the durable prefix was not rewritten underneath the checkpoint.

Reads are chunked and parsed records are handed out through a bounded
``poll(limit=...)``, so a consumer applying backpressure never forces
more than one chunk of lookahead into memory.
"""

import hashlib
import os
from collections import deque

from repro.errors import TraceError
from repro.tracing import strace
from repro.tracing.trace import ParseWarnings, parse_record_line

#: Bytes read from the source per drain step; bounds tailer lookahead.
CHUNK = 1 << 16


def _segment_names(path):
    try:
        names = os.listdir(path)
    except OSError:
        return []
    out = []
    for name in names:
        if name.startswith(".") or name.endswith(".tmp"):
            continue
        if os.path.isfile(os.path.join(path, name)):
            out.append(name)
    out.sort()
    return out


def hash_prefix(path, position):
    """SHA-256 of the consumed prefix a :meth:`TraceTailer.position`
    cursor describes -- what a resume recomputes to validate a
    checkpoint against the current on-disk bytes."""
    seg = position.get("segment", 0)
    offset = position.get("offset", 0)
    sha = hashlib.sha256()

    def _feed(file_path, limit=None):
        with open(file_path, "rb") as handle:
            left = limit
            while True:
                chunk = handle.read(CHUNK if left is None else min(CHUNK, left))
                if not chunk:
                    break
                sha.update(chunk)
                if left is not None:
                    left -= len(chunk)
                    if left <= 0:
                        break

    if os.path.isdir(path):
        names = _segment_names(path)
        for name in names[:seg]:
            _feed(os.path.join(path, name))
        if offset and seg < len(names):
            _feed(os.path.join(path, names[seg]), offset)
    elif offset:
        _feed(path, offset)
    return sha.hexdigest()


class TraceTailer(object):
    """Incremental, torn-tolerant reader of a growing trace source."""

    def __init__(self, path, warnings=None, done_marker=None):
        self.path = path
        self.is_dir = os.path.isdir(path)
        self.warnings = warnings if warnings is not None else ParseWarnings()
        if done_marker is None:
            done_marker = (
                os.path.join(path, ".done") if self.is_dir else path + ".done"
            )
        self.done_marker = done_marker
        self.header = {"platform": "linux", "label": "", "thread_roster": None}
        self.saw_header = False
        self.records_read = 0
        self.resyncs = 0
        self.finished = False
        self._segments = []
        # Two cursors: *consumed* (the resumable position) trails
        # *read* by exactly the pending torn tail, possibly across
        # segment boundaries.
        self._seg = 0
        self._offset = 0  # consumed bytes within segment _seg
        self._read_seg = 0
        self._read_off = 0  # bytes handed to the line splitter
        self._sealed_sizes = {}  # seg index -> size, read past but not consumed past
        self._total = 0  # consumed bytes across the whole stream
        self._pending = b""  # read-but-unconsumed torn tail
        self._starved = False  # hit end-of-available-bytes mid-line
        self._line_number = 0
        self._prefix = hashlib.sha256()
        self._ready = deque()

    # -- metadata ------------------------------------------------------

    @property
    def fmt(self):
        """``"strace"`` or ``"json"``; decided by the source (first
        segment) name, like the batch loaders."""
        name = self.path
        if self.is_dir:
            if not self._segments:
                self._segments = _segment_names(self.path)
            name = self._segments[0] if self._segments else ""
        return "strace" if name.endswith(".strace") else "json"

    @property
    def platform(self):
        return self.header["platform"]

    @property
    def label(self):
        return self.header["label"]

    @property
    def thread_roster(self):
        return self.header["thread_roster"]

    @property
    def drained(self):
        """The stream ended and every parsed record was handed out."""
        return self.finished and not self._ready

    def position(self):
        """The resumable cursor: consumed bytes only (the torn tail is
        not consumed until completed or flushed)."""
        return {"segment": self._seg, "offset": self._offset}

    def prefix_hexdigest(self):
        return self._prefix.copy().hexdigest()

    def lag_bytes(self):
        """Bytes written by the producer but not yet consumed."""
        try:
            if self.is_dir:
                names = _segment_names(self.path)
                total = sum(
                    os.path.getsize(os.path.join(self.path, name))
                    for name in names
                )
            else:
                total = os.path.getsize(self.path)
        except OSError:
            return 0
        return max(0, total - self._total - len(self._pending))

    # -- polling -------------------------------------------------------

    def poll(self, limit=None):
        """Consume what the producer has written (bounded lookahead)
        and return up to ``limit`` new records (all of them when
        None)."""
        if not self.finished:
            self._fill(limit)
        if limit is None:
            out = list(self._ready)
            self._ready.clear()
        else:
            out = []
            while self._ready and len(out) < limit:
                out.append(self._ready.popleft())
        return out

    def _fill(self, limit):
        done_seen = os.path.exists(self.done_marker)
        if self.is_dir:
            self._segments = _segment_names(self.path)
        while limit is None or len(self._ready) < limit:
            if self.is_dir and self._read_seg >= len(self._segments):
                if done_seen:
                    self._flush_tail()
                    self.finished = True
                return
            read = self._drain_chunk()
            if read:
                continue
            # Source exhausted for now: seal/advance or finish.
            if self.is_dir:
                if self._read_seg + 1 < len(self._segments) or done_seen:
                    # Seal this segment; any pending torn tail carries
                    # over into the next segment's bytes.
                    self._sealed_sizes[self._read_seg] = self._read_off
                    self._read_seg += 1
                    self._read_off = 0
                    continue
                return
            if done_seen:
                self._flush_tail()
                self.finished = True
            return

    def _current_path(self):
        if self.is_dir:
            return os.path.join(self.path, self._segments[self._read_seg])
        return self.path

    def _drain_chunk(self):
        """Read one bounded chunk of new bytes; returns True if any
        byte was read (progress was made)."""
        src = self._current_path()
        try:
            size = os.path.getsize(src)
        except OSError:
            self._starved = bool(self._pending)
            return False
        if size <= self._read_off:
            self._starved = bool(self._pending)
            return False
        with open(src, "rb") as handle:
            handle.seek(self._read_off)
            data = handle.read(CHUNK)
        if not data:
            self._starved = bool(self._pending)
            return False
        self._read_off += len(data)
        buf = self._pending + data
        lines = buf.split(b"\n")
        tail = lines.pop()
        if self._starved and lines:
            # A tail torn at end-of-available-bytes (not merely at one
            # of our own chunk boundaries) was completed by the
            # producer's later writes.
            self.resyncs += 1
        self._starved = False
        self._pending = tail
        for raw in lines:
            self._consume_line(raw + b"\n")
        return True

    def _advance_consumed(self, nbytes):
        """Move the consumed cursor forward ``nbytes``, rolling over
        sealed segment boundaries the read cursor already crossed."""
        self._total += nbytes
        while self._seg in self._sealed_sizes:
            room = self._sealed_sizes[self._seg] - self._offset
            if nbytes < room:
                break
            nbytes -= room
            del self._sealed_sizes[self._seg]
            self._seg += 1
            self._offset = 0
        self._offset += nbytes

    def _flush_tail(self):
        """End-of-stream (or sealed-segment) handling of an
        unterminated final line: consume it; if it parses it was
        simply missing its newline, otherwise it is a torn write --
        one deduped warning, never a crash."""
        raw, self._pending = self._pending, b""
        self._starved = False
        if raw:
            self._consume_line(raw, torn_kind="torn-tail")

    def _consume_line(self, raw, torn_kind=None):
        line_start = self._total
        self._prefix.update(raw)
        self._advance_consumed(len(raw))
        self._line_number += 1
        line = raw.decode("utf-8", "replace").strip()
        if not line:
            return
        if self.fmt == "strace":
            if line.startswith("#"):
                strace.parse_header_line(line, self.header)
                self.saw_header = True
                return
            self.saw_header = True  # headerless strace is legal
            record, kind = strace.parse_line(line, self.records_read)
        else:
            if not self.saw_header:
                self._consume_header(line, line_start)
                return
            record, kind = parse_record_line(line, self.records_read)
        if record is None:
            self.warnings.warn(
                torn_kind or kind, self._line_number, line_start, line[:120]
            )
            return
        record.idx = self.records_read
        self.records_read += 1
        self._ready.append(record)

    def _consume_header(self, line, line_start):
        """JSON-lines header (the first complete line).  A complete
        but invalid header is not recoverable garbage -- the whole
        stream is the wrong format -- so it raises, exactly like the
        batch loader."""
        import json

        try:
            header = json.loads(line)
            if not isinstance(header, dict):
                raise ValueError("header is not an object")
        except ValueError:
            raise TraceError(
                "not a repro trace (unparseable header)",
                self._line_number, line, line_start,
            ) from None
        if header.get("format") != "repro-trace-v1":
            raise TraceError(
                "not a repro trace (bad header)",
                self._line_number, line, line_start,
            )
        self.header["platform"] = header.get("platform", "linux")
        self.header["label"] = header.get("label", "")
        if header.get("threads"):
            self.header["thread_roster"] = list(header["threads"])
        self.saw_header = True
