"""Streaming trace ingestion (docs/STREAMING.md).

The batch pipeline compiles a finished trace file in one pass.  This
package compiles a trace *while it is being written* -- tailing a
growing file (or a watch-folder of segments), tolerating torn tails,
keeping the dependency-graph working set inside a bounded window, and
optionally replaying the compiled actions live behind
``artc replay --follow``.

Everything is built on the same incremental builders the batch
compiler uses (:class:`repro.core.model.ModelBuilder`,
:class:`repro.core.deps.DependencyBuilder`,
:class:`repro.core.reduce.IncrementalReducer`), which is what makes a
streamed compile identical to ``artc compile`` by construction rather
than by testing alone.
"""

from repro.stream.checkpoint import (
    CHECKPOINT_FORMAT,
    load_checkpoint,
    save_checkpoint,
)
from repro.stream.compile import StreamCompiler
from repro.stream.digest import ActionChain, benchmark_digest, stream_digest_of
from repro.stream.follow import StreamStatus, follow_replay, ingest_trace
from repro.stream.tail import TraceTailer

__all__ = [
    "ActionChain",
    "CHECKPOINT_FORMAT",
    "StreamCompiler",
    "StreamStatus",
    "TraceTailer",
    "benchmark_digest",
    "follow_replay",
    "ingest_trace",
    "load_checkpoint",
    "save_checkpoint",
    "stream_digest_of",
]
