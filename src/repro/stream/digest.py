"""Stream-stable compile digests.

Two digests prove streamed and batch compiles equal:

- :func:`benchmark_digest`: SHA-256 of the canonical benchmark payload
  with the volatile ``stats`` block (wall-clock compile time) removed.
  Needs the whole benchmark in memory, so it is the *batch* identity
  check.
- :class:`ActionChain`: a running SHA-256 chained over a header plus
  one canonical JSON entry per compiled action.  O(1) memory, so a
  windowed streaming compile -- which never holds the whole benchmark
  -- can produce it; :func:`stream_digest_of` computes the same chain
  from a finished benchmark for comparison.

Both sides of every identity test in ``tests/stream`` compare these
hex digests, and ``artc compile --stream`` / ``artc replay --follow``
print them.
"""

import hashlib
import json

from repro.core.modes import RuleSet


def _canon(obj):
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _ruleset_dict(ruleset):
    return {flag: getattr(ruleset, flag) for flag in RuleSet.__slots__}


def benchmark_digest(benchmark):
    """Canonical digest of a compiled benchmark, excluding the
    volatile ``stats`` block (two identical compiles differ only in
    ``compile_seconds``)."""
    payload = benchmark.to_payload()
    payload.pop("stats", None)
    return hashlib.sha256(_canon(payload)).hexdigest()


class ActionChain(object):
    """Running digest over (header, action*) in compile order.

    The hashlib object stays in memory; :meth:`hexdigest` snapshots a
    copy, so checkpoints can record the chain state at any action
    boundary without finalizing it.
    """

    def __init__(self):
        self._hash = hashlib.sha256()
        self.count = 0

    def header(self, platform, label, ruleset, snapshot):
        self._hash.update(
            _canon(
                {
                    "platform": platform,
                    "label": label,
                    "ruleset": _ruleset_dict(ruleset),
                    "snapshot": (
                        json.loads(snapshot.dumps()) if snapshot else None
                    ),
                }
            )
        )

    def update(self, record_dict, ann, predelay, deps, reduced):
        """Mix in one compiled action.  ``deps`` is the full
        predecessor set (any order; canonicalized here), ``reduced``
        the transitively-reduced wait list (order-significant) or None
        when reduction was skipped."""
        self._hash.update(
            _canon(
                {
                    "record": record_dict,
                    "ann": ann,
                    "predelay": predelay,
                    "deps": sorted(deps),
                    "reduced": list(reduced) if reduced is not None else None,
                }
            )
        )
        self.count += 1

    def hexdigest(self):
        return self._hash.copy().hexdigest()


def stream_digest_of(benchmark):
    """The :class:`ActionChain` digest of a finished benchmark: what a
    streamed compile of the same trace reports, computable from the
    batch side for identity checks."""
    chain = ActionChain()
    chain.header(
        benchmark.platform, benchmark.label, benchmark.ruleset, benchmark.snapshot
    )
    reduced = benchmark.graph.reduced_preds
    for action in benchmark.actions:
        chain.update(
            action.record.to_dict(),
            action.ann,
            action.predelay,
            benchmark.graph.preds[action.idx],
            reduced[action.idx] if reduced is not None else None,
        )
    return chain.hexdigest()
