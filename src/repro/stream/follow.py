"""The follow controller: tail -> compile -> replay, with
backpressure, retirement, checkpoints, and the producer watchdog.

Two entry points:

- :func:`ingest_trace` -- streamed *compilation* only (``artc compile
  --stream`` and the ``stream`` serve job): tail the source, feed a
  retain-mode :class:`~repro.stream.compile.StreamCompiler`, write
  periodic checkpoints, and (once the producer finishes) return the
  same :class:`~repro.artc.benchmark.CompiledBenchmark` the batch
  compiler would have produced.
- :func:`follow_replay` -- ``artc replay --follow``: everything above
  plus a live :class:`~repro.stream.replay.FollowRun` consuming the
  compiled actions as they land.  Within the supported envelope
  (scoreboard cores; ARTC / single / unconstrained modes; a thread
  roster in the trace header) the replay runs concurrently with
  ingestion under a bounded window; outside it, the controller falls
  back to *deferred start* -- streamed ingestion to completion, then
  an ordinary batch replay -- with identical output either way.

Flow control (live path):

- the *window* is the count of compiled-but-unreplayed actions plus
  parsed-but-uncompiled records.  While it is at the cap, ingestion
  pauses (the trace file itself is the buffer; ``backpressure_pauses``
  counts the stalls) instead of accumulating unbounded state.
- a *starved* replay thread overrides the cap: records are fed, in
  trace order, until the action it needs arrives (``cap_overrides``
  counts the overshoot).  Draining around a starved thread is not an
  option -- it would change engine scheduling and break byte-identity.
- when replay catches the producer, the controller blocks in
  wall-clock time (simulated time frozen), polling the source every
  ``poll`` seconds; after ``idle_timeout`` seconds without producer
  progress it aborts with an ``awaiting producer (lag=...)``
  diagnosis rather than a spurious deadlock report.

Crash resume (both entry points): checkpoints record byte positions
and chained digests, not compiler state -- the trace is the
write-ahead log.  ``resume=True`` re-reads the durable prefix from
byte zero, re-deriving state deterministically, and *validates* the
re-derivation against the checkpoint (prefix hash up front, action
chain at the checkpoint boundary), refusing to continue over a
rewritten file or a diverging derivation.
"""

import time
from collections import deque

from repro.artc.replayer import ReplayConfig, replay
from repro.core.modes import ReplayMode
from repro.errors import ReplayAborted, TraceError
from repro.obs.context import of_engine
from repro.stream.checkpoint import Checkpointer, load_checkpoint
from repro.stream.compile import StreamCompiler
from repro.stream.replay import FollowRun
from repro.stream.tail import TraceTailer, hash_prefix

#: Feed interval between retirement sweeps (ref-floor scans).
RETIRE_EVERY = 64

#: Default bounded-window cap (actions), overridable per call/CLI.
DEFAULT_WINDOW = 4096


class StreamStatus(object):
    """Mutable live view of one streamed run; exported as the
    ``stream`` block of ``--json`` output and mirrored to ``stream.*``
    metrics when observability is attached."""

    def __init__(self, mode="live"):
        self.mode = mode
        self.records = 0
        self.fed = 0
        self.replayed = 0
        self.window = 0
        self.window_high_water = 0
        self.window_cap = 0
        self.retired = 0
        self.live_vectors = 0
        self.resyncs = 0
        self.cap_overrides = 0
        self.backpressure_pauses = 0
        self.producer_waits = 0
        self.checkpoints_written = 0
        self.resume_verified = False
        self.digest = None
        self.warnings = {}
        self.eof = False

    @property
    def drained(self):
        return self.eof

    def lag(self):
        """Actions the producer is ahead of the replay."""
        return max(0, self.records - self.replayed)

    def to_dict(self):
        return {
            "mode": self.mode,
            "records": self.records,
            "fed": self.fed,
            "replayed": self.replayed,
            "window_high_water": self.window_high_water,
            "window_cap": self.window_cap,
            "retired": self.retired,
            "live_vectors": self.live_vectors,
            "resyncs": self.resyncs,
            "cap_overrides": self.cap_overrides,
            "backpressure_pauses": self.backpressure_pauses,
            "producer_waits": self.producer_waits,
            "checkpoints_written": self.checkpoints_written,
            "resume_verified": self.resume_verified,
            "digest": self.digest,
            "warnings": self.warnings,
        }


def export_stream_metrics(obs, status):
    """Mirror a finished run's stream counters to ``stream.*`` gauges."""
    metrics = obs.metrics
    numeric = status.to_dict()
    numeric.pop("mode", None)
    numeric.pop("digest", None)
    numeric.pop("warnings", None)
    numeric["resume_verified"] = int(status.resume_verified)
    for name, value in numeric.items():
        metrics.gauge("stream.%s" % name).set(value)


class _ResumeCheck(object):
    """Deferred checkpoint validation: prefix hash up front, action
    chain once re-derivation reaches the checkpoint boundary."""

    def __init__(self, checkpoint, path):
        self.actions = checkpoint["actions"]
        self.chain = checkpoint["actions_sha256"]
        self.verified = False
        prefix = hash_prefix(path, checkpoint.get("position", {}))
        if prefix != checkpoint["prefix_sha256"]:
            raise TraceError(
                "stream checkpoint does not match %s: the consumed"
                " prefix was rewritten (checkpoint %s, file %s)"
                % (path, checkpoint["prefix_sha256"][:12], prefix[:12])
            )

    def check(self, compiler):
        if self.verified or compiler.fed != self.actions:
            return
        derived = compiler.chain.hexdigest()
        if derived != self.chain:
            raise TraceError(
                "stream resume diverged at action %d: re-derived chain"
                " %s, checkpoint recorded %s"
                % (self.actions, derived[:12], self.chain[:12])
            )
        self.verified = True


def _producer_wait(tailer, status, poll, idle_timeout, waited):
    """One wall-clock wait step while the producer is behind; raises
    the follow watchdog's diagnosis after ``idle_timeout`` idle
    seconds."""
    if idle_timeout is not None and waited >= idle_timeout:
        raise ReplayAborted(
            "follow watchdog: no producer progress for %gs;"
            " awaiting producer (lag=%d records, %d fed, %d replayed)"
            % (waited, status.lag(), status.fed, status.replayed),
            context={"stream": status.to_dict()},
        )
    status.producer_waits += 1
    time.sleep(poll)
    return waited + poll


def _await_first(tailer, pending, status, poll, idle_timeout):
    """Block until the stream reveals its header (first record or a
    clean empty end)."""
    waited = 0.0
    while True:
        got = tailer.poll(limit=1)
        if got:
            pending.extend(got)
            return
        if tailer.drained:
            return
        waited = _producer_wait(tailer, status, poll, idle_timeout, waited)


def _live_supported(config, roster):
    """Whether this configuration can replay concurrently with
    ingestion (the scoreboard envelope plus a known thread roster);
    everything else takes the deferred-start path."""
    return (
        roster is not None
        and config.harden is None
        and not config.resume_completed
        and not config.reopen_actions
        and config.mode != ReplayMode.TEMPORAL
        and config.core in ("auto", "scoreboard")
    )


class IngestResult(object):
    """What :func:`ingest_trace` returns.  ``benchmark`` is None until
    the producer finishes (``finished``); counts and the running
    digest are always present."""

    def __init__(self, benchmark, status, position, finished):
        self.benchmark = benchmark
        self.status = status
        self.position = position
        self.finished = finished

    @property
    def digest(self):
        return self.status.digest


def ingest_trace(
    path,
    ruleset=None,
    snapshot=None,
    label=None,
    reduce=True,
    checkpoint_path=None,
    checkpoint_every=256,
    resume=False,
    poll=0.05,
    idle_timeout=None,
    wait=True,
    _tailer=None,
    _pending=None,
):
    """Streamed (retain-mode) compile of a growing trace.

    With ``wait=True`` blocks (wall-clock polling) until the producer
    finishes and returns an :class:`IngestResult` carrying the
    compiled benchmark.  With ``wait=False`` consumes only what is
    available right now -- the serve job's stateless resumable step --
    returning ``finished=False`` (and no benchmark) if the producer is
    still going.
    """
    status = StreamStatus(mode="ingest")
    tailer = _tailer if _tailer is not None else TraceTailer(path)
    pending = _pending if _pending is not None else deque()
    checkpointer = (
        Checkpointer(checkpoint_path, every=checkpoint_every)
        if checkpoint_path
        else None
    )
    verify = None
    if resume and checkpoint_path:
        checkpoint = load_checkpoint(checkpoint_path)
        if checkpoint is not None:
            verify = _ResumeCheck(checkpoint, path)
    if not pending and not tailer.drained:
        if wait:
            _await_first(tailer, pending, status, poll, idle_timeout)
        else:
            pending.extend(tailer.poll())
    compiler = StreamCompiler(
        ruleset,
        snapshot,
        platform=tailer.platform,
        label=label if label is not None else tailer.label,
        retain=True,
        reduce=reduce,
    )
    waited = 0.0
    while True:
        while pending:
            compiler.feed(pending.popleft())
            if verify is not None:
                verify.check(compiler)
            if checkpointer is not None:
                checkpointer.maybe(tailer, compiler)
        got = tailer.poll()
        if got:
            waited = 0.0
            pending.extend(got)
            continue
        if tailer.drained:
            break
        if not wait:
            break
        waited = _producer_wait(tailer, status, poll, idle_timeout, waited)
    finished = tailer.drained and not pending
    if checkpointer is not None:
        checkpointer.write(tailer, compiler)
        status.checkpoints_written = checkpointer.written
    status.records = tailer.records_read
    status.fed = compiler.fed
    status.resyncs = tailer.resyncs
    status.warnings = tailer.warnings.to_dict()
    status.digest = compiler.digest()
    status.eof = finished
    status.resume_verified = verify.verified if verify is not None else False
    benchmark = compiler.finish_benchmark() if finished else None
    return IngestResult(benchmark, status, tailer.position(), finished)


def follow_replay(
    path,
    fs,
    config=None,
    ruleset=None,
    snapshot=None,
    label=None,
    window=DEFAULT_WINDOW,
    poll=0.05,
    idle_timeout=None,
    checkpoint_path=None,
    checkpoint_every=256,
    resume=False,
    reduce=True,
):
    """Replay ``path`` while it is being written.  Returns
    ``(report, status)``; the report is byte-identical to compiling
    the finished trace and replaying it batch."""
    if config is None:
        config = ReplayConfig()
    status = StreamStatus()
    tailer = TraceTailer(path)
    pending = deque()
    _await_first(tailer, pending, status, poll, idle_timeout)
    roster = tailer.thread_roster
    if not _live_supported(config, roster):
        # Deferred start: stream the compile to completion (same tail
        # tolerance, same checkpoints), then replay batch.
        result = ingest_trace(
            path,
            ruleset=ruleset,
            snapshot=snapshot,
            label=label,
            reduce=reduce,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            resume=resume,
            poll=poll,
            idle_timeout=idle_timeout,
            wait=True,
            _tailer=tailer,
            _pending=pending,
        )
        status = result.status
        status.mode = "deferred"
        report = replay(result.benchmark, fs, config)
        status.replayed = len(report.results)
        obs = of_engine(fs.engine)
        if obs is not None:
            export_stream_metrics(obs, status)
        return report, status

    checkpointer = (
        Checkpointer(checkpoint_path, every=checkpoint_every)
        if checkpoint_path
        else None
    )
    verify = None
    if resume and checkpoint_path:
        checkpoint = load_checkpoint(checkpoint_path)
        if checkpoint is not None:
            verify = _ResumeCheck(checkpoint, path)
    compiler = StreamCompiler(
        ruleset,
        snapshot,
        platform=tailer.platform,
        label=label if label is not None else tailer.label,
        retain=False,
        reduce=reduce,
    )
    run = FollowRun(
        compiler.ruleset,
        fs,
        config,
        roster,
        platform=tailer.platform,
        label=label if label is not None else tailer.label,
    )
    run.stream = status
    status.window_cap = window
    run.start()

    def feed_one(record):
        compiled = compiler.feed(record)
        run.feed(compiled)
        if verify is not None:
            verify.check(compiler)
        if compiler.fed % RETIRE_EVERY == 0:
            compiler.retire()
        if checkpointer is not None:
            checkpointer.maybe(tailer, compiler)
        status.fed = compiler.fed
        status.replayed = run.replayed
        live = (run.fed - run.replayed) + len(pending)
        status.window = live
        if live > status.window_high_water:
            status.window_high_water = live

    waited = 0.0
    try:
        while True:
            if run.complete:
                break
            if run._starved is not None:
                # The world is frozen on one thread's next action:
                # feed toward it (trace order), cap overridden.
                if not pending:
                    got = tailer.poll(limit=1)
                    if got:
                        pending.extend(got)
                if pending:
                    waited = 0.0
                    if run.fed - run.replayed >= window:
                        status.cap_overrides += 1
                    feed_one(pending.popleft())
                    continue
                if tailer.drained:
                    run.finish_input()
                    continue
                status.records = tailer.records_read
                waited = _producer_wait(
                    tailer, status, poll, idle_timeout, waited
                )
                continue
            # Engine runnable: top the window up, then advance.
            room = window - ((run.fed - run.replayed) + len(pending))
            while room > 0:
                if not pending:
                    got = tailer.poll(limit=min(room, 256))
                    if not got:
                        break
                    pending.extend(got)
                feed_one(pending.popleft())
                room -= 1
            if room <= 0 and (pending or tailer.lag_bytes() > 0):
                status.backpressure_pauses += 1
            if not pending and tailer.drained and not run._eof:
                run.finish_input()
            alive = run.advance()
            if not alive:
                break
            if run._eof and run._starved is None:
                break  # drained with stuck threads; finalize diagnoses
    finally:
        compiler.retire()
        status.records = tailer.records_read
        status.fed = compiler.fed
        status.replayed = run.replayed
        status.window = (run.fed - run.replayed) + len(pending)
        status.retired = compiler.retired
        status.live_vectors = compiler.live_vectors
        status.resyncs = tailer.resyncs
        status.warnings = tailer.warnings.to_dict()
        status.digest = compiler.digest()
        status.eof = tailer.drained
        status.resume_verified = verify.verified if verify is not None else False
        if checkpointer is not None:
            if tailer.drained:
                checkpointer.write(tailer, compiler)
            status.checkpoints_written = checkpointer.written

    report = run.finalize()
    obs = of_engine(fs.engine)
    if obs is not None:
        export_stream_metrics(obs, status)
    return report, status
