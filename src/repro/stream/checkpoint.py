"""Crash-resumable ingestion checkpoints.

A checkpoint records how far ingestion got -- the byte position in the
trace source, counts, and two verification hashes -- *not* the
compiler's state.  The trace file itself is the write-ahead log: on
resume, the consumer re-reads the durable prefix and re-derives the
compiler state deterministically, then validates the re-derivation
against the checkpoint's chained action digest.  That keeps the
checkpoint tiny, format-stable, and impossible to desynchronize from
the data.

Fields (``artc-stream-checkpoint-v1``):

- ``position``: the tailer's source cursor (segment index + byte
  offset within it; segment is 0 for single-file sources);
- ``records`` / ``actions``: records consumed, actions compiled;
- ``prefix_sha256``: SHA-256 of every consumed byte, in order -- a
  resume first re-hashes the prefix and refuses to continue over a
  rewritten file;
- ``actions_sha256``: the :class:`~repro.stream.digest.ActionChain`
  state at this boundary -- after re-deriving, the chains must match
  or the resume aborts (the streaming analogue of translation
  validation);
- ``resyncs`` / ``warnings``: tolerant-parse bookkeeping so counts
  survive a crash.

Writes are atomic: serialize to ``<path>.tmp``, then ``os.replace``.
A reader therefore sees either the old checkpoint or the new one,
never a torn file.
"""

import json
import os

from repro.errors import TraceError

CHECKPOINT_FORMAT = "artc-stream-checkpoint-v1"


def save_checkpoint(path, data):
    """Atomically write ``data`` (stamped with the format tag)."""
    data = dict(data, format=CHECKPOINT_FORMAT)
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(data, handle, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return data


def load_checkpoint(path):
    """The checkpoint dict at ``path``, or None when absent.  A
    present-but-unreadable checkpoint raises :class:`TraceError` --
    silently restarting from zero would hide corruption."""
    if not os.path.exists(path):
        return None
    try:
        with open(path) as handle:
            data = json.load(handle)
    except ValueError:
        raise TraceError("unreadable stream checkpoint %s" % path) from None
    if not isinstance(data, dict) or data.get("format") != CHECKPOINT_FORMAT:
        raise TraceError(
            "not a stream checkpoint (bad format): %s" % path
        )
    return data


def checkpoint_data(tailer, compiler):
    """Assemble the checkpoint payload for one (tailer, compiler)
    boundary.  Call only between records (the chain digest is
    per-action-boundary by construction)."""
    return {
        "position": tailer.position(),
        "records": tailer.records_read,
        "actions": compiler.fed,
        "prefix_sha256": tailer.prefix_hexdigest(),
        "actions_sha256": compiler.chain.hexdigest(),
        "resyncs": tailer.resyncs,
        "warnings": tailer.warnings.to_dict(),
    }


class Checkpointer(object):
    """Periodic checkpoint writer: one atomic write every ``every``
    compiled actions, plus explicit finals."""

    def __init__(self, path, every=256):
        self.path = path
        self.every = max(1, int(every))
        self.written = 0
        self._last_actions = 0

    def maybe(self, tailer, compiler):
        if compiler.fed - self._last_actions >= self.every:
            self.write(tailer, compiler)

    def write(self, tailer, compiler):
        save_checkpoint(self.path, checkpoint_data(tailer, compiler))
        self.written += 1
        self._last_actions = compiler.fed
