"""Incremental trace compilation over a live record stream.

:class:`StreamCompiler` drives the exact builders the batch compiler
uses -- :class:`~repro.core.model.ModelBuilder` ->
:class:`~repro.core.deps.DependencyBuilder` ->
:class:`~repro.core.reduce.IncrementalReducer` -- one record at a
time, so the per-action output (annotations, predelay, predecessor
set, reduced wait list) is identical to ``artc compile`` of the same
prefix by construction.  Every fed action is mixed into an
:class:`~repro.stream.digest.ActionChain`, the O(1)-memory digest
both sides of the identity tests compare.

Two retention modes:

- ``retain=True`` (default): actions and the full attributed graph
  are kept; :meth:`finish_benchmark` packages them into the same
  :class:`~repro.artc.benchmark.CompiledBenchmark` the batch compiler
  returns.  Used by ``artc compile --stream`` and by the
  deferred-start follow path.
- ``retain=False`` (windowed): :meth:`feed` returns a
  :class:`CompiledAction` whose lifetime the caller owns, and the
  compiler keeps only the sliding tail of its own state: per-resource
  trackers (pruned on delete), the reducer's reach vectors for
  indices still citable as candidate edge sources (everything else is
  released by :meth:`retire`), and the current action's edge
  bookkeeping (:class:`TailGraph`).  The residual footprint per
  retired action is a few machine words (thread-slot ints); all heavy
  state is bounded by the window plus the live resource count.
"""

import time

from repro.artc.benchmark import CompiledBenchmark
from repro.core.deps import DependencyBuilder, DependencyGraph
from repro.core.model import ModelBuilder
from repro.core.modes import RuleSet
from repro.core.reduce import IncrementalReducer
from repro.stream.digest import ActionChain


class _TailEdgeKinds(object):
    """Tail substitute for ``DependencyGraph.edge_kinds``: the builder
    only ever tests membership for edges targeting the action being
    fed, so only the current destination's keys are retained and older
    entries collapse into a count (``n_edges`` stays exact)."""

    __slots__ = ("_dst", "_current", "_count")

    def __init__(self):
        self._dst = -1
        self._current = {}
        self._count = 0

    def __contains__(self, key):
        return key[1] == self._dst and key in self._current

    def __setitem__(self, key, kind):
        if key[1] != self._dst:
            self._count += len(self._current)
            self._current.clear()
            self._dst = key[1]
        self._current[key] = kind

    def __len__(self):
        return self._count + len(self._current)

    def __iter__(self):
        # Only the tail is iterable; full edge iteration is a batch
        # affordance windowed mode gives up.
        return iter(self._current)


class _TailList(object):
    """Tail substitute for a grow-only list: indices below the trim
    floor are released, later ones stay addressable."""

    __slots__ = ("_items", "_len", "_low")

    def __init__(self):
        self._items = {}
        self._len = 0
        self._low = 0

    def append(self, value):
        self._items[self._len] = value
        self._len += 1

    def __getitem__(self, idx):
        return self._items[idx]

    def __setitem__(self, idx, value):
        self._items[idx] = value

    def __len__(self):
        return self._len

    def trim(self, floor):
        for idx in range(self._low, min(floor, self._len)):
            self._items.pop(idx, None)
        self._low = max(self._low, min(floor, self._len))


class TailGraph(DependencyGraph):
    """A :class:`DependencyGraph` whose containers keep only the tail:
    behaviourally identical for the builder's access pattern (edges
    always target the newest action), bounded-memory for everything
    else."""

    def __init__(self, program_seq=False):
        DependencyGraph.__init__(self, 0, program_seq=program_seq)
        self.preds = _TailList()
        self.edge_kinds = _TailEdgeKinds()

    def trim(self, floor):
        self.preds.trim(floor)


class CompiledAction(object):
    """One streamed compile result: the action, its full predecessor
    list, and its reduced wait list (None when reduction is off)."""

    __slots__ = ("action", "preds", "wait")

    def __init__(self, action, preds, wait):
        self.action = action
        self.preds = preds
        self.wait = wait

    @property
    def idx(self):
        return self.action.idx

    @property
    def tid(self):
        return self.action.record.tid


class StreamCompiler(object):
    """Feed records, get compiled actions; see the module docstring
    for the retention modes."""

    def __init__(
        self,
        ruleset=None,
        snapshot=None,
        platform="linux",
        label="",
        retain=True,
        reduce=True,
    ):
        self.ruleset = ruleset if ruleset is not None else RuleSet.artc_default()
        self.snapshot = snapshot
        self.platform = platform
        self.label = label
        self.retain = retain
        self.reduce = reduce
        self.model = ModelBuilder(snapshot)
        graph = None if retain else TailGraph(program_seq=self.ruleset.program_seq)
        self.deps = DependencyBuilder(
            self.ruleset, graph=graph, prune_dead=not retain
        )
        self.reducer = IncrementalReducer() if reduce else None
        self.chain = ActionChain()
        self.chain.header(platform, label, self.ruleset, snapshot)
        self.fed = 0
        self.retired = 0
        self.actions = [] if retain else None
        self._reduced = [] if (retain and reduce) else None
        self._tids = set()
        self._started = time.perf_counter()

    def feed(self, record):
        """Compile one record; returns its :class:`CompiledAction`.
        Records must arrive in trace order (``idx`` dense from 0)."""
        action = self.model.feed(record)
        self.deps.feed(action)
        idx = action.idx
        preds = self.deps.graph.preds[idx]
        wait = None
        if self.reducer is not None:
            wait = self.reducer.feed(
                idx, record.tid, preds, self.deps.primary[idx]
            )
        self.chain.update(record.to_dict(), action.ann, action.predelay, preds, wait)
        self.fed += 1
        self._tids.add(record.tid)
        if self.retain:
            self.actions.append(action)
            if self._reduced is not None:
                self._reduced.append(wait)
        else:
            # The caller owns the CompiledAction; drop the builder's
            # per-action bookkeeping so the window stays bounded.
            self.deps.primary[idx] = None
        return CompiledAction(action, preds, wait)

    def retire(self):
        """Windowed-mode memory release: drop reducer reach vectors no
        future candidate edge can cite (everything below the feed
        ceiling except the builder's live refs and thread frontiers)
        and already-emitted tail-graph entries.  Returns the number of
        reach vectors released this call."""
        graph = self.deps.graph
        if isinstance(graph, TailGraph):
            # Predecessor lists are only read for the action being fed;
            # every earlier slot has been handed out already.
            graph.trim(self.fed)
        if self.reducer is None:
            return 0
        released = self.reducer.retire_except(self.deps.live_refs(), self.fed)
        self.retired += released
        return released

    @property
    def live_vectors(self):
        return self.reducer.live_vectors if self.reducer is not None else 0

    def digest(self):
        """The running :class:`ActionChain` digest at this boundary."""
        return self.chain.hexdigest()

    def stats(self):
        """Batch-shaped compile stats (``compile_seconds`` measures the
        streaming span, and is excluded from digests as volatile)."""
        n_edges = self.deps.graph.n_edges
        removed = self.reducer.removed if self.reducer is not None else 0
        return {
            "model_misses": self.model.model_misses,
            "n_actions": self.fed,
            "n_edges": n_edges,
            "n_threads": len(self._tids),
            "n_edges_reduced": n_edges - removed,
            "edges_removed": removed,
            "compile_seconds": time.perf_counter() - self._started,
        }

    def finish_benchmark(self):
        """Retain-mode only: package into the same
        :class:`CompiledBenchmark` the batch compiler returns."""
        if not self.retain:
            raise ValueError("windowed stream compile retains no benchmark")
        graph = self.deps.finish()
        if self._reduced is not None:
            graph.reduced_preds = self._reduced
        return CompiledBenchmark(
            self.actions,
            graph,
            self.ruleset,
            self.snapshot,
            self.platform,
            self.label,
            self.stats(),
        )
