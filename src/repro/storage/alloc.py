"""Extent-based block allocation.

Files are laid out as lists of contiguous extents.  The allocator
serves three zones:

- an *inode zone* at the front of the device (metadata reads seek here);
- a *journal zone* (fsync commits write here -- on a disk this is the
  seek-away-and-back cost that makes fsync-heavy workloads slow);
- the *data zone*, allocated first-fit-append with a per-profile extent
  cap so different file systems fragment differently.
"""

from repro.storage.device import BLOCK_SIZE


class Extent(object):
    __slots__ = ("file_offset_block", "lba", "nblocks")

    def __init__(self, file_offset_block, lba, nblocks):
        self.file_offset_block = file_offset_block
        self.lba = lba
        self.nblocks = nblocks

    def __repr__(self):
        return "Extent(fo=%d, lba=%d, n=%d)" % (
            self.file_offset_block,
            self.lba,
            self.nblocks,
        )


class BlockAllocator(object):
    INODE_ZONE_BLOCKS = 8192
    JOURNAL_ZONE_BLOCKS = 32768

    def __init__(self, max_extent_blocks=32768):
        self.max_extent_blocks = max_extent_blocks
        self.journal_lba = self.INODE_ZONE_BLOCKS
        self._next_lba = self.INODE_ZONE_BLOCKS + self.JOURNAL_ZONE_BLOCKS
        self._extents = {}  # file_id -> [Extent]
        self._sizes = {}  # file_id -> total allocated blocks

    def inode_lba(self, file_id):
        """Deterministic location of a file's on-disk inode."""
        return hash(file_id) % self.INODE_ZONE_BLOCKS

    def drop(self, file_id):
        """Forget a deleted file's layout (space is not reclaimed; the
        simulated device is large enough that reuse never matters)."""
        self._extents.pop(file_id, None)
        self._sizes.pop(file_id, None)

    def ensure_blocks(self, file_id, nblocks_needed):
        """Grow ``file_id`` to at least ``nblocks_needed`` blocks."""
        have = self._sizes.get(file_id, 0)
        if have >= nblocks_needed:
            return  # already allocated -- the steady-state fast path
        extents = self._extents.setdefault(file_id, [])
        while have < nblocks_needed:
            grow = min(nblocks_needed - have, self.max_extent_blocks)
            # Merge with the previous extent when we happen to be
            # contiguous (the common append-only case).
            if extents and extents[-1].lba + extents[-1].nblocks == self._next_lba:
                extents[-1].nblocks += grow
            else:
                extents.append(Extent(have, self._next_lba, grow))
            self._next_lba += grow
            have += grow
        self._sizes[file_id] = have

    def block_lba(self, file_id, block_index):
        """Map a file-relative block to its LBA, allocating on demand."""
        self.ensure_blocks(file_id, block_index + 1)
        for extent in self._extents[file_id]:
            if extent.file_offset_block <= block_index < (
                extent.file_offset_block + extent.nblocks
            ):
                return extent.lba + (block_index - extent.file_offset_block)
        raise AssertionError("unmapped block after ensure_blocks")

    def runs(self, file_id, block_index, nblocks):
        """Split ``[block_index, block_index+nblocks)`` into physically
        contiguous ``(lba, count)`` runs.

        Walks the (file-offset-ordered) extent list once rather than
        mapping block by block; adjacent extents that happen to be
        physically contiguous still merge into one run."""
        self.ensure_blocks(file_id, block_index + nblocks)
        out = []
        i = block_index
        end = block_index + nblocks
        for extent in self._extents[file_id]:
            if i >= end:
                break
            fo = extent.file_offset_block
            if i < fo or i >= fo + extent.nblocks:
                continue
            take = min(end, fo + extent.nblocks) - i
            lba = extent.lba + (i - fo)
            if out and out[-1][0] + out[-1][1] == lba:
                out[-1] = (out[-1][0], out[-1][1] + take)
            else:
                out.append((lba, take))
            i += take
        return out


def bytes_to_blocks(offset, length):
    """Return ``(first_block, nblocks)`` covering ``[offset, offset+length)``."""
    if length <= 0:
        return offset // BLOCK_SIZE, 0
    first = offset // BLOCK_SIZE
    last = (offset + length - 1) // BLOCK_SIZE
    return first, last - first + 1
