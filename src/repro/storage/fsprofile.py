"""File-system timing personalities.

The paper's macrobenchmark matrix spans ext3/ext4/XFS/JFS.  What
differentiates them for replay accuracy is not correctness (the VFS
provides identical POSIX semantics) but the *cost model*: journaling
mode, fsync commit size, metadata overhead, and allocation granularity.
These personalities parameterize :class:`repro.storage.stack.StorageStack`.
"""


class FsProfile(object):
    """Timing parameters for one file-system personality.

    ``journal_commit_blocks``: blocks written to the journal zone per
    fsync commit.  ``ordered_data``: whether fsync also flushes *all*
    dirty data of the file system first (ext3's ``data=ordered``
    behaviour, the reason ext3 fsyncs are notoriously slow).
    ``metadata_blocks``: extra journal blocks per namespace operation
    (create/unlink/rename).  ``max_extent_blocks``: allocation
    contiguity cap -- small extents fragment large files.
    """

    def __init__(
        self,
        name,
        journal_commit_blocks,
        ordered_data,
        metadata_blocks,
        max_extent_blocks,
        namespace_cpu=0.000004,
    ):
        self.name = name
        self.journal_commit_blocks = journal_commit_blocks
        self.ordered_data = ordered_data
        self.metadata_blocks = metadata_blocks
        self.max_extent_blocks = max_extent_blocks
        self.namespace_cpu = namespace_cpu

    def __repr__(self):
        return "<FsProfile %s>" % self.name


FS_PROFILES = {
    "ext4": FsProfile(
        "ext4",
        journal_commit_blocks=4,
        ordered_data=False,
        metadata_blocks=2,
        max_extent_blocks=32768,  # extents: large contiguous runs
    ),
    "ext3": FsProfile(
        "ext3",
        journal_commit_blocks=6,
        ordered_data=True,  # data=ordered drags dirty data into fsync
        metadata_blocks=3,
        max_extent_blocks=2048,  # indirect blocks fragment sooner
    ),
    "xfs": FsProfile(
        "xfs",
        journal_commit_blocks=2,
        ordered_data=False,
        metadata_blocks=1,
        max_extent_blocks=65536,
    ),
    "jfs": FsProfile(
        "jfs",
        journal_commit_blocks=3,
        ordered_data=False,
        metadata_blocks=2,
        max_extent_blocks=8192,
    ),
}
