"""An LRU page cache with dirty tracking and readahead state.

The cache is pure bookkeeping -- all timing happens in the stack, which
asks the cache what is resident, inserts pages, and receives back the
dirty pages it must write out on eviction.  Keys are ``(file_id,
block_index)`` for data pages and ``("ino", file_id)`` for cached inode
metadata (the dentry/inode cache collapsed into one structure).
"""

from collections import OrderedDict


class PageCache(object):
    def __init__(self, capacity_pages, dirty_ratio=0.20):
        if capacity_pages <= 0:
            raise ValueError("cache must hold at least one page")
        self.capacity_pages = capacity_pages
        self.dirty_limit = max(1, int(capacity_pages * dirty_ratio))
        self._pages = OrderedDict()  # key -> dirty(bool), LRU order
        self._dirty = OrderedDict()  # key -> True, oldest-dirtied first
        # Per-file views of the two maps above, so unlink invalidation
        # and per-file fsync are O(pages of that file) instead of a
        # scan of the whole cache.  Buckets key on ``key[0]`` (the
        # file_id of data pages, the literal "ino" for metadata) and
        # hold keys as insertion-ordered dict-sets; within one file the
        # dirty bucket's order equals the global oldest-dirtied order
        # restricted to that file, so writeback order is unchanged.
        self._file_pages = {}  # key[0] -> {key: True}
        self._file_dirty = {}  # key[0] -> {key: True}
        self._streams = {}  # (tid, file_id) -> (next_block, window)
        self.hits = 0
        self.misses = 0

    # -- residency ---------------------------------------------------

    def __len__(self):
        return len(self._pages)

    @property
    def dirty_count(self):
        return len(self._dirty)

    def contains(self, key):
        return key in self._pages

    def lookup(self, key):
        """Touch ``key``; return True on hit."""
        if key in self._pages:
            self._pages.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, key, dirty):
        """Make ``key`` resident.  Returns a list of evicted *dirty*
        keys that the caller must write back."""
        evicted = []
        if key in self._pages:
            self._pages.move_to_end(key)
            if dirty and not self._pages[key]:
                self._pages[key] = True
                self._dirty[key] = True
                self._file_dirty.setdefault(key[0], {})[key] = True
            return evicted
        while len(self._pages) >= self.capacity_pages:
            old_key, old_dirty = self._pages.popitem(last=False)
            self._drop_from_index(self._file_pages, old_key)
            if old_dirty:
                self._dirty.pop(old_key, None)
                self._drop_from_index(self._file_dirty, old_key)
                evicted.append(old_key)
        self._pages[key] = dirty
        self._file_pages.setdefault(key[0], {})[key] = True
        if dirty:
            self._dirty[key] = True
            self._file_dirty.setdefault(key[0], {})[key] = True
        return evicted

    @staticmethod
    def _drop_from_index(index, key):
        bucket = index.get(key[0])
        if bucket is not None:
            bucket.pop(key, None)
            if not bucket:
                del index[key[0]]

    def mark_clean(self, keys):
        for key in keys:
            if self._pages.get(key):
                self._pages[key] = False
            self._dirty.pop(key, None)
            self._drop_from_index(self._file_dirty, key)

    def dirty_keys_of(self, file_id):
        return list(self._file_dirty.get(file_id, ()))

    def all_dirty_keys(self):
        return list(self._dirty)

    def oldest_dirty(self, count):
        out = []
        for key in self._dirty:
            out.append(key)
            if len(out) >= count:
                break
        return out

    def invalidate_keys(self, keys):
        """Drop specific pages (e.g. a faulted read that never filled
        them); dirty state is discarded with the page."""
        for key in keys:
            if key in self._pages:
                del self._pages[key]
                self._dirty.pop(key, None)
                self._drop_from_index(self._file_pages, key)
                self._drop_from_index(self._file_dirty, key)

    def invalidate_file(self, file_id):
        """Drop every page of ``file_id`` (e.g. after unlink of the last
        link); dirty pages are discarded, as on a real kernel."""
        doomed = self._file_pages.pop(file_id, None)
        if not doomed:
            return
        for key in doomed:
            del self._pages[key]
            self._dirty.pop(key, None)
        self._file_dirty.pop(file_id, None)

    def drop_clean(self, keep_metadata=True):
        """Evict clean pages (``echo 1 > drop_caches``).

        With ``keep_metadata`` the inode/dentry entries survive, which
        matches the common benchmarking situation: data caches are
        cleared (or simply too small) while the namespace that setup
        just created is still hot.  Pass False for a full
        ``echo 3``-style drop."""
        keep = OrderedDict(
            (key, dirty)
            for key, dirty in self._pages.items()
            if dirty or (keep_metadata and key[0] == "ino")
        )
        self._pages = keep
        self._file_pages = {}
        for key in keep:
            self._file_pages.setdefault(key[0], {})[key] = True
        self._streams.clear()

    # -- readahead ---------------------------------------------------

    READAHEAD_MIN = 8
    READAHEAD_MAX = 64

    def readahead_plan(self, tid, file_id, first_block, nblocks):
        """Update per-stream sequentiality state; return the block range
        ``(start, end)`` to prefetch asynchronously (empty for random
        access).

        A stream is sequential when each read starts where the previous
        one ended (prefetched blocks in between are cache hits and do
        not break the stream).  The window doubles up to
        ``READAHEAD_MAX`` and is pulled in chunks: a new chunk is
        issued when the reader crosses the second half of the
        previously prefetched region, like the kernel's async
        readahead."""
        key = (tid, file_id)
        state = self._streams.get(key)  # [expected_next, window, ra_end]
        read_end = first_block + nblocks
        if state is not None and first_block == state[0]:
            window = min(max(state[1] * 2, self.READAHEAD_MIN), self.READAHEAD_MAX)
            ra_end = max(state[2], read_end)
        elif state is None and first_block == 0:
            window = self.READAHEAD_MIN  # fresh scan from BOF
            ra_end = read_end
        else:
            self._streams[key] = [read_end, 0, read_end]
            return (read_end, read_end)  # random access: no prefetch
        target = read_end + window
        if target - ra_end >= max(1, window // 2) or read_end > ra_end - window // 2:
            start, end = ra_end, max(ra_end, target)
        else:
            start, end = ra_end, ra_end  # still inside the last chunk
        self._streams[key] = [read_end, window, max(ra_end, end)]
        return (start, end)
