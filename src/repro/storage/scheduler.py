"""I/O schedulers.

Each spindle gets one scheduler instance.  The dispatcher loop in
:mod:`repro.storage.stack` drives it through three entry points:

- ``add(request, now)`` -- a new request arrived;
- ``pop(now, head)`` -- choose the next request to service (or ``None``);
- ``idle_deadline(now)`` -- if ``pop`` returned ``None`` while requests
  could still arrive for the active thread, how long to anticipate
  (CFQ-style idling); ``None`` means don't idle.

``idle_expired(now)`` tells CFQ its anticipation window closed so it
can switch to another thread's queue.
"""

from collections import OrderedDict, deque


class FIFOScheduler(object):
    """Strict arrival-order service (similar to the noop elevator)."""

    name = "fifo"

    def __init__(self):
        self._queue = deque()

    def add(self, request, now):
        self._queue.append(request)

    def pop(self, now, head, estimator=None):
        if self._queue:
            return self._queue.popleft()
        return None

    def idle_deadline(self, now):
        return None

    def idle_expired(self, now):
        pass

    def __len__(self):
        return len(self._queue)


class ElevatorScheduler(object):
    """C-LOOK: service the nearest request at or past the head, wrapping
    to the lowest LBA when the upward sweep empties.

    This is what converts deep queues into shorter seeks -- the
    mechanism behind the sub-linear slowdown of the paper's
    workload-parallelism microbenchmark (Figure 5a).
    """

    name = "elevator"

    def __init__(self):
        self._pending = []

    def add(self, request, now):
        self._pending.append(request)

    def pop(self, now, head, estimator=None):
        if not self._pending:
            return None
        if estimator is not None:
            best = min(self._pending, key=lambda r: estimator(r.lba))
        else:
            ahead = [r for r in self._pending if r.lba >= head]
            pool = ahead if ahead else self._pending
            best = min(pool, key=lambda r: r.lba)
        self._pending.remove(best)
        return best

    def idle_deadline(self, now):
        return None

    def idle_expired(self, now):
        pass

    def __len__(self):
        return len(self._pending)


class CFQScheduler(object):
    """Completely Fair Queuing with anticipation and seekiness detection.

    Each thread owns a FIFO queue.  A *sequential* (non-seeky) active
    thread is serviced for up to ``slice_sync`` seconds; when its queue
    momentarily empties within the slice, the dispatcher idles up to
    ``slice_idle`` waiting for the thread's next request instead of
    seeking away -- the anticipatory-scheduling tradeoff the paper
    tunes via ``slice_sync`` in Figures 5d and 6.

    Threads whose requests jump around the disk are marked *seeky*, as
    real CFQ does: they get no idling, and their pending requests are
    dispatched nearest-to-head-first (CFQ's noidle service tree plus
    the drive's own NCQ reordering).  This is what converts deep queues
    of random readers into shorter seeks (Figure 5a).
    """

    name = "cfq"

    def __init__(self, slice_sync=0.100, slice_idle=0.008, seek_threshold=1024):
        if slice_sync <= 0:
            raise ValueError("slice_sync must be positive")
        self.slice_sync = slice_sync
        self.slice_idle = slice_idle
        self.seek_threshold = seek_threshold
        self._queues = OrderedDict()  # tid -> deque, in round-robin order
        self._active_tid = None
        self._slice_start = None
        self._size = 0
        self._last_lba = {}  # tid -> end lba of the last arrival
        self._seek_score = {}  # tid -> 0..4; >=2 means seeky

    # -- bookkeeping -------------------------------------------------

    def add(self, request, now):
        tid = request.thread_id
        queue = self._queues.get(tid)
        if queue is None:
            queue = deque()
            self._queues[tid] = queue
        queue.append(request)
        self._size += 1
        last = self._last_lba.get(tid)
        score = self._seek_score.get(tid, 0)
        if last is not None:
            if abs(request.lba - last) > self.seek_threshold:
                # Asymmetric scoring keeps mixed far/near patterns (an
                # index read next to its data read, then a jump to
                # another file) firmly classified as seeky; only a
                # genuinely sequential stream un-marks itself.
                score = min(score + 2, 6)
            else:
                score = max(score - 1, 0)
        self._seek_score[tid] = score
        self._last_lba[tid] = request.end_lba

    def _seeky(self, tid):
        return self._seek_score.get(tid, 0) >= 2

    def _slice_expired(self, now):
        return (
            self._slice_start is not None
            and now - self._slice_start >= self.slice_sync
        )

    def _switch_to(self, tid, now):
        self._active_tid = tid
        self._slice_start = now
        # Rotate round-robin order: move tid to the back.
        if tid in self._queues:
            self._queues.move_to_end(tid)

    def _pop_from(self, tid):
        self._size -= 1
        return self._queues[tid].popleft()

    def _pop_seeky_nearest(self, head, estimator=None):
        """Dispatch among seeky threads' queue heads by predicted
        positioning cost (seek + rotational phase) when the device
        provides an estimator -- the NCQ effect -- else nearest-LBA
        C-LOOK."""
        candidates = [
            queue[0]
            for tid, queue in self._queues.items()
            if queue and self._seeky(tid)
        ]
        if not candidates:
            return None
        if estimator is not None:
            best = min(candidates, key=lambda r: estimator(r.lba))
        else:
            ahead = [r for r in candidates if r.lba >= head]
            pool = ahead if ahead else candidates
            best = min(pool, key=lambda r: r.lba)
        return self._pop_from(best.thread_id)

    # -- dispatcher interface ----------------------------------------

    def pop(self, now, head, estimator=None):
        active = self._active_tid
        if (
            active is not None
            and not self._seeky(active)
            and not self._slice_expired(now)
        ):
            queue = self._queues.get(active)
            if queue:
                return self._pop_from(active)
            # Active sequential thread has nothing queued: anticipate
            # (see idle_deadline) rather than seeking away.
            return None
        # Slice over, no active thread, or active thread turned seeky:
        # grant a slice to the next sequential backlogged thread...
        for tid, queue in self._queues.items():
            if tid != active and queue and not self._seeky(tid):
                self._switch_to(tid, now)
                return self._pop_from(tid)
        if active is not None and self._queues.get(active) and not self._seeky(active):
            self._switch_to(active, now)  # only sequential thread: renew
            return self._pop_from(active)
        # ...otherwise service the seeky pool nearest-first.
        request = self._pop_seeky_nearest(head, estimator)
        if request is not None:
            self._active_tid = None
            self._slice_start = None
            return request
        if self._size == 0:
            self._active_tid = None
            self._slice_start = None
        return None

    def idle_deadline(self, now):
        active = self._active_tid
        if active is None or self._seeky(active) or self._slice_expired(now):
            return None
        if self._queues.get(active):
            return None  # work available; no reason to idle
        slice_end = self._slice_start + self.slice_sync
        return min(now + self.slice_idle, slice_end)

    def idle_expired(self, now):
        # Anticipation failed: relinquish the slice.
        self._active_tid = None
        self._slice_start = None

    def __len__(self):
        return self._size


SCHEDULERS = {
    "fifo": FIFOScheduler,
    "elevator": ElevatorScheduler,
    "cfq": CFQScheduler,
}


def make_scheduler(name, **kwargs):
    """Instantiate a scheduler by name (``fifo``/``elevator``/``cfq``)."""
    try:
        cls = SCHEDULERS[name]
    except KeyError:
        raise ValueError("unknown scheduler %r" % (name,)) from None
    return cls(**kwargs)
