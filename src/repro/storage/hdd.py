"""A mechanical-disk timing model.

The model captures what the paper's experiments depend on:

- random access is dominated by seek + rotational delay;
- seek cost grows (sub-linearly) with distance, so elevator/C-LOOK
  scheduling over deep queues raises throughput (Figure 5a);
- sequential streaming runs at full media bandwidth, so CFQ's
  anticipation slices matter (Figures 5d, 6).
"""

from repro.sim.events import Delay
from repro.storage.device import BLOCK_SIZE, Device, Spindle, rotational_fraction


class HDDSpindle(Spindle):
    """One disk arm + platter.

    Parameters roughly follow a 7200 RPM SATA disk: ~100 MB/s media
    rate, ~4.2 ms average rotational delay (a full revolution is twice
    that), and a distance-dependent seek of 0.5..9 ms.  Rotational
    delay per access is a deterministic function of the target LBA's
    angular position (see :func:`rotational_fraction`), so schedulers
    that know the formula can reorder to dodge it -- the NCQ effect.
    ``settle_time`` is charged even for near-sequential accesses that
    miss the streaming window.
    """

    def __init__(
        self,
        capacity_blocks=64 * 1024 * 1024,  # 256 GB of 4K blocks
        seq_bandwidth=100 * 1024 * 1024,  # bytes/sec
        min_seek=0.0005,
        max_seek=0.009,
        avg_rotation=0.00417,  # half of 8.33ms (7200 RPM)
        settle_time=0.0002,
    ):
        self.capacity_blocks = capacity_blocks
        self.seq_bandwidth = seq_bandwidth
        self.min_seek = min_seek
        self.max_seek = max_seek
        self.avg_rotation = avg_rotation
        self.settle_time = settle_time
        self._head = 0

    def position(self):
        return self._head

    @property
    def revolution_time(self):
        return 2.0 * self.avg_rotation

    def access_parts(self, lba, now=None):
        """``(seek, rotation)`` positioning costs to reach ``lba``.

        The platter angle advances with simulated time; after the seek
        lands, the head waits for the target sector's angular position
        (:func:`rotational_fraction`) to come around.  Reordering a
        deep queue can therefore dodge most of the rotational delay --
        the NCQ effect behind the paper's queue-depth feedback loop.
        With ``now=None`` (no timing context) the average rotational
        delay is charged instead.
        """
        if lba == self._head:
            return 0.0, 0.0
        distance = abs(lba - self._head)
        # Seek time grows with the square root of distance, a standard
        # first-order model of arm acceleration.
        frac = min(1.0, distance / float(self.capacity_blocks))
        seek = self.min_seek + (self.max_seek - self.min_seek) * (frac ** 0.5)
        if now is None:
            return seek, self.avg_rotation
        rev = self.revolution_time
        arrival_angle = ((now + seek) / rev) % 1.0
        target_angle = rotational_fraction(lba, self.rot_salt)
        rotation = ((target_angle - arrival_angle) % 1.0) * rev
        return seek, rotation

    def access_time(self, lba, now=None):
        """Total positioning cost (seek + rotation) to reach ``lba``."""
        seek, rotation = self.access_parts(lba, now)
        return seek + rotation

    def cost_parts(self, request, now=None):
        """Where this request's service time would go, from the current
        head position (observability; see the stack's dispatch loop)."""
        seek, rotation = self.access_parts(request.lba, now)
        return {
            "seek": seek,
            "rotation": rotation,
            "transfer": self.transfer_time(request.nblocks),
        }

    def transfer_time(self, nblocks):
        return nblocks * BLOCK_SIZE / float(self.seq_bandwidth)

    def fault_penalty(self, kind, request):
        """A disk surfaces a fault only after exhausting its internal
        retries: a worst-case re-seek plus one full revolution per
        attempt (two attempts modeled)."""
        return self.max_seek + 2.0 * self.revolution_time

    def service(self, request, now=None):
        cost = self.access_time(request.lba, now)
        if cost == 0.0 and request.lba != self._head:
            cost = self.settle_time
        cost += self.transfer_time(request.nblocks)
        self._head = request.end_lba
        yield Delay(cost)


class HDD(Device):
    """A single-disk device."""

    def __init__(self, **spindle_kwargs):
        super().__init__([HDDSpindle(**spindle_kwargs)])

    def describe(self):
        return "hdd"
