"""Block-device abstractions.

All devices operate on fixed 4 KB blocks addressed by LBA.  A device
exposes *spindles*: independently-dispatched service queues.  A plain
HDD is one spindle; RAID-0 over two HDDs is two; an SSD is one spindle
with internal concurrency.
"""

from repro.sim.events import Event

BLOCK_SIZE = 4096


def rotational_fraction(lba, salt=0):
    """Deterministic pseudo-random angular position of ``lba``, in
    [0, 1).  Both the HDD (to charge rotational delay) and NCQ-style
    schedulers (to *predict* it when choosing among queued requests)
    evaluate this, which is how deep queues shorten effective
    rotational latency the way real command queuing does.

    ``salt`` varies per run (the stack assigns it from the engine's
    RNG): two boots of the same machine do not share sector phase, so
    an ordering that dodged rotational delay during tracing confers no
    advantage when replayed."""
    return (((lba ^ salt) * 2654435761) & 0xFFFFFFFF) / 4294967296.0


class BlockRequest(object):
    """One contiguous block-level transfer.

    ``thread_id`` identifies the issuing (simulated) application thread,
    which CFQ uses for its per-thread queues; ``done`` fires when the
    transfer completes.  ``parent`` links striped sub-requests back to
    the original request (RAID-0 splits requests at chunk boundaries).

    ``error``/``torn_blocks`` record injected fault outcomes (see
    :mod:`repro.faults`): a symbolic errno the stack must surface to
    the caller, and a count of trailing blocks of the transfer that
    never reached the platter (a torn write -- the request *completes*,
    but durability tracking treats those blocks as lost).  ``covered``
    optionally names the ``(file_id, [file_blocks])`` a write covers,
    attached by the stack when a durability tracker is listening.
    """

    __slots__ = (
        "thread_id",
        "lba",
        "nblocks",
        "is_write",
        "done",
        "submit_time",
        "parent",
        "pending_children",
        "error",
        "torn_blocks",
        "covered",
    )

    def __init__(self, thread_id, lba, nblocks, is_write):
        if nblocks <= 0:
            raise ValueError("request must cover at least one block")
        self.thread_id = thread_id
        self.lba = lba
        self.nblocks = nblocks
        self.is_write = is_write
        self.done = Event()
        self.submit_time = None
        self.parent = None
        self.pending_children = 0
        self.error = None
        self.torn_blocks = 0
        self.covered = None

    @property
    def end_lba(self):
        return self.lba + self.nblocks

    def __repr__(self):
        kind = "W" if self.is_write else "R"
        return "<%s lba=%d+%d tid=%s>" % (kind, self.lba, self.nblocks, self.thread_id)


class Spindle(object):
    """One independently-serviced queue of a device.

    ``service(request)`` is a generator that consumes simulated time and
    returns when the transfer finishes.  ``concurrency`` tells the stack
    how many dispatcher workers may call ``service`` at once (SSDs have
    internal parallelism; disks do not).
    """

    concurrency = 1
    #: per-run rotational phase salt, assigned by the stack
    rot_salt = 0

    def service(self, request, now=None):
        raise NotImplementedError

    def cost_parts(self, request, now=None):
        """Optional service-time decomposition for observability
        (e.g. ``{"seek": ..., "rotation": ..., "transfer": ...}``);
        ``None`` when the model does not break costs down."""
        return None

    def position(self):
        """Current head position (LBA) for elevator-style scheduling."""
        return 0

    def fault_penalty(self, kind, request):
        """Extra service time one injected fault of ``kind`` costs on
        this hardware before the outcome surfaces (an EIO is preceded
        by the drive's internal retries; a latency spike scales this
        base).  Models override with device-appropriate values."""
        return 0.001


class Device(object):
    """A whole device: routing plus a set of spindles."""

    def __init__(self, spindles):
        self.spindles = list(spindles)

    @property
    def nspindles(self):
        return len(self.spindles)

    def split(self, request):
        """Split ``request`` into ``(spindle_index, BlockRequest)`` pairs.

        Single-spindle devices return the request unchanged.  Striped
        devices return one child per chunk run, linked via ``parent`` so
        the stack can fire the parent's completion event when all
        children finish.
        """
        return [(0, request)]

    def describe(self):
        return type(self).__name__
