"""Striped (RAID-0) composition of member disks.

Requests are split at chunk boundaries (the paper uses a 512 KB chunk)
and routed to member spindles, which service their pieces in parallel.
The parent request completes when every child does, which the stack
tracks via ``parent``/``pending_children``.
"""

from repro.storage.device import BLOCK_SIZE, BlockRequest, Device
from repro.storage.hdd import HDDSpindle


class RAID0(Device):
    """RAID-0 over ``ndisks`` mechanical disks."""

    def __init__(self, ndisks=2, chunk_bytes=512 * 1024, **spindle_kwargs):
        if ndisks < 1:
            raise ValueError("need at least one member disk")
        if chunk_bytes % BLOCK_SIZE:
            raise ValueError("chunk size must be block-aligned")
        super().__init__([HDDSpindle(**spindle_kwargs) for _ in range(ndisks)])
        self.chunk_blocks = chunk_bytes // BLOCK_SIZE

    def _member_of(self, lba):
        chunk = lba // self.chunk_blocks
        return chunk % self.nspindles, (
            (chunk // self.nspindles) * self.chunk_blocks + lba % self.chunk_blocks
        )

    def split(self, request):
        pieces = []
        lba = request.lba
        remaining = request.nblocks
        while remaining > 0:
            member, member_lba = self._member_of(lba)
            within = self.chunk_blocks - lba % self.chunk_blocks
            run = min(remaining, within)
            child = BlockRequest(request.thread_id, member_lba, run, request.is_write)
            child.parent = request
            pieces.append((member, child))
            lba += run
            remaining -= run
        request.pending_children = len(pieces)
        return pieces

    def describe(self):
        return "raid0x%d" % self.nspindles
