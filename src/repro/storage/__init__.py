"""Simulated storage stack.

The paper's evaluation runs on real disks and kernels; here the same
feedback loops (queue-depth vs. elevator gains, RAID parallelism,
cache-size hit/miss flips, CFQ anticipation slices) are reproduced by a
discrete-event model:

- :mod:`repro.storage.device` -- block devices (HDD seek model, SSD, RAID-0)
- :mod:`repro.storage.scheduler` -- FIFO, C-LOOK elevator, CFQ w/ ``slice_sync``
- :mod:`repro.storage.cache` -- LRU page cache with readahead and writeback
- :mod:`repro.storage.alloc` -- extent-based block allocation
- :mod:`repro.storage.fsprofile` -- ext3/ext4/XFS/JFS timing personalities
- :mod:`repro.storage.stack` -- ties the pieces into one I/O path
"""

from repro.storage.device import BLOCK_SIZE, BlockRequest, Device
from repro.storage.hdd import HDD
from repro.storage.ssd import SSD
from repro.storage.raid import RAID0
from repro.storage.scheduler import CFQScheduler, ElevatorScheduler, FIFOScheduler
from repro.storage.cache import PageCache
from repro.storage.fsprofile import FS_PROFILES, FsProfile
from repro.storage.stack import StorageStack

__all__ = [
    "BLOCK_SIZE",
    "BlockRequest",
    "Device",
    "HDD",
    "SSD",
    "RAID0",
    "FIFOScheduler",
    "ElevatorScheduler",
    "CFQScheduler",
    "PageCache",
    "FsProfile",
    "FS_PROFILES",
    "StorageStack",
]
