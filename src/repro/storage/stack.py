"""The assembled I/O path: cache -> scheduler -> device.

One :class:`StorageStack` models one mounted file system on one device.
All entry points are generators driven by the simulation engine; they
consume exactly the amount of virtual time the modeled hardware would.

The data path:

- ``read``: page-cache lookup per block; misses (plus a readahead
  window on sequential streams) are coalesced into physically
  contiguous runs and submitted; the caller blocks until its own runs
  complete (readahead beyond the request is asynchronous).
- ``write``: dirty pages in cache, with dirty-ratio throttling that
  synchronously cleans the oldest pages when the limit is exceeded.
- ``fsync``: flush the file's dirty pages (or the whole cache for
  ext3-style ordered data), then commit the journal with a barrier.
- ``meta_read``/``namespace_op``: the inode/dentry cache and journaled
  metadata updates.
"""

from repro.errors import DeviceError
from repro.obs.context import of_engine
from repro.obs.metrics import COUNT_BOUNDS
from repro.sim.events import Delay, Event, wait_all
from repro.storage.alloc import BlockAllocator, bytes_to_blocks
from repro.storage.cache import PageCache
from repro.storage.device import BLOCK_SIZE, BlockRequest
from repro.storage.fsprofile import FS_PROFILES
from repro.storage.scheduler import make_scheduler


class StackStats(object):
    """Counters accumulated by one stack over its lifetime."""

    def __init__(self):
        self.reads_submitted = 0
        self.writes_submitted = 0
        self.blocks_read = 0
        self.blocks_written = 0
        self.fsyncs = 0
        self.journal_commits = 0

    def as_dict(self):
        return dict(self.__dict__)


class StorageStack(object):
    PAGE_CPU = 0.0000015  # copy-to-user per cached 4K page
    META_CPU = 0.0000010
    BARRIER_LATENCY = 0.0004  # device cache flush on journal commit
    META_COMMIT_BATCH = 64

    def __init__(
        self,
        engine,
        device,
        cache_bytes,
        fs_profile="ext4",
        scheduler="cfq",
        scheduler_kwargs=None,
    ):
        self.engine = engine
        self.device = device
        if isinstance(fs_profile, str):
            fs_profile = FS_PROFILES[fs_profile]
        self.profile = fs_profile
        self.cache = PageCache(max(1, cache_bytes // BLOCK_SIZE))
        self.alloc = BlockAllocator(max_extent_blocks=fs_profile.max_extent_blocks)
        self.stats = StackStats()
        self.scheduler_name = scheduler
        # Observability (repro.obs): handles are resolved once here;
        # ``self._obs is None`` keeps every instrumented site disabled
        # with a single pointer test.
        self._obs = of_engine(engine)
        if self._obs is not None:
            metrics = self._obs.metrics
            self._c_readahead = metrics.counter("storage.cache.readahead_blocks")
            self._c_writeback = metrics.counter("storage.cache.writeback_blocks")
            self._h_queue_depth = metrics.histogram(
                "storage.queue_depth_at_submit", COUNT_BOUNDS
            )
        self._inflight = {}  # (file_id, block) -> completion event
        # Shared immutable effects for the fixed CPU charges: walk
        # charging and the data path yield these tens of thousands of
        # times per replay, and Delay instances are never mutated by
        # the engine.  Page-copy delays are memoized per block count.
        self.meta_delay = Delay(self.META_CPU)
        self._ns_delay = Delay(fs_profile.namespace_cpu)
        self._barrier_delay = Delay(self.BARRIER_LATENCY)
        self._page_delays = {}  # nblocks -> Delay(PAGE_CPU * nblocks)
        # Fault injection / durability tracking (repro.faults).  Both
        # default to None so the fault-free fast paths stay untouched.
        self.faults = None
        self.tracker = None
        self._device_name = device.describe()
        kwargs = dict(scheduler_kwargs or {})
        self._schedulers = []
        self._arrival_waiters = []
        self._pending_meta_blocks = 0
        self._meta_journal_cursor = 0
        for index, spindle in enumerate(device.spindles):
            # Per-run rotational phase: see device.rotational_fraction.
            spindle.rot_salt = engine.rng.getrandbits(32)
            sched = make_scheduler(scheduler, **kwargs)
            self._schedulers.append(sched)
            self._arrival_waiters.append([])
            for worker in range(spindle.concurrency):
                engine.spawn(
                    self._dispatch_loop(index),
                    name="io-%s-s%d-w%d" % (device.describe(), index, worker),
                )

    # ------------------------------------------------------------------
    # fault injection / durability tracking
    # ------------------------------------------------------------------

    def attach_faults(self, injector):
        """Install a :class:`~repro.faults.inject.FaultInjector`; the
        dispatch loops consult it once per request."""
        self.faults = injector
        if injector is not None:
            injector.bind(self.engine)
        return injector

    def attach_tracker(self, tracker):
        """Install a :class:`~repro.faults.durability.DurabilityTracker`
        that shadows the write path (pure bookkeeping, no timing)."""
        self.tracker = tracker
        return tracker

    # ------------------------------------------------------------------
    # request submission and dispatch
    # ------------------------------------------------------------------

    def submit(self, thread_id, lba, nblocks, is_write):
        """Queue one block request; returns the request (wait on
        ``request.done``)."""
        request = BlockRequest(thread_id, lba, nblocks, is_write)
        request.submit_time = self.engine.now
        if is_write:
            self.stats.writes_submitted += 1
            self.stats.blocks_written += nblocks
        else:
            self.stats.reads_submitted += 1
            self.stats.blocks_read += nblocks
        for spindle_index, piece in self.device.split(request):
            piece.submit_time = self.engine.now
            self._schedulers[spindle_index].add(piece, self.engine.now)
            if self._obs is not None:
                self._h_queue_depth.observe(len(self._schedulers[spindle_index]))
            self._notify_arrival(spindle_index)
        return request

    def _notify_arrival(self, spindle_index):
        waiters = self._arrival_waiters[spindle_index]
        if waiters:
            self._arrival_waiters[spindle_index] = []
            for event in waiters:
                event.set()

    def _complete(self, request):
        parent = request.parent
        request.done.set()
        if parent is not None:
            # RAID: a member failure fails the whole stripe; torn
            # members accumulate onto the logical request.
            if request.error is not None and parent.error is None:
                parent.error = request.error
            if request.torn_blocks:
                parent.torn_blocks += request.torn_blocks
            parent.pending_children -= 1
            if parent.pending_children:
                return
            parent.done.set()
            request = parent
        tracker = self.tracker
        if tracker is not None and request.is_write:
            tracker.note_write(request)

    def _dispatch_loop(self, spindle_index):
        sched = self._schedulers[spindle_index]
        spindle = self.device.spindles[spindle_index]
        engine = self.engine
        access_time = getattr(spindle, "access_time", None)
        if access_time is not None:
            def estimator(lba):
                return access_time(lba, engine.now)
        else:
            estimator = None
        obs = self._obs
        if obs is not None:
            tag = "storage.%s.s%d" % (self.device.describe(), spindle_index)
            metrics = obs.metrics
            spans = obs.spans
            track = "%s/s%d" % (self.device.describe(), spindle_index)
            c_dispatches = metrics.counter(tag + ".dispatches")
            h_queue_wait = metrics.histogram(tag + ".queue_wait_seconds")
            c_stalls = metrics.counter(tag + ".anticipation_stalls")
            h_stall = metrics.histogram(tag + ".anticipation_idle_seconds")
            c_anticipation_hits = metrics.counter(tag + ".anticipation_hits")
        while True:
            request = sched.pop(engine.now, spindle.position(), estimator)
            if request is None:
                arrival = Event()
                self._arrival_waiters[spindle_index].append(arrival)
                deadline = sched.idle_deadline(engine.now)
                if deadline is None:
                    yield arrival
                else:
                    # CFQ anticipation: idle for the active thread's
                    # next request instead of seeking away.
                    idle_start = engine.now
                    timer = engine.timer(max(0.0, deadline - engine.now))
                    combined = Event()

                    def _fire(_value, combined=combined):
                        if not combined.is_set:
                            combined.set()

                    arrival._add_waiter(_fire)
                    timer._add_waiter(_fire)
                    yield combined
                    if not arrival.is_set:
                        sched.idle_expired(engine.now)
                        if obs is not None:
                            c_stalls.inc()
                            h_stall.observe(engine.now - idle_start)
                    elif obs is not None:
                        c_anticipation_hits.inc()
                continue
            if self.faults is not None:
                outcome = self.faults.on_dispatch(
                    self._device_name, spindle_index, spindle, request,
                    engine.now,
                )
                if outcome is not None:
                    if outcome.hold is not None:
                        yield outcome.hold  # never fires: a dead drive
                    elif outcome.delay:
                        yield Delay(outcome.delay)
                    if outcome.error is not None:
                        request.error = outcome.error
                        self._complete(request)
                        continue
                    if outcome.torn_blocks:
                        request.torn_blocks += outcome.torn_blocks
            if obs is None:
                yield from spindle.service(request, engine.now)
                self._complete(request)
                continue
            c_dispatches.inc()
            if request.submit_time is not None:
                h_queue_wait.observe(engine.now - request.submit_time)
            parts = spindle.cost_parts(request, engine.now)
            service_start = engine.now
            yield from spindle.service(request, engine.now)
            self._complete(request)
            if parts:
                for part, seconds in parts.items():
                    metrics.histogram(
                        "%s.%s_seconds" % (tag, part)
                    ).observe(seconds)
            spans.record(
                "W" if request.is_write else "R",
                "io",
                track,
                service_start,
                engine.now,
                args={
                    "lba": request.lba,
                    "nblocks": request.nblocks,
                    "tid": str(request.thread_id),
                },
            )

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------

    def read(self, thread_id, file_id, offset, length):
        """Read ``length`` bytes of ``file_id`` starting at ``offset``.

        Blocks already being fetched (by another thread or by an
        earlier readahead chunk) are *in flight*: the caller waits on
        their completion rather than re-submitting or -- worse --
        treating them as resident.
        """
        first, nblocks = bytes_to_blocks(offset, length)
        if nblocks == 0:
            yield self.meta_delay
            return
        ra_start, ra_end = self.cache.readahead_plan(
            thread_id, file_id, first, nblocks
        )
        missing = []
        waits = []
        lookup = self.cache.lookup
        # No yields until submission, so the in-flight table cannot
        # change under this loop; skip the per-block probe entirely in
        # the common nothing-in-flight case.
        inflight_get = self._inflight.get if self._inflight else None
        for block in range(first, first + nblocks):
            key = (file_id, block)
            if lookup(key):
                if inflight_get is not None:
                    inflight = inflight_get(key)
                    if inflight is not None and not inflight.is_set:
                        waits.append(inflight)
                continue
            missing.append(block)
        prefetch = []
        for block in range(max(ra_start, first + nblocks), ra_end):
            if not self.cache.contains((file_id, block)):
                prefetch.append(block)
        if self._obs is not None and prefetch:
            self._c_readahead.inc(len(prefetch))
        writebacks = []
        for block in missing + prefetch:
            writebacks.extend(self.cache.insert((file_id, block), dirty=False))
        self._writeback_async(thread_id, writebacks)
        own = self._submit_file_blocks(thread_id, file_id, missing, is_write=False)
        for request, covered in own:
            waits.append(request.done)
            self._register_inflight(file_id, covered, request.done)
        for request, covered in self._submit_file_blocks(
            thread_id, file_id, prefetch, is_write=False
        ):  # asynchronous readahead
            self._register_inflight(file_id, covered, request.done)
        yield from wait_all(waits)
        if self.faults is not None:
            error = None
            for request, covered in own:
                if request.error is not None:
                    error = request.error
                    # Drop the never-filled pages so a retry re-reads.
                    self.cache.invalidate_keys(
                        (file_id, block) for block in covered
                    )
            if error is not None:
                raise DeviceError(error, "read of %r" % (file_id,))
        yield self._page_delay(nblocks)

    def _register_inflight(self, file_id, blocks, done):
        keys = [(file_id, block) for block in blocks]
        for key in keys:
            self._inflight[key] = done

        def _purge(_value):
            for key in keys:
                if self._inflight.get(key) is done:
                    del self._inflight[key]

        done._add_waiter(_purge)

    def _submit_file_blocks(self, thread_id, file_id, blocks, is_write):
        """Submit a sorted block list as coalesced requests; returns
        ``(request, covered_file_blocks)`` pairs."""
        out = []
        i = 0
        while i < len(blocks):
            j = i
            while j + 1 < len(blocks) and blocks[j + 1] == blocks[j] + 1:
                j += 1
            cursor = blocks[i]
            for lba, count in self.alloc.runs(file_id, blocks[i], j - i + 1):
                request = self.submit(thread_id, lba, count, is_write)
                out.append((request, list(range(cursor, cursor + count))))
                cursor += count
            i = j + 1
        return out

    def write(self, thread_id, file_id, offset, length):
        """Buffered write: dirty the covered pages, throttling when the
        cache exceeds its dirty ratio."""
        first, nblocks = bytes_to_blocks(offset, length)
        if nblocks == 0:
            yield self.meta_delay
            return
        self.alloc.ensure_blocks(file_id, first + nblocks)
        writebacks = []
        for block in range(first, first + nblocks):
            writebacks.extend(self.cache.insert((file_id, block), dirty=True))
        self._writeback_async(thread_id, writebacks)
        yield self._page_delay(nblocks)
        if self.cache.dirty_count > self.cache.dirty_limit:
            excess = self.cache.dirty_count - int(self.cache.dirty_limit * 0.9)
            victims = self.cache.oldest_dirty(excess)
            yield from self._flush_keys(thread_id, victims)

    def fsync(self, thread_id, file_id, size=None):
        """Durably persist ``file_id`` (and, for ordered-data file
        systems, everything else that is dirty).  ``size`` is the
        caller's in-memory file size; on success the durability tracker
        records it as *acknowledged* -- the bytes a crash must preserve."""
        self.stats.fsyncs += 1
        if self.profile.ordered_data:
            keys = self.cache.all_dirty_keys()
        else:
            keys = self.cache.dirty_keys_of(file_id)
        yield from self._flush_keys(thread_id, keys)
        yield from self._journal_commit(thread_id)
        if self.tracker is not None and size is not None:
            self.tracker.note_fsync(file_id, self.engine.now, size)

    def sync_all(self, thread_id):
        """sync(2): flush every dirty page and commit the journal."""
        yield from self._flush_keys(thread_id, self.cache.all_dirty_keys())
        yield from self._journal_commit(thread_id)


    def _page_delay(self, nblocks):
        delay = self._page_delays.get(nblocks)
        if delay is None:
            delay = self._page_delays[nblocks] = Delay(self.PAGE_CPU * nblocks)
        return delay

    def meta_read(self, thread_id, file_id):
        """Consult the inode/dentry cache; a miss reads the inode block."""
        if self.cache.lookup(("ino", file_id)):
            yield self.meta_delay
            return
        yield from self.meta_read_cold(thread_id, file_id)

    def meta_read_cold(self, thread_id, file_id):
        """The miss half of :meth:`meta_read`, for callers that already
        consulted the cache themselves (the VFS walk-charging loop
        inlines the hit path to skip a generator per visited inode)."""
        key = ("ino", file_id)
        writebacks = self.cache.insert(key, dirty=False)
        self._writeback_async(thread_id, writebacks)
        request = self.submit(thread_id, self.alloc.inode_lba(file_id), 1, False)
        yield request.done
        if request.error is not None:
            raise DeviceError(request.error, "inode read of %r" % (file_id,))
        yield self.meta_delay

    def namespace_op(self, thread_id, file_id=None, desc=None):
        """A journaled namespace change (create/unlink/rename/mkdir...).

        Metadata updates accumulate and are written to the journal zone
        asynchronously in batches; fsync commits force them out.
        ``desc`` describes the change for the durability tracker's
        oplog (crash recovery rolls back uncommitted entries)."""
        if self.tracker is not None:
            self.tracker.note_namespace(desc if desc is not None else ("meta",))
        self._pending_meta_blocks += self.profile.metadata_blocks
        if file_id is not None:
            writebacks = self.cache.insert(("ino", file_id), dirty=False)
            self._writeback_async(thread_id, writebacks)
        if self._pending_meta_blocks >= self.META_COMMIT_BATCH:
            blocks, self._pending_meta_blocks = self._pending_meta_blocks, 0
            self.submit(thread_id, self._journal_lba(blocks), blocks, True)
        yield self._ns_delay

    def drop_file(self, thread_id, file_id):
        """Forget a deleted file: invalidate its pages and layout."""
        self.cache.invalidate_file(file_id)
        self.alloc.drop(file_id)
        if self.tracker is not None:
            self.tracker.drop(file_id)

    def drop_caches(self, keep_metadata=True):
        """Between-run cache clearing (the paper's cold-cache setup)."""
        self.cache.drop_clean(keep_metadata)

    def warm_metadata(self, file_ids):
        """Mark inode entries resident (e.g. right after initialization
        created them -- the dentry cache is hot on a real system too)."""
        for file_id in file_ids:
            self.cache.insert(("ino", file_id), dirty=False)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _physical_runs(self, file_id, blocks):
        """Coalesce a sorted block list into physical (lba, count) runs."""
        runs = []
        i = 0
        while i < len(blocks):
            j = i
            while j + 1 < len(blocks) and blocks[j + 1] == blocks[j] + 1:
                j += 1
            runs.extend(self.alloc.runs(file_id, blocks[i], j - i + 1))
            i = j + 1
        return runs

    def _runs_with_blocks(self, file_id, blocks):
        """Like :meth:`_physical_runs`, but each ``(lba, count)`` run
        keeps the file blocks it covers -- the durability tracker needs
        the mapping to credit completed writes."""
        out = []
        i = 0
        while i < len(blocks):
            j = i
            while j + 1 < len(blocks) and blocks[j + 1] == blocks[j] + 1:
                j += 1
            cursor = blocks[i]
            for lba, count in self.alloc.runs(file_id, blocks[i], j - i + 1):
                out.append((lba, count, list(range(cursor, cursor + count))))
                cursor += count
            i = j + 1
        return out

    def _writeback_async(self, thread_id, keys):
        """Write evicted dirty pages without blocking the caller."""
        if not keys:
            return
        if self._obs is not None:
            self._c_writeback.inc(len(keys))
        by_file = {}
        for key in keys:
            by_file.setdefault(key[0], []).append(key[1])
        tracked = self.tracker is not None
        for file_id, blocks in by_file.items():
            if file_id == "ino":
                continue
            blocks.sort()
            if not tracked:
                for lba, run in self._physical_runs(file_id, blocks):
                    self.submit(thread_id, lba, run, is_write=True)
            else:
                for lba, run, covered in self._runs_with_blocks(file_id, blocks):
                    request = self.submit(thread_id, lba, run, is_write=True)
                    request.covered = (file_id, covered)

    def _flush_keys(self, thread_id, keys):
        """Synchronously write the given dirty pages and mark them clean."""
        if not keys:
            return
        by_file = {}
        for key in keys:
            if key[0] == "ino":
                continue
            by_file.setdefault(key[0], []).append(key[1])
        waits = []
        submitted = []
        tracked = self.tracker is not None or self.faults is not None
        for file_id, blocks in by_file.items():
            blocks.sort()
            if not tracked:
                for lba, run in self._physical_runs(file_id, blocks):
                    waits.append(self.submit(thread_id, lba, run, True).done)
            else:
                for lba, run, covered in self._runs_with_blocks(file_id, blocks):
                    request = self.submit(thread_id, lba, run, True)
                    request.covered = (file_id, covered)
                    waits.append(request.done)
                    submitted.append((request, file_id, covered))
        self.cache.mark_clean(keys)
        yield from wait_all(waits)
        if submitted:
            error = None
            failed_file = None
            for request, file_id, covered in submitted:
                if request.error is not None:
                    error = request.error
                    failed_file = file_id
                    # The pages never landed: they are dirty again.
                    for block in covered:
                        self.cache.insert((file_id, block), dirty=True)
            if error is not None:
                raise DeviceError(error, "flush of %r" % (failed_file,))

    def _journal_lba(self, nblocks):
        lba = self.alloc.journal_lba + self._meta_journal_cursor
        self._meta_journal_cursor = (
            self._meta_journal_cursor + nblocks
        ) % (BlockAllocator.JOURNAL_ZONE_BLOCKS // 2)
        return lba

    def _journal_commit(self, thread_id):
        self.stats.journal_commits += 1
        blocks = self.profile.journal_commit_blocks + self._pending_meta_blocks
        self._pending_meta_blocks = 0
        tracker = self.tracker
        upto = tracker.commit_window() if tracker is not None else None
        request = self.submit(thread_id, self._journal_lba(blocks), blocks, True)
        yield request.done
        yield self._barrier_delay
        if request.error is not None:
            # A failed commit never happened: the oplog window stays
            # uncommitted and the caller sees the device error.
            raise DeviceError(request.error, "journal commit")
        if tracker is not None:
            tracker.note_commit(upto, torn=bool(request.torn_blocks))
