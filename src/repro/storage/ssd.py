"""A flash-device timing model.

Constant per-request latency, no positioning cost, and internal channel
parallelism.  Absolute values follow a SATA-era consumer SSD (the
paper's Figure 10 shows 5-20x thread-time speedups over disk)."""

from repro.sim.events import Delay
from repro.storage.device import BLOCK_SIZE, Device, Spindle


class SSDSpindle(Spindle):
    def __init__(
        self,
        read_latency=0.00010,
        write_latency=0.00018,
        bandwidth=400 * 1024 * 1024,  # bytes/sec per channel
        concurrency=8,
    ):
        self.read_latency = read_latency
        self.write_latency = write_latency
        self.bandwidth = bandwidth
        self.concurrency = concurrency

    def cost_parts(self, request, now=None):
        base = self.write_latency if request.is_write else self.read_latency
        return {
            "latency": base,
            "transfer": request.nblocks * BLOCK_SIZE / float(self.bandwidth),
        }

    def service(self, request, now=None):
        base = self.write_latency if request.is_write else self.read_latency
        transfer = request.nblocks * BLOCK_SIZE / float(self.bandwidth)
        yield Delay(base + transfer)

    def fault_penalty(self, kind, request):
        """Flash read-retry / program-verify loops before the
        controller gives up: a couple dozen base latencies."""
        base = self.write_latency if request.is_write else self.read_latency
        return 24.0 * base


class SSD(Device):
    def __init__(self, **spindle_kwargs):
        super().__init__([SSDSpindle(**spindle_kwargs)])

    def describe(self):
        return "ssd"
