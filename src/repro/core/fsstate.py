"""Symbolic file-system state: from trace records to resource touches.

This is the compiler's UNIX model (paper section 4): it replays the
trace *symbolically*, in trace order, maintaining a shadow namespace
(directories, symlinks, hard links), a descriptor table, and per-name
generation counters.  For each record it emits:

- the list of :class:`~repro.core.resources.Touch` objects (which
  resources the action creates, uses, deletes), including the
  transitive effects the paper highlights -- a directory rename touches
  every descendant file and every affected path generation; symlink
  hops touch the symlink's own file resource; and
- replay *annotations*: the generation of every fd/aiocb argument and
  return value, so the replayer can remap descriptor names
  (section 4.2: same-name descriptors may coexist during replay).

Path generations alternate existence/absence periods.  A failed stat
is a *use* of the current absence generation, whose creator is the
unlink/rename that emptied the name -- this is how ROOT replays
failing calls at a point where they still fail.

The model is deliberately best-effort: when the trace contradicts the
shadow state (the paper's own example is a directory rename un-breaking
a symlink), the record degrades to path/thread touches and
``model_misses`` is incremented rather than failing the compile.
"""

from repro.core import resources as R
from repro.core.resources import Role, Touch
from repro.syscalls.registry import spec_for
from repro.vfs.nodes import normalize


class SymNode(object):
    """Shadow inode."""

    __slots__ = ("uid", "ftype", "target", "children", "nlink", "size")

    def __init__(self, uid, ftype, target=None, size=0):
        self.uid = uid
        self.ftype = ftype  # "reg" | "dir" | "symlink" | "char"
        self.target = target
        self.children = {} if ftype == "dir" else None
        self.nlink = 1
        self.size = size

    @property
    def is_dir(self):
        return self.ftype == "dir"

    def __repr__(self):
        return "<SymNode %d %s>" % (self.uid, self.ftype)


class _PathState(object):
    __slots__ = ("gen", "exists")

    def __init__(self, gen, exists):
        self.gen = gen
        self.exists = exists


class _FdBinding(object):
    __slots__ = ("gen", "uid", "alive", "path", "offset", "append")

    def __init__(self, gen, uid, path=None, append=False):
        self.gen = gen
        self.uid = uid
        self.alive = True
        self.path = path
        self.offset = 0  # tracked for file-size dependency inference
        self.append = append


class FsState(object):
    MAX_SYMLINK_HOPS = 40

    def __init__(self, snapshot=None):
        self._next_uid = 1
        self._by_uid = {}
        self.root = self._new_node("dir")
        self.cwd = "/"
        self.path_state = {}
        self.fd_bindings = {}
        self._fd_gen_next = {}
        self.aio_state = {}
        self._aio_gen_next = {}
        self.model_misses = 0
        # Per-file size history for the file-size dependency extension
        # (the paper's future-work refinement): uid -> list of
        # (action_idx, size_after).  Initial sizes come from the
        # snapshot with action index None.
        self._size_events = {}
        self._initial_size = {}
        self._setup_base_tree()
        if snapshot is not None:
            self.load_snapshot(snapshot)

    # ------------------------------------------------------------------
    # shadow-tree plumbing
    # ------------------------------------------------------------------

    def _new_node(self, ftype, target=None):
        node = SymNode(self._next_uid, ftype, target)
        self._next_uid += 1
        self._by_uid[node.uid] = node
        return node

    def _setup_base_tree(self):
        """Mirror the VFS's built-in namespace (/dev, /tmp)."""
        for path in ("/dev", "/dev/shm", "/tmp"):
            self._mkdir_quiet(path)
        for name in ("null", "zero", "random", "urandom", "tty"):
            parent = self._lookup_dir("/dev")
            parent.children[name] = self._new_node("char")

    def _mkdir_quiet(self, path):
        node = self.root
        for part in [p for p in path.split("/") if p]:
            child = node.children.get(part)
            if child is None:
                child = self._new_node("dir")
                node.children[part] = child
            node = child
        return node

    def _lookup_dir(self, path):
        node = self.root
        for part in [p for p in path.split("/") if p]:
            node = node.children[part]
        return node

    def load_snapshot(self, snapshot):
        for entry in snapshot.sorted():
            parts = [p for p in entry.path.split("/") if p]
            if not parts:
                continue
            parent = self._mkdir_quiet("/" + "/".join(parts[:-1]))
            name = parts[-1]
            if entry.ftype == "dir":
                if name not in parent.children:
                    parent.children[name] = self._new_node("dir")
            elif entry.ftype == "symlink":
                parent.children[name] = self._new_node("symlink", entry.target)
            else:
                node = self._new_node("reg")
                node.size = entry.size
                parent.children[name] = node

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------

    def _norm(self, path):
        if not path:
            return path
        if not path.startswith("/"):
            path = self.cwd.rstrip("/") + "/" + path
        return normalize(path)

    def resolve(self, path, follow_last=True, _hops=0):
        """Walk the shadow tree.  Returns
        ``(parent_node, leaf_name, node_or_None, symlink_uids)`` or
        None if an intermediate component is missing/not a directory or
        a symlink loop occurs."""
        if _hops > self.MAX_SYMLINK_HOPS or not path:
            return None
        current = self.root
        symlinks = []
        parts = [p for p in path.split("/") if p and p != "."]
        if not parts:
            return (self.root, None, self.root, symlinks)
        stack = []
        index = 0
        while index < len(parts):
            name = parts[index]
            last = index == len(parts) - 1
            if not current.is_dir:
                return None
            if name == "..":
                current = stack.pop() if stack else current
                index += 1
                if index == len(parts):
                    return (current, None, current, symlinks)
                continue
            child = current.children.get(name)
            if child is None:
                if last:
                    return (current, name, None, symlinks)
                return None
            if child.ftype == "symlink" and (not last or follow_last):
                symlinks.append(child.uid)
                target = child.target or ""
                rest = "/".join(parts[index + 1 :])
                joined = target if not rest else target.rstrip("/") + "/" + rest
                if not joined.startswith("/"):
                    prefix = "/" + "/".join(parts[:index])
                    joined = prefix.rstrip("/") + "/" + joined
                sub = self.resolve(normalize(joined), follow_last, _hops + 1)
                if sub is None:
                    return None
                parent, leaf, node, more = sub
                return (parent, leaf, node, symlinks + more)
            if last:
                return (current, name, child, symlinks)
            stack.append(current)
            current = child
            index += 1
        raise AssertionError("unreachable")

    def _dentry_exists(self, norm):
        res = self.resolve(norm, follow_last=False)
        return res is not None and res[2] is not None

    def path_exists(self, path):
        """Does ``path`` currently resolve to a dentry (no symlink
        following on the last component)?  Public query used by the
        static-analysis passes."""
        return self._dentry_exists(self._norm(path))

    def node_at(self, path, follow_last=False):
        """The shadow node ``path`` names right now, or None."""
        res = self.resolve(self._norm(path), follow_last=follow_last)
        return None if res is None else res[2]

    def open_descriptors_of(self, uid):
        """Descriptor numbers currently bound (and alive) to file
        ``uid``; used to flag renames that shadow a live file."""
        return sorted(
            num
            for num, binding in self.fd_bindings.items()
            if binding.alive and binding.uid == uid
        )

    # ------------------------------------------------------------------
    # path generations
    # ------------------------------------------------------------------

    def _path_entry(self, norm):
        entry = self.path_state.get(norm)
        if entry is None:
            entry = _PathState(0, self._dentry_exists(norm))
            self.path_state[norm] = entry
        return entry

    def path_use(self, norm, touches):
        entry = self._path_entry(norm)
        touches.append(Touch(R.path_key(norm, entry.gen), Role.USE))

    def path_transition_create(self, norm, touches):
        """The dentry at ``norm`` comes into existence."""
        entry = self._path_entry(norm)
        if entry.exists:
            # Shadow state thought it already existed; treat as a
            # rebinding (delete old generation, create the next).
            touches.append(Touch(R.path_key(norm, entry.gen), Role.DELETE))
            entry.gen += 1
            touches.append(Touch(R.path_key(norm, entry.gen), Role.CREATE))
            return
        touches.append(Touch(R.path_key(norm, entry.gen), Role.DELETE))
        entry.gen += 1
        entry.exists = True
        touches.append(Touch(R.path_key(norm, entry.gen), Role.CREATE))

    def path_transition_delete(self, norm, touches):
        """The dentry at ``norm`` goes away."""
        entry = self._path_entry(norm)
        touches.append(Touch(R.path_key(norm, entry.gen), Role.DELETE))
        entry.gen += 1
        entry.exists = False
        touches.append(Touch(R.path_key(norm, entry.gen), Role.CREATE))

    # ------------------------------------------------------------------
    # fd / aiocb generations
    # ------------------------------------------------------------------

    def fd_open(self, num, uid, touches, path=None, append=False):
        gen = self._fd_gen_next.get(num, 0)
        self._fd_gen_next[num] = gen + 1
        self.fd_bindings[num] = _FdBinding(gen, uid, path, append)
        touches.append(Touch(R.fd_key(num, gen), Role.CREATE))
        return gen

    def fd_use(self, num, touches, role=Role.USE):
        binding = self.fd_bindings.get(num)
        if binding is None:
            # Descriptor opened before tracing started (stdio etc.):
            # create an implicit generation so replay can track it.
            gen = self._fd_gen_next.get(num, 0)
            self._fd_gen_next[num] = gen + 1
            binding = _FdBinding(gen, None)
            self.fd_bindings[num] = binding
        touches.append(Touch(R.fd_key(num, binding.gen), role))
        return binding

    def fd_close(self, num, touches):
        binding = self.fd_use(num, touches, role=Role.DELETE)
        binding.alive = False
        return binding

    # ------------------------------------------------------------------
    # file-size history (the paper's future-work dependency refinement)
    # ------------------------------------------------------------------

    def _note_size(self, node, idx, new_size):
        """Record a size-changing action; returns the previous
        size-changing action's index (for chaining)."""
        events = self._size_events.setdefault(node.uid, [])
        if not events:
            self._initial_size[node.uid] = node.size
        previous = events[-1][0] if events else None
        events.append((idx, new_size))
        node.size = new_size
        return previous

    def _size_dep(self, uid, read_end):
        """The latest action that exposed bytes up to ``read_end``
        (size went from below to at-or-above it), or None when the
        initial snapshot already covered the range."""
        events = self._size_events.get(uid)
        if not events or read_end <= 0:
            return None
        size = self._initial_size.get(uid, 0)
        dep = None
        for idx, after in events:
            if size < read_end <= after:
                dep = idx
            size = after
        return dep

    def aio_submit(self, cb_id, touches):
        gen = self._aio_gen_next.get(cb_id, 0)
        self._aio_gen_next[cb_id] = gen + 1
        self.aio_state[cb_id] = gen
        touches.append(Touch(R.aiocb_key(cb_id, gen), Role.CREATE))
        return gen

    def aio_use(self, cb_id, touches, role=Role.USE):
        gen = self.aio_state.get(cb_id)
        if gen is None:
            gen = self._aio_gen_next.get(cb_id, 0)
            self._aio_gen_next[cb_id] = gen + 1
            self.aio_state[cb_id] = gen
        touches.append(Touch(R.aiocb_key(cb_id, gen), role))
        return gen

    # ------------------------------------------------------------------
    # record interpretation
    # ------------------------------------------------------------------

    def apply(self, record):
        """Interpret one record; returns ``(touches, annotations)``."""
        touches = [Touch(R.thread_key(record.tid), Role.USE)]
        ann = {}
        kind = spec_for(record.name).kind
        handler = getattr(self, "_k_" + kind, None)
        if handler is None:
            return touches, ann  # unmodeled call: thread ordering only
        try:
            handler(record, touches, ann)
        except Exception:
            self.model_misses += 1
        return touches, ann

    # -- helpers shared by handlers ------------------------------------

    def _file_use(self, node, touches, role=Role.USE):
        if node is not None:
            touches.append(Touch(R.file_key(node.uid), role))

    def _symlink_uses(self, symlink_uids, touches):
        for uid in symlink_uids:
            touches.append(Touch(R.file_key(uid), Role.USE))

    def _path_op_read(self, record, touches, ann, follow=True, arg="path"):
        """Common body for stat-like path operations."""
        norm = self._norm(record.args[arg])
        self.path_use(norm, touches)
        if not record.ok:
            return None
        res = self.resolve(norm, follow_last=follow)
        if res is None or res[2] is None:
            self.model_misses += 1
            return None
        parent, _name, node, symlinks = res
        self._symlink_uses(symlinks, touches)
        if parent is not node:
            self._file_use(parent, touches)
        self._file_use(node, touches)
        return node

    def _descendant_paths(self, node, base):
        """All dentry paths under directory ``node`` (inclusive of the
        files they name)."""
        out = []

        def _walk(current, prefix):
            if not current.is_dir:
                return
            for name, child in current.children.items():
                child_path = prefix + "/" + name
                out.append((child_path, child))
                _walk(child, child_path)

        _walk(node, base.rstrip("/"))
        return out

    # -- open family ----------------------------------------------------

    def _k_open(self, record, touches, ann):
        norm = self._norm(record.args["path"])
        if not record.ok:
            self.path_use(norm, touches)
            return
        flags = record.args.get("flags", 0)
        if isinstance(flags, str):
            creat = "O_CREAT" in flags
            append = "O_APPEND" in flags
            trunc = "O_TRUNC" in flags
            wants_write = "O_WRONLY" in flags or "O_RDWR" in flags
        else:
            from repro.vfs.flags import O_ACCMODE, O_APPEND, O_CREAT, O_TRUNC

            creat = bool(flags & O_CREAT)
            append = bool(flags & O_APPEND)
            trunc = bool(flags & O_TRUNC)
            wants_write = (flags & O_ACCMODE) != 0
        res = self.resolve(norm, follow_last=True)
        created = False
        node = None
        if res is None:
            self.model_misses += 1
            self.path_use(norm, touches)
        else:
            parent, name, node, symlinks = res
            self._symlink_uses(symlinks, touches)
            if node is None:
                if creat and name is not None:
                    node = self._new_node("reg")
                    parent.children[name] = node
                    created = True
                else:
                    self.model_misses += 1
            if created:
                self._file_use(parent, touches)
                self._file_use(node, touches, Role.CREATE)
                self.path_transition_create(norm, touches)
            else:
                if parent is not node:
                    self._file_use(parent, touches)
                self._file_use(node, touches)
                self.path_use(norm, touches)
                if trunc and wants_write and node.ftype == "reg":
                    previous = self._note_size(node, record.idx, 0)
                    if previous is not None:
                        ann["size_chain"] = previous
        gen = self.fd_open(
            record.ret, node.uid if node else None, touches, norm, append
        )
        ann["ret_fd"] = gen

    def _k_creat(self, record, touches, ann):
        record.args.setdefault("flags", "O_WRONLY|O_CREAT|O_TRUNC")
        self._k_open(record, touches, ann)

    def _k_shm_open(self, record, touches, ann):
        shim = dict(record.args)
        shim["path"] = "/dev/shm/" + record.args["name"].lstrip("/")
        shim.setdefault("flags", "O_RDWR|O_CREAT")
        clone = _clone_record(record, args=shim)
        self._k_open(clone, touches, ann)

    def _k_shm_unlink(self, record, touches, ann):
        shim = dict(record.args)
        shim["path"] = "/dev/shm/" + record.args["name"].lstrip("/")
        clone = _clone_record(record, args=shim)
        self._k_unlink(clone, touches, ann)

    # -- descriptor ops ---------------------------------------------------

    def _k_close(self, record, touches, ann):
        num = record.args["fd"]
        if not record.ok:
            binding = self.fd_bindings.get(num)
            if binding is not None:
                ann["fd"] = binding.gen
            return
        binding = self.fd_close(num, touches)
        ann["fd"] = binding.gen
        self._file_use_uid(binding.uid, touches)

    def _file_use_uid(self, uid, touches, role=Role.USE):
        if uid is not None:
            touches.append(Touch(R.file_key(uid), role))

    def _fd_arg_op(self, record, touches, ann):
        num = record.args["fd"]
        if not record.ok:
            binding = self.fd_bindings.get(num)
            if binding is not None:
                ann["fd"] = binding.gen
            return None
        binding = self.fd_use(num, touches)
        ann["fd"] = binding.gen
        self._file_use_uid(binding.uid, touches)
        return binding

    # -- data transfers track fd offsets and file sizes, feeding the
    # -- file-size dependency refinement --------------------------------

    def _node_of(self, binding):
        if binding is None or binding.uid is None:
            return None
        return self._by_uid.get(binding.uid)

    def _k_read(self, record, touches, ann):
        binding = self._fd_arg_op(record, touches, ann)
        node = self._node_of(binding)
        count = record.ret if isinstance(record.ret, int) and record.ret > 0 else 0
        if binding is None or not record.ok:
            return
        start = binding.offset
        binding.offset = start + count
        if node is not None and count:
            dep = self._size_dep(node.uid, start + count)
            if dep is not None:
                ann["size_dep"] = dep

    def _k_pread(self, record, touches, ann):
        binding = self._fd_arg_op(record, touches, ann)
        node = self._node_of(binding)
        count = record.ret if isinstance(record.ret, int) and record.ret > 0 else 0
        if node is not None and count and record.ok:
            offset = record.args.get("offset", 0)
            dep = self._size_dep(node.uid, offset + count)
            if dep is not None:
                ann["size_dep"] = dep

    def _k_write(self, record, touches, ann):
        binding = self._fd_arg_op(record, touches, ann)
        node = self._node_of(binding)
        count = record.ret if isinstance(record.ret, int) and record.ret > 0 else 0
        if binding is None or not record.ok:
            return
        start = node.size if (binding.append and node is not None) else binding.offset
        binding.offset = start + count
        if node is not None and start + count > node.size:
            previous = self._note_size(node, record.idx, start + count)
            if previous is not None:
                ann["size_chain"] = previous

    def _k_pwrite(self, record, touches, ann):
        binding = self._fd_arg_op(record, touches, ann)
        node = self._node_of(binding)
        count = record.ret if isinstance(record.ret, int) and record.ret > 0 else 0
        if node is not None and count and record.ok:
            end = record.args.get("offset", 0) + count
            if end > node.size:
                previous = self._note_size(node, record.idx, end)
                if previous is not None:
                    ann["size_chain"] = previous

    def _k_lseek(self, record, touches, ann):
        binding = self._fd_arg_op(record, touches, ann)
        if binding is not None and record.ok and isinstance(record.ret, int):
            binding.offset = record.ret

    def _k_ftruncate(self, record, touches, ann):
        binding = self._fd_arg_op(record, touches, ann)
        node = self._node_of(binding)
        if node is not None and record.ok:
            length = record.args.get("length", 0)
            previous = self._note_size(node, record.idx, length)
            if previous is not None:
                ann["size_chain"] = previous

    def _k_fallocate(self, record, touches, ann):
        binding = self._fd_arg_op(record, touches, ann)
        node = self._node_of(binding)
        if node is not None and record.ok:
            end = record.args.get("offset", 0) + record.args.get("length", 0)
            if end > node.size:
                previous = self._note_size(node, record.idx, end)
                if previous is not None:
                    ann["size_chain"] = previous

    def _k_truncate(self, record, touches, ann):
        node = self._path_op_read(record, touches, ann, follow=True)
        if node is not None and record.ok:
            previous = self._note_size(node, record.idx, record.args.get("length", 0))
            if previous is not None:
                ann["size_chain"] = previous

    _k_fsync = _fd_arg_op
    _k_fdatasync = _fd_arg_op
    _k_fstat = _fd_arg_op
    _k_fstat_extended = _fd_arg_op
    _k_fstatfs = _fd_arg_op
    _k_fchmod = _fd_arg_op
    _k_fchown = _fd_arg_op
    _k_futimes = _fd_arg_op
    _k_flock = _fd_arg_op
    _k_fadvise = _fd_arg_op
    _k_getdents = _fd_arg_op
    _k_fgetxattr = _fd_arg_op
    _k_fsetxattr = _fd_arg_op
    _k_flistxattr = _fd_arg_op
    _k_fremovexattr = _fd_arg_op
    _k_fgetattrlist = _fd_arg_op
    _k_fsetattrlist = _fd_arg_op
    _k_getattrlistbulk = _fd_arg_op
    _k_getdirentriesattr = _fd_arg_op

    def _k_mmap(self, record, touches, ann):
        if record.args.get("fd", -1) == -1:
            return
        self._fd_arg_op(record, touches, ann)

    def _k_munmap(self, record, touches, ann):
        pass

    def _k_msync(self, record, touches, ann):
        pass

    def _k_dup(self, record, touches, ann):
        binding = self._fd_arg_op(record, touches, ann)
        if not record.ok:
            return
        uid = binding.uid if binding else None
        gen = self.fd_open(record.ret, uid, touches)
        ann["ret_fd"] = gen

    def _k_dup2(self, record, touches, ann):
        binding = self._fd_arg_op(record, touches, ann)
        if not record.ok:
            return
        newfd = record.args["newfd"]
        old = self.fd_bindings.get(newfd)
        if old is not None and old.alive:
            touches.append(Touch(R.fd_key(newfd, old.gen), Role.DELETE))
            old.alive = False
        uid = binding.uid if binding else None
        gen = self.fd_open(newfd, uid, touches)
        ann["newfd_gen"] = gen

    def _k_fcntl(self, record, touches, ann):
        cmd = record.args.get("cmd", "")
        binding = self._fd_arg_op(record, touches, ann)
        if record.ok and cmd in ("F_DUPFD", "F_DUPFD_CLOEXEC"):
            uid = binding.uid if binding else None
            gen = self.fd_open(record.ret, uid, touches)
            ann["ret_fd"] = gen

    def _k_fchdir(self, record, touches, ann):
        binding = self._fd_arg_op(record, touches, ann)
        if record.ok and binding is not None and binding.path:
            self.cwd = binding.path

    def _k_pipe(self, record, touches, ann):
        if not record.ok:
            return
        fds = record.ret or []
        gens = []
        for num in fds:
            gens.append(self.fd_open(num, None, touches))
        ann["ret_fds"] = gens

    # -- path metadata reads ---------------------------------------------

    def _k_stat(self, record, touches, ann):
        self._path_op_read(record, touches, ann, follow=True)

    _k_access = _k_stat
    _k_statfs = _k_stat
    _k_getattrlist = _k_stat
    _k_getxattr = _k_stat
    _k_listxattr = _k_stat
    _k_stat_extended = _k_stat

    def _k_lstat(self, record, touches, ann):
        self._path_op_read(record, touches, ann, follow=False)

    _k_readlink = _k_lstat
    _k_lgetxattr = _k_lstat
    _k_llistxattr = _k_lstat
    _k_lstat_extended = _k_lstat

    def _k_statfs_global(self, record, touches, ann):
        pass

    def _k_getcwd(self, record, touches, ann):
        pass

    def _k_sync(self, record, touches, ann):
        pass

    # -- path metadata writes ----------------------------------------------

    def _k_chmod(self, record, touches, ann):
        self._path_op_read(record, touches, ann, follow=True)

    _k_chown = _k_chmod
    _k_utimes = _k_chmod
    _k_setattrlist = _k_chmod
    _k_setxattr = _k_chmod
    _k_removexattr = _k_chmod

    def _k_lsetxattr(self, record, touches, ann):
        self._path_op_read(record, touches, ann, follow=False)

    _k_lremovexattr = _k_lsetxattr

    def _k_chdir(self, record, touches, ann):
        node = self._path_op_read(record, touches, ann, follow=True)
        if record.ok and node is not None:
            self.cwd = self._norm(record.args["path"])

    # -- namespace changes ---------------------------------------------------

    def _k_mkdir(self, record, touches, ann):
        norm = self._norm(record.args["path"])
        if not record.ok:
            self.path_use(norm, touches)
            return
        res = self.resolve(norm, follow_last=False)
        if res is None or res[1] is None:
            self.model_misses += 1
            self.path_use(norm, touches)
            return
        parent, name, node, symlinks = res
        self._symlink_uses(symlinks, touches)
        if node is None:
            node = self._new_node("dir")
            parent.children[name] = node
        else:
            self.model_misses += 1
        self._file_use(parent, touches)
        self._file_use(node, touches, Role.CREATE)
        self.path_transition_create(norm, touches)

    def _k_rmdir(self, record, touches, ann):
        norm = self._norm(record.args["path"])
        if not record.ok:
            self.path_use(norm, touches)
            return
        res = self.resolve(norm, follow_last=False)
        if res is None or res[2] is None:
            self.model_misses += 1
            self.path_use(norm, touches)
            return
        parent, name, node, symlinks = res
        self._symlink_uses(symlinks, touches)
        self._file_use(parent, touches)
        self._file_use(node, touches, Role.DELETE)
        self.path_transition_delete(norm, touches)
        if name is not None:
            parent.children.pop(name, None)

    def _k_unlink(self, record, touches, ann):
        norm = self._norm(record.args["path"])
        if not record.ok:
            self.path_use(norm, touches)
            return
        res = self.resolve(norm, follow_last=False)
        if res is None or res[2] is None:
            self.model_misses += 1
            self.path_use(norm, touches)
            return
        parent, name, node, symlinks = res
        self._symlink_uses(symlinks, touches)
        self._file_use(parent, touches)
        node.nlink -= 1
        role = Role.DELETE if node.nlink <= 0 else Role.USE
        self._file_use(node, touches, role)
        self.path_transition_delete(norm, touches)
        if name is not None:
            parent.children.pop(name, None)

    def _k_rename(self, record, touches, ann):
        old = self._norm(record.args["old"])
        new = self._norm(record.args["new"])
        if not record.ok:
            self.path_use(old, touches)
            self.path_use(new, touches)
            return
        src = self.resolve(old, follow_last=False)
        dst = self.resolve(new, follow_last=False)
        if src is None or src[2] is None or dst is None or dst[1] is None:
            self.model_misses += 1
            self.path_use(old, touches)
            self.path_use(new, touches)
            return
        src_parent, src_name, node, src_symlinks = src
        dst_parent, dst_name, displaced, dst_symlinks = dst
        self._symlink_uses(src_symlinks, touches)
        self._symlink_uses(dst_symlinks, touches)
        self._file_use(src_parent, touches)
        if dst_parent is not src_parent:
            self._file_use(dst_parent, touches)
        self._file_use(node, touches)
        if displaced is not None and displaced is not node:
            displaced.nlink -= 1
            role = Role.DELETE if displaced.nlink <= 0 else Role.USE
            self._file_use(displaced, touches, role)
        # Descendants: every file and dentry under a renamed directory
        # is affected (the Figure 2 example).
        if node.is_dir:
            for child_path, child in self._descendant_paths(node, old):
                self._file_use(child, touches)
                self.path_transition_delete(child_path, touches)
        self.path_transition_delete(old, touches)
        self.path_transition_create(new, touches)
        if node.is_dir:
            for child_path, _child in self._descendant_paths(node, old):
                suffix = child_path[len(old) :]
                self.path_transition_create(new + suffix, touches)
        # Mutate the shadow tree last so descendant enumeration above
        # saw the pre-rename names.
        src_parent.children.pop(src_name, None)
        dst_parent.children[dst_name] = node

    def _k_link(self, record, touches, ann):
        target = self._norm(record.args["target"])
        new = self._norm(record.args["path"])
        if not record.ok:
            self.path_use(target, touches)
            self.path_use(new, touches)
            return
        src = self.resolve(target, follow_last=True)
        dst = self.resolve(new, follow_last=False)
        if src is None or src[2] is None or dst is None or dst[1] is None:
            self.model_misses += 1
            self.path_use(target, touches)
            self.path_use(new, touches)
            return
        node = src[2]
        self._symlink_uses(src[3], touches)
        self._file_use(src[0], touches)
        self._file_use(node, touches)
        self._file_use(dst[0], touches)
        node.nlink += 1
        dst[0].children[dst[1]] = node
        self.path_use(target, touches)
        self.path_transition_create(new, touches)

    def _k_symlink(self, record, touches, ann):
        new = self._norm(record.args["path"])
        if not record.ok:
            self.path_use(new, touches)
            return
        dst = self.resolve(new, follow_last=False)
        if dst is None or dst[1] is None:
            self.model_misses += 1
            self.path_use(new, touches)
            return
        parent, name, existing, symlinks = dst
        self._symlink_uses(symlinks, touches)
        if existing is not None:
            self.model_misses += 1
        node = self._new_node("symlink", record.args.get("target"))
        parent.children[name] = node
        self._file_use(parent, touches)
        self._file_use(node, touches, Role.CREATE)
        self.path_transition_create(new, touches)

    def _k_exchangedata(self, record, touches, ann):
        for arg in ("path1", "path2"):
            norm = self._norm(record.args[arg])
            self.path_use(norm, touches)
            if record.ok:
                res = self.resolve(norm, follow_last=True)
                if res is not None and res[2] is not None:
                    self._file_use(res[2], touches)

    # -- asynchronous I/O -----------------------------------------------------

    def _k_aio_read(self, record, touches, ann):
        self._fd_arg_op(record, touches, ann)
        if record.ok:
            ann["aiocb"] = self.aio_submit(record.args["aiocb"], touches)

    _k_aio_write = _k_aio_read

    def _k_aio_error(self, record, touches, ann):
        ann["aiocb"] = self.aio_use(record.args["aiocb"], touches)

    _k_aio_cancel = _k_aio_error

    def _k_aio_return(self, record, touches, ann):
        ann["aiocb"] = self.aio_use(
            record.args["aiocb"], touches, role=Role.DELETE
        )
        self.aio_state.pop(record.args["aiocb"], None)

    def _k_aio_suspend(self, record, touches, ann):
        gens = []
        for cb_id in record.args.get("aiocbs", []):
            gens.append(self.aio_use(cb_id, touches))
        ann["aiocb_gens"] = gens

    def _k_lio_listio(self, record, touches, ann):
        gens = []
        for op in record.args.get("ops", []):
            clone = _clone_record(record, args={"fd": op["fd"]})
            self._fd_arg_op(clone, touches, ann)
            gens.append(self.aio_submit(op["aiocb"], touches))
        ann["aiocb_gens"] = gens


def _clone_record(record, args):
    """A shallow record copy with substituted args (for shim kinds)."""

    class _Shim(object):
        __slots__ = ("idx", "tid", "name", "args", "ret", "err", "ok")

        def __init__(self):
            self.idx = record.idx
            self.tid = record.tid
            self.name = record.name
            self.args = args
            self.ret = record.ret
            self.err = record.err
            self.ok = record.ok

    return _Shim()
