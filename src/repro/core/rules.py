"""The three ROOT ordering rules (Table 1).

========== ==============================================
Rule       Definition
========== ==============================================
Stage      acts[create] < acts[i] < acts[delete]
Sequential acts[i] < acts[i+1]
Name       N@G.acts[last] < N@(G+1).acts[first]
========== ==============================================

``a1 < a2`` means a1 must replay before a2.  The stage constraint only
applies when the series actually begins with a create / ends with a
delete.  Sequential subsumes stage; sequential and name each allow
orderings the other forbids.

This module also provides *checkers* that decide whether a candidate
replay ordering of an action series is admissible under each rule --
used by tests (including the paper's Figure 3 examples) and by the
property-based validation of the dependency builder.
"""


class Rule(object):
    STAGE = "stage"
    SEQUENTIAL = "sequential"
    NAME = "name"

    ALL = (STAGE, SEQUENTIAL, NAME)


def subsumes(stronger, weaker):
    """True if every ordering allowed by ``stronger`` is allowed by
    ``weaker`` (sequential subsumes stage; name is incomparable)."""
    if stronger == weaker:
        return True
    return stronger == Rule.SEQUENTIAL and weaker == Rule.STAGE


def check_sequential(series, order_position):
    """Is the replay consistent with sequential ordering of ``series``?

    ``series`` is the action-id list in original-trace order;
    ``order_position`` maps action id -> replay position.
    Returns the list of violated pairs (empty if valid).
    """
    violations = []
    for first, second in zip(series, series[1:]):
        if order_position[first] > order_position[second]:
            violations.append((first, second))
    return violations


def check_stage(series, order_position, has_create, has_delete):
    """Is the replay consistent with stage ordering of ``series``?

    ``has_create``/``has_delete`` say whether the first action of the
    series creates the resource and the last deletes it (the constraint
    does not apply otherwise).
    """
    violations = []
    if not series:
        return violations
    if has_create:
        create = series[0]
        for action in series[1:]:
            if order_position[action] < order_position[create]:
                violations.append((create, action))
    if has_delete:
        delete = series[-1]
        for action in series[:-1]:
            if order_position[action] > order_position[delete]:
                violations.append((action, delete))
    return violations


def check_name(series_by_generation, order_position):
    """Is the replay consistent with name ordering across generations?

    ``series_by_generation`` is a list of action-id lists, one per
    generation, in generation order.  Generations must neither overlap
    nor reorder: every action of generation G must replay before every
    action of generation G+1 (transition actions that appear in both
    adjacent generations are exempt from comparison with themselves).
    """
    violations = []
    for earlier, later in zip(series_by_generation, series_by_generation[1:]):
        if not earlier or not later:
            continue
        last_pos = max(order_position[a] for a in earlier)
        for action in later:
            if action in earlier:
                continue
            if order_position[action] < last_pos:
                culprit = max(earlier, key=lambda a: order_position[a])
                if culprit != action:
                    violations.append((culprit, action))
    return violations
