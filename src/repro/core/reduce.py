"""Transitive reduction of compiled dependency graphs.

Replay enforcement waits on one completion event per predecessor edge
(section 4.3.3), so every edge implied by other edges is pure replay
overhead.  Two sources of implication exist:

- *explicit* transitivity: if ``p -> q`` and ``q -> v`` are in the
  graph, ``p -> v`` adds nothing;
- *implicit thread sequencing*: each replay thread plays its own
  actions in order, so a path may hop for free from an action to any
  later action of the same thread.

This pass computes, for every action, the minimal predecessor set
whose closure (union the implicit thread chains) equals the closure of
the full graph.  The full attributed edge set (``edge_kinds``,
``preds``) is left untouched: Figure-8 edge accounting and the
``preds``-based replay path are unchanged, and the reduction is purely
a replay fast path.

Two structural facts make the pass near-linear:

1. Every edge points forward in trace order (``src < dst``, guaranteed
   by construction), so actions can be processed in index order with
   all predecessor state already final.
2. Reachability is *prefix-closed per thread*: if action ``a`` of
   thread ``t`` reaches ``v``, every earlier ``t``-action reaches ``v``
   too (it reaches ``a`` through the thread chain).  The whole
   reach-set of an action therefore compresses to one watermark per
   thread -- the highest reaching index -- and set union becomes an
   elementwise max over a length-``T`` vector.

Greedily scanning each action's candidate predecessors in descending
index order and keeping only those not covered by the running
watermark vector yields exactly the unique transitive reduction of a
DAG, restricted to materialized edges, in O((V + E) * T) time.
"""


def thread_prev_of(tid_of):
    """For each action, the index of the previous same-thread action
    (or None): the implicit thread_seq predecessor."""
    prev = [None] * len(tid_of)
    last = {}
    for idx, tid in enumerate(tid_of):
        prev[idx] = last.get(tid)
        last[tid] = idx
    return prev


def reduce_graph(graph, tid_of):
    """Attach ``graph.reduced_preds`` and return the number of edges
    removed.

    ``tid_of`` maps action index -> thread id (implicit sequencing).
    The candidate set is ``graph.primary_preds`` when the builder
    provided one (its closure provably covers the full edge set --
    see ``build_dependencies``), otherwise the full ``preds``.
    """
    n = graph.n_actions
    preds = graph.preds
    candidates = graph.primary_preds
    if candidates is None:
        candidates = preds

    # Dense thread indices for the watermark vectors.
    tindex = {}
    tid_ix = [0] * n
    for idx, tid in enumerate(tid_of):
        slot = tindex.get(tid)
        if slot is None:
            slot = tindex[tid] = len(tindex)
        tid_ix[idx] = slot
    nthreads = len(tindex)

    # reach[i][t]: highest index of a thread-t action reaching i
    # (including i itself); -1 when none does.
    reach = [None] * n
    last_by_thread = [-1] * nthreads
    reduced = []
    removed = 0
    for idx in range(n):
        own = tid_ix[idx]
        prev = last_by_thread[own]
        cover = list(reach[prev]) if prev >= 0 else [-1] * nthreads
        wait = []
        if preds[idx]:
            kept = set()
            for src in sorted(candidates[idx], reverse=True):
                if src <= cover[tid_ix[src]]:
                    continue  # implied by a kept pred or thread order
                kept.add(src)
                source_reach = reach[src]
                for t in range(nthreads):
                    if source_reach[t] > cover[t]:
                        cover[t] = source_reach[t]
            # Filter the full pred list (preserving its order) so the
            # replayer's wait sequence is the old one minus the
            # redundant waits.
            wait = [src for src in preds[idx] if src in kept]
            removed += len(preds[idx]) - len(wait)
        cover[own] = idx
        reach[idx] = cover
        last_by_thread[own] = idx
        reduced.append(wait)
    graph.reduced_preds = reduced
    return removed


def closure_matrix(n, pred_lists, tid_of):
    """Reachability bitsets (over all actions) of a graph plus implicit
    thread sequencing; used by tests to check reduction soundness."""
    thread_prev = thread_prev_of(tid_of)
    reach = [0] * n
    for idx in range(n):
        cover = 1 << idx
        prev = thread_prev[idx]
        if prev is not None:
            cover |= reach[prev]
        for src in pred_lists[idx]:
            cover |= reach[src]
        reach[idx] = cover
    return reach
