"""Transitive reduction of compiled dependency graphs.

Replay enforcement waits on one completion event per predecessor edge
(section 4.3.3), so every edge implied by other edges is pure replay
overhead.  Two sources of implication exist:

- *explicit* transitivity: if ``p -> q`` and ``q -> v`` are in the
  graph, ``p -> v`` adds nothing;
- *implicit thread sequencing*: each replay thread plays its own
  actions in order, so a path may hop for free from an action to any
  later action of the same thread.

This pass computes, for every action, the minimal predecessor set
whose closure (union the implicit thread chains) equals the closure of
the full graph.  The full attributed edge set (``edge_kinds``,
``preds``) is left untouched: Figure-8 edge accounting and the
``preds``-based replay path are unchanged, and the reduction is purely
a replay fast path.

Two structural facts make the pass near-linear:

1. Every edge points forward in trace order (``src < dst``, guaranteed
   by construction), so actions can be processed in index order with
   all predecessor state already final.
2. Reachability is *prefix-closed per thread*: if action ``a`` of
   thread ``t`` reaches ``v``, every earlier ``t``-action reaches ``v``
   too (it reaches ``a`` through the thread chain).  The whole
   reach-set of an action therefore compresses to one watermark per
   thread -- the highest reaching index -- and set union becomes an
   elementwise max over a length-``T`` vector.

Greedily scanning each action's candidate predecessors in descending
index order and keeping only those not covered by the running
watermark vector yields exactly the unique transitive reduction of a
DAG, restricted to materialized edges, in O((V + E) * T) time.
"""


def thread_prev_of(tid_of):
    """For each action, the index of the previous same-thread action
    (or None): the implicit thread_seq predecessor."""
    prev = [None] * len(tid_of)
    last = {}
    for idx, tid in enumerate(tid_of):
        prev[idx] = last.get(tid)
        last[tid] = idx
    return prev


class IncrementalReducer(object):
    """One-action-at-a-time transitive reduction.

    The single implementation behind both paths: :func:`reduce_graph`
    feeds a finished graph through one reducer (batch), and the
    streaming compiler feeds each action as it is compiled.  Both
    produce identical ``wait`` lists because the greedy scan only ever
    consults *earlier* state, already final in either driving order.

    Thread slots are assigned on first appearance, so a reducer fed
    incrementally discovers threads as it goes: its watermark vectors
    grow over time where the batch pass used full-length vectors.  The
    two are equivalent -- a batch vector's entry for a thread not yet
    seen at index ``i`` is necessarily ``-1`` (edges point forward, so
    no action of an unseen thread reaches ``i``) -- which is exactly
    what the lazy ``-1`` padding reproduces.

    Memory is bounded by retirement: a windowed caller may call
    :meth:`retire_except` with the set of indices still citable as
    candidate sources (``DependencyBuilder.live_refs``); every other
    reach vector below the ceiling is dropped, except each thread's
    current frontier (needed to seed its next action's cover), which
    is dropped lazily on that next feed.
    """

    def __init__(self):
        self.tindex = {}  # tid -> dense slot
        self.tid_slots = []  # action idx -> dense slot
        self.reach = {}  # action idx -> watermark vector
        self.last_by_thread = []  # slot -> latest action idx (or -1)
        self.removed = 0
        self._retired_to = 0
        self._pinned = frozenset()  # retained past the ceiling as live refs

    def feed(self, idx, tid, preds, candidates):
        """Reduce one action's predecessor list; ``idx`` must be the
        next index.  Returns the wait list (``preds`` order preserved,
        redundant entries dropped)."""
        own = self.tindex.get(tid)
        if own is None:
            own = self.tindex[tid] = len(self.tindex)
            self.last_by_thread.append(-1)
        nthreads = len(self.tindex)
        reach = self.reach
        tid_slots = self.tid_slots
        prev = self.last_by_thread[own]
        if prev >= 0:
            cover = list(reach[prev])
            if prev < self._retired_to and prev not in self._pinned:
                # Was kept past the ceiling only as this thread's
                # frontier; the new action supersedes it.
                del reach[prev]
        else:
            cover = []
        if len(cover) < nthreads:
            cover.extend([-1] * (nthreads - len(cover)))
        wait = []
        if preds:
            kept = set()
            for src in sorted(candidates, reverse=True):
                if src <= cover[tid_slots[src]]:
                    continue  # implied by a kept pred or thread order
                kept.add(src)
                source_reach = reach[src]
                for t in range(len(source_reach)):
                    if source_reach[t] > cover[t]:
                        cover[t] = source_reach[t]
            # Filter the full pred list (preserving its order) so the
            # replayer's wait sequence is the old one minus the
            # redundant waits.
            wait = [src for src in preds if src in kept]
            self.removed += len(preds) - len(wait)
        cover[own] = idx
        reach[idx] = cover
        self.last_by_thread[own] = idx
        tid_slots.append(own)
        return wait

    def retire_except(self, live, ceiling):
        """Drop reach vectors for indices below ``ceiling`` that are
        neither in ``live`` (still citable as candidate sources) nor a
        thread frontier.  Returns the number of vectors released.
        Re-sweeping is sound: an index unpinned since the last sweep is
        released then."""
        frontier = set(self.last_by_thread)
        reach = self.reach
        released = 0
        for idx in list(reach):
            if idx < ceiling and idx not in live and idx not in frontier:
                del reach[idx]
                released += 1
        self._retired_to = max(self._retired_to, ceiling)
        self._pinned = live
        return released

    @property
    def live_vectors(self):
        return len(self.reach)


def reduce_graph(graph, tid_of):
    """Attach ``graph.reduced_preds`` and return the number of edges
    removed.

    ``tid_of`` maps action index -> thread id (implicit sequencing).
    The candidate set is ``graph.primary_preds`` when the builder
    provided one (its closure provably covers the full edge set --
    see ``build_dependencies``), otherwise the full ``preds``.  A thin
    batch wrapper over :class:`IncrementalReducer`.
    """
    preds = graph.preds
    candidates = graph.primary_preds
    if candidates is None:
        candidates = preds
    reducer = IncrementalReducer()
    reduced = [
        reducer.feed(idx, tid_of[idx], preds[idx], candidates[idx])
        for idx in range(graph.n_actions)
    ]
    graph.reduced_preds = reduced
    return reducer.removed


def closure_matrix(n, pred_lists, tid_of):
    """Reachability bitsets (over all actions) of a graph plus implicit
    thread sequencing; used by tests to check reduction soundness."""
    thread_prev = thread_prev_of(tid_of)
    reach = [0] * n
    for idx in range(n):
        cover = 1 << idx
        prev = thread_prev[idx]
        if prev is not None:
            cover |= reach[prev]
        for src in pred_lists[idx]:
            cover |= reach[src]
        reach[idx] = cover
    return reach
