"""The ROOT trace model and ordering rules (paper sections 2-3).

- :mod:`repro.core.resources` -- resource keys, roles, touches
- :mod:`repro.core.rules` -- the stage / sequential / name rules (Table 1)
- :mod:`repro.core.modes` -- replay-mode matrix (Table 2)
- :mod:`repro.core.fsstate` -- symbolic UNIX file-system model that maps
  each trace action to the full set of resources it touches
- :mod:`repro.core.model` -- trace model: actions + touches + annotations
- :mod:`repro.core.deps` -- partial-order (dependency graph) construction
- :mod:`repro.core.analysis` -- action series, edge statistics, ordering
  validation
"""

from repro.core.resources import Role, Touch
from repro.core.rules import Rule
from repro.core.modes import ReplayMode, RuleSet
from repro.core.model import TraceModel

__all__ = ["Role", "Touch", "Rule", "RuleSet", "ReplayMode", "TraceModel"]
