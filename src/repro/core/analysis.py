"""Trace/graph analysis: action series, edge statistics, validation.

Supports the paper's Figure 2 (action series), Figure 3 (valid/invalid
orderings), and Figure 8 (edge counts and lengths), plus the
property-based validation used by the test suite: given a replay order,
check that every enabled rule is respected.
"""

from repro.core import rules as root_rules
from repro.core.resources import AIOCB, FD, FILE, PATH, Role, name_of


def action_series(actions, include_thread=True):
    """Materialize the per-resource action series (Figure 2b): an
    ordered dict-like mapping resource key -> list of action indices in
    original trace order."""
    series = {}
    for action in actions:
        seen_here = set()
        for touch in action.touches:
            if not include_thread and touch.kind == "thread":
                continue
            if touch.key in seen_here:
                continue
            seen_here.add(touch.key)
            series.setdefault(touch.key, []).append(action.idx)
    return series


def series_roles(actions):
    """For each resource, whether its first touch is a create and its
    last touch is a delete (stage-rule applicability)."""
    first_role = {}
    last_role = {}
    for action in actions:
        for touch in action.touches:
            if touch.key not in first_role:
                first_role[touch.key] = touch.role
            last_role[touch.key] = touch.role
    return {
        key: (first_role[key] == Role.CREATE, last_role[key] == Role.DELETE)
        for key in first_role
    }


def generations_by_name(actions):
    """Group path/fd/aiocb series by shared name:
    ``{(kind, name): [series_of_gen0, series_of_gen1, ...]}``."""
    series = action_series(actions)
    grouped = {}
    for key, acts in series.items():
        name = name_of(key)
        if name is None:
            continue
        grouped.setdefault(name, []).append((key[2], acts))
    return {
        name: [acts for _gen, acts in sorted(entries)]
        for name, entries in grouped.items()
    }


def validate_order(actions, ruleset, order):
    """Check a replay ordering against every enabled rule.

    ``order`` is a list of action indices in replay-issue order (a
    permutation of all actions).  Returns a list of human-readable
    violation strings; empty means the ordering is admissible.
    """
    position = {idx: pos for pos, idx in enumerate(order)}
    series = action_series(actions)
    roles = series_roles(actions)
    violations = []

    def _record(kind, key, pairs):
        for first, second in pairs:
            violations.append(
                "%s violated on %r: action %d must precede %d"
                % (kind, key, first, second)
            )

    # thread_seq and program_seq
    per_thread = {}
    for action in actions:
        per_thread.setdefault(action.record.tid, []).append(action.idx)
    for tid, acts in per_thread.items():
        _record(
            "thread_seq", ("thread", tid), root_rules.check_sequential(acts, position)
        )
    if ruleset.program_seq:
        all_idx = [a.idx for a in actions]
        _record("program_seq", ("prog",), root_rules.check_sequential(all_idx, position))

    for key, acts in series.items():
        kind = key[0]
        has_create, has_delete = roles[key]
        if kind == FILE:
            if ruleset.file_seq:
                _record("file_seq", key, root_rules.check_sequential(acts, position))
            elif ruleset.file_stage:
                _record(
                    "file_stage",
                    key,
                    root_rules.check_stage(acts, position, has_create, has_delete),
                )
        elif kind == PATH and ruleset.path_stage:
            _record(
                "path_stage",
                key,
                root_rules.check_stage(acts, position, has_create, has_delete),
            )
        elif kind == FD:
            if ruleset.fd_seq:
                _record("fd_seq", key, root_rules.check_sequential(acts, position))
            elif ruleset.fd_stage:
                _record(
                    "fd_stage",
                    key,
                    root_rules.check_stage(acts, position, has_create, has_delete),
                )
        elif kind == AIOCB:
            if ruleset.aio_seq:
                _record("aio_seq", key, root_rules.check_sequential(acts, position))
            elif ruleset.aio_stage:
                _record(
                    "aio_stage",
                    key,
                    root_rules.check_stage(acts, position, has_create, has_delete),
                )

    if ruleset.path_name:
        for name, gen_series in generations_by_name(actions).items():
            if name[0] != PATH:
                continue
            _record(
                "path_name", name, root_rules.check_name(gen_series, position)
            )
    return violations


def edge_stats(graph, actions):
    """Count and mean time-length of a dependency graph's edges
    (Figure 8: ARTC's edges are fewer but far *longer* than temporal
    ordering's)."""
    lengths = []
    for src, dst in graph.edges():
        lengths.append(
            actions[dst].record.t_enter - actions[src].record.t_enter
        )
    count = len(lengths)
    mean = sum(lengths) / count if count else 0.0
    return {"edges": count, "mean_length": mean}


def enumerate_io_space(actions, ruleset, limit=100_000):
    """All admissible replay orderings of a (small) action set.

    This is section 2's I/O-space formalism made executable: the
    replay benchmark's I/O space is one I/O set (the traced actions)
    plus the set of orderings the rules admit.  Enumeration walks every
    interleaving consistent with thread order and keeps those
    :func:`validate_order` accepts.  Exponential by nature -- intended
    for tests and teaching on traces of a dozen actions or fewer;
    ``limit`` caps the number of interleavings examined.
    """
    per_thread = {}
    for action in actions:
        per_thread.setdefault(action.record.tid, []).append(action.idx)
    queues = list(per_thread.values())
    admissible = []
    examined = [0]

    def _walk(prefix, positions):
        if examined[0] >= limit:
            raise ValueError("interleaving limit exceeded; use fewer actions")
        if len(prefix) == len(actions):
            examined[0] += 1
            if validate_order(actions, ruleset, prefix) == []:
                admissible.append(tuple(prefix))
            return
        for index, queue in enumerate(queues):
            position = positions[index]
            if position < len(queue):
                prefix.append(queue[position])
                positions[index] += 1
                _walk(prefix, positions)
                positions[index] -= 1
                prefix.pop()

    _walk([], [0] * len(queues))
    return admissible


def topological_order(graph, actions):
    """One valid replay order under the graph + thread_seq (used by
    tests to confirm the graph is acyclic and admissible)."""
    n = graph.n_actions
    preds = [set(p) for p in graph.preds]
    per_thread = {}
    for action in actions:
        per_thread.setdefault(action.record.tid, []).append(action.idx)
    thread_prev = {}
    for acts in per_thread.values():
        for earlier, later in zip(acts, acts[1:]):
            preds[later].add(earlier)
    ready = sorted(i for i in range(n) if not preds[i])
    out = []
    done = set()
    succs = [[] for _ in range(n)]
    for dst, sources in enumerate(preds):
        for src in sources:
            succs[src].append(dst)
    remaining = [len(p) for p in preds]
    import heapq

    heap = list(ready)
    heapq.heapify(heap)
    while heap:
        idx = heapq.heappop(heap)
        out.append(idx)
        done.add(idx)
        for nxt in succs[idx]:
            remaining[nxt] -= 1
            if remaining[nxt] == 0:
                heapq.heappush(heap, nxt)
    if len(out) != n:
        raise ValueError("dependency graph contains a cycle")
    return out
