"""Trace/graph analysis: action series, edge statistics, validation.

Supports the paper's Figure 2 (action series), Figure 3 (valid/invalid
orderings), and Figure 8 (edge counts and lengths), plus the
property-based validation used by the test suite: given a replay order,
check that every enabled rule is respected.
"""

import heapq

from repro.core import rules as root_rules
from repro.core.resources import AIOCB, FD, FILE, PATH, Role, name_of
from repro.errors import CycleError


def action_series(actions, include_thread=True):
    """Materialize the per-resource action series (Figure 2b): an
    ordered dict-like mapping resource key -> list of action indices in
    original trace order."""
    series = {}
    for action in actions:
        seen_here = set()
        for touch in action.touches:
            if not include_thread and touch.kind == "thread":
                continue
            if touch.key in seen_here:
                continue
            seen_here.add(touch.key)
            series.setdefault(touch.key, []).append(action.idx)
    return series


def series_roles(actions):
    """For each resource, whether its first touch is a create and its
    last touch is a delete (stage-rule applicability)."""
    first_role = {}
    last_role = {}
    for action in actions:
        for touch in action.touches:
            if touch.key not in first_role:
                first_role[touch.key] = touch.role
            last_role[touch.key] = touch.role
    return {
        key: (first_role[key] == Role.CREATE, last_role[key] == Role.DELETE)
        for key in first_role
    }


def generations_by_name(actions):
    """Group path/fd/aiocb series by shared name:
    ``{(kind, name): [series_of_gen0, series_of_gen1, ...]}``."""
    series = action_series(actions)
    grouped = {}
    for key, acts in series.items():
        name = name_of(key)
        if name is None:
            continue
        grouped.setdefault(name, []).append((key[2], acts))
    return {
        name: [acts for _gen, acts in sorted(entries)]
        for name, entries in grouped.items()
    }


def validate_order(actions, ruleset, order):
    """Check a replay ordering against every enabled rule.

    ``order`` is a list of action indices in replay-issue order (a
    permutation of all actions).  Returns a list of human-readable
    violation strings; empty means the ordering is admissible.
    """
    position = {idx: pos for pos, idx in enumerate(order)}
    series = action_series(actions)
    roles = series_roles(actions)
    violations = []

    def _record(kind, key, pairs):
        for first, second in pairs:
            violations.append(
                "%s violated on %r: action %d must precede %d"
                % (kind, key, first, second)
            )

    # thread_seq and program_seq
    per_thread = {}
    for action in actions:
        per_thread.setdefault(action.record.tid, []).append(action.idx)
    for tid, acts in per_thread.items():
        _record(
            "thread_seq", ("thread", tid), root_rules.check_sequential(acts, position)
        )
    if ruleset.program_seq:
        all_idx = [a.idx for a in actions]
        _record("program_seq", ("prog",), root_rules.check_sequential(all_idx, position))

    for key, acts in series.items():
        kind = key[0]
        has_create, has_delete = roles[key]
        if kind == FILE:
            if ruleset.file_seq:
                _record("file_seq", key, root_rules.check_sequential(acts, position))
            elif ruleset.file_stage:
                _record(
                    "file_stage",
                    key,
                    root_rules.check_stage(acts, position, has_create, has_delete),
                )
        elif kind == PATH and ruleset.path_stage:
            _record(
                "path_stage",
                key,
                root_rules.check_stage(acts, position, has_create, has_delete),
            )
        elif kind == FD:
            if ruleset.fd_seq:
                _record("fd_seq", key, root_rules.check_sequential(acts, position))
            elif ruleset.fd_stage:
                _record(
                    "fd_stage",
                    key,
                    root_rules.check_stage(acts, position, has_create, has_delete),
                )
        elif kind == AIOCB:
            if ruleset.aio_seq:
                _record("aio_seq", key, root_rules.check_sequential(acts, position))
            elif ruleset.aio_stage:
                _record(
                    "aio_stage",
                    key,
                    root_rules.check_stage(acts, position, has_create, has_delete),
                )

    if ruleset.path_name:
        for name, gen_series in generations_by_name(actions).items():
            if name[0] != PATH:
                continue
            _record(
                "path_name", name, root_rules.check_name(gen_series, position)
            )
    return violations


def edge_stats(graph, actions):
    """Count and mean time-length of a dependency graph's edges
    (Figure 8: ARTC's edges are fewer but far *longer* than temporal
    ordering's)."""
    lengths = []
    for src, dst in graph.edges():
        lengths.append(
            actions[dst].record.t_enter - actions[src].record.t_enter
        )
    count = len(lengths)
    mean = sum(lengths) / count if count else 0.0
    return {"edges": count, "mean_length": mean}


def enumerate_io_space(actions, ruleset, limit=100_000):
    """All admissible replay orderings of a (small) action set.

    This is section 2's I/O-space formalism made executable: the
    replay benchmark's I/O space is one I/O set (the traced actions)
    plus the set of orderings the rules admit.  Enumeration walks every
    interleaving consistent with thread order and keeps those
    :func:`validate_order` accepts.  Exponential by nature -- intended
    for tests and teaching on traces of a dozen actions or fewer;
    ``limit`` caps the number of interleavings examined.
    """
    per_thread = {}
    for action in actions:
        per_thread.setdefault(action.record.tid, []).append(action.idx)
    queues = list(per_thread.values())
    admissible = []
    examined = [0]

    def _walk(prefix, positions):
        if examined[0] >= limit:
            raise ValueError("interleaving limit exceeded; use fewer actions")
        if len(prefix) == len(actions):
            examined[0] += 1
            if validate_order(actions, ruleset, prefix) == []:
                admissible.append(tuple(prefix))
            return
        for index, queue in enumerate(queues):
            position = positions[index]
            if position < len(queue):
                prefix.append(queue[position])
                positions[index] += 1
                _walk(prefix, positions)
                positions[index] -= 1
                prefix.pop()

    _walk([], [0] * len(queues))
    return admissible


def find_cycle(pred_lists, restrict=None):
    """One cycle in the graph given by predecessor lists, or None.

    ``pred_lists[i]`` are the nodes that must precede node ``i``;
    ``restrict`` optionally limits the search to a subset of nodes
    (e.g. the nodes a topological sort could not place).  The returned
    list gives the cycle members in dependency order: each member
    depends on the one before it, and the first depends on the last.
    """
    nodes = range(len(pred_lists)) if restrict is None else restrict
    allowed = None if restrict is None else set(restrict)
    color = {}  # node -> 1 (on stack) | 2 (done)
    for start in nodes:
        if color.get(start) == 2:
            continue
        # Iterative DFS along predecessor edges, keeping the path so a
        # back edge can be unwound into the cycle it closes.
        path = [start]
        iters = [iter(pred_lists[start])]
        color[start] = 1
        while iters:
            try:
                nxt = next(iters[-1])
            except StopIteration:
                color[path.pop()] = 2
                iters.pop()
                continue
            if allowed is not None and nxt not in allowed:
                continue
            state = color.get(nxt)
            if state == 1:
                cycle = path[path.index(nxt):]
                # ``path`` follows predecessor edges, so each element
                # precedes the one before it; reverse into "each
                # depends on the previous" order.
                cycle.reverse()
                return cycle
            if state is None:
                color[nxt] = 1
                path.append(nxt)
                iters.append(iter(pred_lists[nxt]))
        # all reachable nodes finished
    return None


def thread_edges(actions):
    """The implicit thread_seq predecessor lists: for each action, the
    previous action of the same thread (empty for thread heads)."""
    out = [[] for _ in actions]
    last = {}
    for action in actions:
        tid = action.record.tid
        prev = last.get(tid)
        if prev is not None:
            out[action.idx].append(prev)
        last[tid] = action.idx
    return out


def weak_components(n_actions, edge_groups):
    """Weakly-connected components over ``n_actions`` nodes.

    ``edge_groups`` is an iterable of index groups; every pair of
    indices appearing in one group is merged (a group is typically one
    resource's action series, or one graph edge as a 2-tuple).  Returns
    a label per action: the smallest action index in its component --
    a canonical, deterministic component id.

    This is the partition primitive behind the sharded replay core
    (:mod:`repro.artc.shardplan`): a component is the unit of work
    that can move between shards without splitting any resource's
    series.
    """
    parent = list(range(n_actions))

    def find(x):
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, parent[x]
        return root

    for group in edge_groups:
        it = iter(group)
        try:
            first = find(next(it))
        except StopIteration:
            continue
        for other in it:
            root = find(other)
            if root != first:
                # Union by smaller root so the final label is the
                # smallest member without a second normalization pass.
                if root < first:
                    first, root = root, first
                parent[root] = first
    return [find(idx) for idx in range(n_actions)]


def topological_order(graph, actions):
    """One valid replay order under the graph + thread_seq (used by
    tests to confirm the graph is acyclic and admissible).

    Raises :class:`~repro.errors.CycleError` naming the members of one
    dependency cycle when no such order exists.
    """
    n = graph.n_actions
    preds = [set(p) for p in graph.preds]
    per_thread = {}
    for action in actions:
        per_thread.setdefault(action.record.tid, []).append(action.idx)
    for acts in per_thread.values():
        for earlier, later in zip(acts, acts[1:]):
            preds[later].add(earlier)
    out = []
    succs = [[] for _ in range(n)]
    for dst, sources in enumerate(preds):
        for src in sources:
            succs[src].append(dst)
    remaining = [len(p) for p in preds]
    heap = [i for i in range(n) if not preds[i]]
    heapq.heapify(heap)
    while heap:
        idx = heapq.heappop(heap)
        out.append(idx)
        for nxt in succs[idx]:
            remaining[nxt] -= 1
            if remaining[nxt] == 0:
                heapq.heappush(heap, nxt)
    if len(out) != n:
        placed = set(out)
        stuck = [i for i in range(n) if i not in placed]
        cycle = find_cycle(preds, restrict=stuck)
        if cycle is None:  # pragma: no cover - stuck nodes imply a cycle
            cycle = stuck
        raise CycleError(cycle)
    return out
