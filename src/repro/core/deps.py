"""Dependency-graph construction: applying the ordering rules.

Given the per-action resource touches and a :class:`RuleSet`, build the
partial order the replayer enforces.  Edges implied by thread
sequencing (both endpoints in the same thread) are never materialized
-- each replay thread already plays its own actions in order -- and
duplicate edges are collapsed.

Rule application per resource kind (Table 2):

- file:  ``file_seq`` chains every touch; otherwise ``file_stage``.
- path:  ``path_stage`` + ``path_name`` jointly (``path_stage+``).
- fd:    ``fd_seq`` chains; otherwise ``fd_stage``.
- aiocb: ``aio_stage``.
- program: ``program_seq`` is not materialized; it is a replayer
  strategy (single global thread), recorded as a flag.
"""

from repro.core.resources import AIOCB, FD, FILE, PATH, Role


class DependencyGraph(object):
    """Cross-thread replay dependencies.

    ``preds[i]`` lists the action indices that must complete before
    action ``i`` may be issued.  ``edge_kinds`` maps ``(src, dst)`` to
    the rule that introduced the edge (for Figure-8 analysis).

    ``reduced_preds``, when set (by :mod:`repro.core.reduce`), is the
    transitive reduction of ``preds`` under implicit thread sequencing:
    a smaller wait set enforcing the same partial order.  The replayer
    prefers it; analysis keeps using the full attributed edge set.
    ``primary_preds`` is the builder's candidate subset whose closure
    already covers every edge (see ``build_dependencies``).
    """

    def __init__(self, n_actions, program_seq=False):
        self.n_actions = n_actions
        self.program_seq = program_seq
        self.preds = [[] for _ in range(n_actions)]
        self.edge_kinds = {}
        self.reduced_preds = None
        self.primary_preds = None
        self._succs = None

    def add_edge(self, src, dst, kind):
        """Record an edge; returns True if it was new."""
        if src == dst or src is None:
            return False
        key = (src, dst)
        if key in self.edge_kinds:
            return False
        self.edge_kinds[key] = kind
        self.preds[dst].append(src)
        self._succs = None
        return True

    @property
    def n_edges(self):
        return len(self.edge_kinds)

    @property
    def n_reduced_edges(self):
        if self.reduced_preds is None:
            return self.n_edges
        return sum(len(p) for p in self.reduced_preds)

    def edges(self):
        return list(self.edge_kinds)

    def succs(self):
        """Successor lists (cached; invalidated by ``add_edge``).

        The returned lists are shared with the cache -- treat them as
        read-only.
        """
        if self._succs is None:
            out = [[] for _ in range(self.n_actions)]
            for src, dst in self.edge_kinds:
                out[src].append(dst)
            self._succs = out
        return self._succs

    def __repr__(self):
        return "<DependencyGraph %d actions, %d edges%s>" % (
            self.n_actions,
            self.n_edges,
            " (program_seq)" if self.program_seq else "",
        )


class _ResourceTracker(object):
    """Per-resource incremental state for the three rules."""

    __slots__ = ("last", "create", "uses", "last_use_by_tid", "seen_any")

    def __init__(self):
        self.last = None
        self.create = None
        self.uses = []
        self.last_use_by_tid = {}
        self.seen_any = False


def build_dependencies(actions, ruleset):
    """Apply ``ruleset`` to ``actions`` and return a DependencyGraph.

    Alongside the full attributed edge set, the builder separates
    *primary* edges from edges it can prove redundant on the spot: a
    stage-rule DELETE waits on every prior use, but only each thread's
    *last* use matters -- earlier uses are implied by thread
    sequencing.  A per-thread last-use watermark identifies those
    edges in O(threads) instead of O(uses) per delete; the redundant
    fan-in is still recorded (Figure-8 accounting is unchanged) but
    excluded from ``primary_preds``, the candidate set the transitive
    reduction pass (:mod:`repro.core.reduce`) starts from.
    """
    graph = DependencyGraph(len(actions), program_seq=ruleset.program_seq)
    tid_of = [action.record.tid for action in actions]
    trackers = {}
    name_last = {}  # (kind, name) -> [generation, last action idx]
    primary = [[] for _ in range(len(actions))]
    primary_set = set()

    def _edge(src, dst, kind, is_primary=True):
        if src is None or src == dst:
            return
        if tid_of[src] == tid_of[dst]:
            return  # implied by thread_seq
        graph.add_edge(src, dst, kind)
        # An edge first seen as redundant fan-in may later be needed as
        # a primary (watermark) edge; promote it then.
        if is_primary and (src, dst) not in primary_set:
            primary_set.add((src, dst))
            primary[dst].append(src)

    def _seq(key, idx, kind):
        tracker = trackers.get(key)
        if tracker is None:
            tracker = trackers[key] = _ResourceTracker()
        _edge(tracker.last, idx, kind)
        tracker.last = idx

    def _stage(key, idx, role, kind):
        tracker = trackers.get(key)
        if tracker is None:
            tracker = trackers[key] = _ResourceTracker()
        if role == Role.CREATE and not tracker.seen_any:
            tracker.create = idx
        elif role == Role.DELETE:
            # The delete waits for the create and every use so far; only
            # each thread's last use (the watermark) is primary.
            _edge(tracker.create, idx, kind)
            watermarks = tracker.last_use_by_tid
            for use in tracker.uses:
                _edge(use, idx, kind,
                      is_primary=watermarks.get(tid_of[use]) == use)
        else:
            _edge(tracker.create, idx, kind)
            tracker.uses.append(idx)
            tracker.last_use_by_tid[tid_of[idx]] = idx
        tracker.seen_any = True
        tracker.last = idx

    def _name_rule(kind_tag, name, gen, idx):
        state = name_last.get((kind_tag, name))
        if state is None:
            name_last[(kind_tag, name)] = [gen, idx]
            return
        if gen > state[0]:
            _edge(state[1], idx, "name")
            state[0] = gen
            state[1] = idx
        else:
            state[1] = idx

    for action in actions:
        idx = action.idx
        if ruleset.file_size:
            # Size-exposure dependencies: a read of bytes beyond the
            # initial size waits for the write that produced them, and
            # size-changing actions chain among themselves.
            size_dep = action.ann.get("size_dep")
            if size_dep is not None:
                _edge(size_dep, idx, "file_size")
            size_chain = action.ann.get("size_chain")
            if size_chain is not None:
                _edge(size_chain, idx, "file_size")
        for touch in action.touches:
            kind = touch.kind
            key = touch.key
            if kind == FILE:
                if ruleset.file_seq:
                    _seq(key, idx, "file_seq")
                elif ruleset.file_stage:
                    _stage(key, idx, touch.role, "file_stage")
            elif kind == PATH:
                if ruleset.path_stage:
                    _stage(key, idx, touch.role, "path_stage")
                if ruleset.path_name:
                    _name_rule(PATH, key[1], key[2], idx)
            elif kind == FD:
                if ruleset.fd_seq:
                    _seq(key, idx, "fd_seq")
                elif ruleset.fd_stage:
                    _stage(key, idx, touch.role, "fd_stage")
            elif kind == AIOCB:
                if ruleset.aio_seq:
                    _seq(key, idx, "aio_seq")
                elif ruleset.aio_stage:
                    _stage(key, idx, touch.role, "aio_stage")
    graph.primary_preds = primary
    return graph


def temporal_graph(actions):
    """The temporally-ordered baseline's implicit graph: each action
    depends on the *issue* of the previous action in global trace
    order (same-thread edges elided, as for ROOT graphs).

    Returned as a DependencyGraph for Figure-8 comparisons; note the
    temporal replayer enforces issue-order directly rather than
    through this graph.
    """
    graph = DependencyGraph(len(actions))
    previous = None
    for action in actions:
        if previous is not None and (
            actions[previous].record.tid != action.record.tid
        ):
            graph.add_edge(previous, action.idx, "temporal")
        previous = action.idx
    return graph
