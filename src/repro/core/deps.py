"""Dependency-graph construction: applying the ordering rules.

Given the per-action resource touches and a :class:`RuleSet`, build the
partial order the replayer enforces.  Edges implied by thread
sequencing (both endpoints in the same thread) are never materialized
-- each replay thread already plays its own actions in order -- and
duplicate edges are collapsed.

Rule application per resource kind (Table 2):

- file:  ``file_seq`` chains every touch; otherwise ``file_stage``.
- path:  ``path_stage`` + ``path_name`` jointly (``path_stage+``).
- fd:    ``fd_seq`` chains; otherwise ``fd_stage``.
- aiocb: ``aio_stage``.
- program: ``program_seq`` is not materialized; it is a replayer
  strategy (single global thread), recorded as a flag.
"""

from repro.core.resources import AIOCB, FD, FILE, PATH, Role


class DependencyGraph(object):
    """Cross-thread replay dependencies.

    ``preds[i]`` lists the action indices that must complete before
    action ``i`` may be issued.  ``edge_kinds`` maps ``(src, dst)`` to
    the rule that introduced the edge (for Figure-8 analysis).

    ``reduced_preds``, when set (by :mod:`repro.core.reduce`), is the
    transitive reduction of ``preds`` under implicit thread sequencing:
    a smaller wait set enforcing the same partial order.  The replayer
    prefers it; analysis keeps using the full attributed edge set.
    ``primary_preds`` is the builder's candidate subset whose closure
    already covers every edge (see ``build_dependencies``).
    """

    def __init__(self, n_actions, program_seq=False):
        self.n_actions = n_actions
        self.program_seq = program_seq
        self.preds = [[] for _ in range(n_actions)]
        self.edge_kinds = {}
        self.reduced_preds = None
        self.primary_preds = None
        self._succs = None

    def add_action(self):
        """Grow the graph by one action slot (incremental builds)."""
        self.n_actions += 1
        self.preds.append([])
        self._succs = None

    def add_edge(self, src, dst, kind):
        """Record an edge; returns True if it was new."""
        if src == dst or src is None:
            return False
        key = (src, dst)
        if key in self.edge_kinds:
            return False
        self.edge_kinds[key] = kind
        self.preds[dst].append(src)
        self._succs = None
        return True

    @property
    def n_edges(self):
        return len(self.edge_kinds)

    @property
    def n_reduced_edges(self):
        if self.reduced_preds is None:
            return self.n_edges
        return sum(len(p) for p in self.reduced_preds)

    def edges(self):
        return list(self.edge_kinds)

    def succs(self):
        """Successor lists (cached; invalidated by ``add_edge``).

        The returned lists are shared with the cache -- treat them as
        read-only.
        """
        if self._succs is None:
            out = [[] for _ in range(self.n_actions)]
            for src, dst in self.edge_kinds:
                out[src].append(dst)
            self._succs = out
        return self._succs

    def __repr__(self):
        return "<DependencyGraph %d actions, %d edges%s>" % (
            self.n_actions,
            self.n_edges,
            " (program_seq)" if self.program_seq else "",
        )


class _ResourceTracker(object):
    """Per-resource incremental state for the three rules."""

    __slots__ = ("last", "create", "uses", "last_use_by_tid", "seen_any")

    def __init__(self):
        self.last = None
        self.create = None
        self.uses = []
        self.last_use_by_tid = {}
        self.seen_any = False


class DependencyBuilder(object):
    """Incremental application of the ordering rules, one action at a
    time.

    This is the single implementation behind both compilation paths:
    :func:`build_dependencies` feeds a whole action list through one
    builder (the batch compiler), and the streaming compiler
    (:mod:`repro.stream.compile`) feeds actions as a live trace tail
    delivers them -- sharing the code is what makes streamed and batch
    graphs identical by construction.  Edges always target the action
    being fed (every rule orders *earlier* work before the current
    action), so the builder's own state is only per-resource trackers
    plus integer indices: nothing about an already-fed action is ever
    re-read, which is what lets a windowed caller release old actions.

    Alongside the full attributed edge set, the builder separates
    *primary* edges from edges it can prove redundant on the spot: a
    stage-rule DELETE waits on every prior use, but only each thread's
    *last* use matters -- earlier uses are implied by thread
    sequencing.  A per-thread last-use watermark identifies those
    edges in O(threads) instead of O(uses) per delete; the redundant
    fan-in is still recorded (Figure-8 accounting is unchanged) but
    excluded from ``primary_preds``, the candidate set the transitive
    reduction pass (:mod:`repro.core.reduce`) starts from.

    ``prune_dead=True`` drops a resource's tracker once a DELETE role
    retires it.  Generation-scoped keys (path, fd, aiocb) never recur
    after their delete, so pruning cannot change the graph -- it only
    bounds tracker memory and advances :meth:`ref_floor`; file keys
    are exempt (an orphaned descriptor may touch the file after its
    unlink).  The batch path leaves it off.
    """

    def __init__(self, ruleset, graph=None, prune_dead=False):
        self.ruleset = ruleset
        self.graph = (
            graph
            if graph is not None
            else DependencyGraph(0, program_seq=ruleset.program_seq)
        )
        self.tid_of = []
        self.trackers = {}
        self.name_last = {}  # (kind, name) -> [generation, last action idx]
        self.primary = []
        self.prune_dead = prune_dead
        self._primary_seen = None  # per-action dedupe (edges target idx)

    # -- rule mechanics (kept in lockstep with the class docstring) ----

    def _edge(self, src, dst, kind, is_primary=True):
        if src is None or src == dst:
            return
        if self.tid_of[src] == self.tid_of[dst]:
            return  # implied by thread_seq
        self.graph.add_edge(src, dst, kind)
        # An edge first seen as redundant fan-in may later be needed as
        # a primary (watermark) edge; promote it then.
        if is_primary and src not in self._primary_seen:
            self._primary_seen.add(src)
            self.primary[dst].append(src)

    def _seq(self, key, idx, kind):
        tracker = self.trackers.get(key)
        if tracker is None:
            tracker = self.trackers[key] = _ResourceTracker()
        self._edge(tracker.last, idx, kind)
        tracker.last = idx

    def _stage(self, key, idx, role, kind):
        tracker = self.trackers.get(key)
        if tracker is None:
            tracker = self.trackers[key] = _ResourceTracker()
        if role == Role.CREATE and not tracker.seen_any:
            tracker.create = idx
        elif role == Role.DELETE:
            # The delete waits for the create and every use so far; only
            # each thread's last use (the watermark) is primary.
            self._edge(tracker.create, idx, kind)
            watermarks = tracker.last_use_by_tid
            tid_of = self.tid_of
            for use in tracker.uses:
                self._edge(use, idx, kind,
                           is_primary=watermarks.get(tid_of[use]) == use)
        else:
            self._edge(tracker.create, idx, kind)
            tracker.uses.append(idx)
            tracker.last_use_by_tid[self.tid_of[idx]] = idx
        tracker.seen_any = True
        tracker.last = idx

    def _name_rule(self, kind_tag, name, gen, idx):
        state = self.name_last.get((kind_tag, name))
        if state is None:
            self.name_last[(kind_tag, name)] = [gen, idx]
            return
        if gen > state[0]:
            self._edge(state[1], idx, "name")
            state[0] = gen
            state[1] = idx
        else:
            state[1] = idx

    def feed(self, action):
        """Apply every rule to one action (``action.idx`` must be the
        next index).  The action's full predecessor list is final on
        return: ``self.graph.preds[action.idx]``."""
        idx = action.idx
        ruleset = self.ruleset
        self.graph.add_action()
        self.tid_of.append(action.record.tid)
        self.primary.append([])
        self._primary_seen = set()
        if ruleset.file_size:
            # Size-exposure dependencies: a read of bytes beyond the
            # initial size waits for the write that produced them, and
            # size-changing actions chain among themselves.
            size_dep = action.ann.get("size_dep")
            if size_dep is not None:
                self._edge(size_dep, idx, "file_size")
            size_chain = action.ann.get("size_chain")
            if size_chain is not None:
                self._edge(size_chain, idx, "file_size")
        for touch in action.touches:
            kind = touch.kind
            key = touch.key
            if kind == FILE:
                if ruleset.file_seq:
                    self._seq(key, idx, "file_seq")
                elif ruleset.file_stage:
                    self._stage(key, idx, touch.role, "file_stage")
            elif kind == PATH:
                if ruleset.path_stage:
                    self._stage(key, idx, touch.role, "path_stage")
                if ruleset.path_name:
                    self._name_rule(PATH, key[1], key[2], idx)
            elif kind == FD:
                if ruleset.fd_seq:
                    self._seq(key, idx, "fd_seq")
                elif ruleset.fd_stage:
                    self._stage(key, idx, touch.role, "fd_stage")
            elif kind == AIOCB:
                if ruleset.aio_seq:
                    self._seq(key, idx, "aio_seq")
                elif ruleset.aio_stage:
                    self._stage(key, idx, touch.role, "aio_stage")
        if self.prune_dead:
            for touch in action.touches:
                if touch.role == Role.DELETE and touch.kind != FILE:
                    self.trackers.pop(touch.key, None)

    def finish(self):
        """Attach ``primary_preds`` and return the graph."""
        self.graph.primary_preds = self.primary
        return self.graph

    def live_refs(self):
        """The action indices still citable as future *candidate* edge
        sources (tracker create / last / per-thread watermarks,
        name-rule last).  Every field only ever moves forward, so an
        index absent from this set can never re-enter a candidate list
        -- a windowed caller may release every other reach vector.  A
        set rather than a floor: one long-lived file's ``create`` must
        not pin the whole prefix (``uses`` fan-in is cited only as
        non-primary edges, which reduction never consults)."""
        live = set()
        for tracker in self.trackers.values():
            if tracker.create is not None:
                live.add(tracker.create)
            if tracker.last is not None:
                live.add(tracker.last)
            live.update(tracker.last_use_by_tid.values())
        for state in self.name_last.values():
            live.add(state[1])
        return live


def build_dependencies(actions, ruleset):
    """Apply ``ruleset`` to ``actions`` and return a DependencyGraph.

    A thin batch wrapper over :class:`DependencyBuilder` (one ``feed``
    per action); the streaming compiler drives the same builder
    record-by-record.
    """
    builder = DependencyBuilder(ruleset)
    for action in actions:
        builder.feed(action)
    return builder.finish()


def temporal_graph(actions):
    """The temporally-ordered baseline's implicit graph: each action
    depends on the *issue* of the previous action in global trace
    order (same-thread edges elided, as for ROOT graphs).

    Returned as a DependencyGraph for Figure-8 comparisons; note the
    temporal replayer enforces issue-order directly rather than
    through this graph.
    """
    graph = DependencyGraph(len(actions))
    previous = None
    for action in actions:
        if previous is not None and (
            actions[previous].record.tid != action.record.tid
        ):
            graph.add_edge(previous, action.idx, "temporal")
        previous = action.idx
    return graph
