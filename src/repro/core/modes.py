"""Replay modes and the rule/resource matrix (Table 2).

=========  =====  ==========  =====
Resource   Stage  Sequential  Name
=========  =====  ==========  =====
program           program_seq
thread            thread_seq (required)
file       (o)    file_seq
path       path_stage+ (joint with name)
fd         fd_stage  fd_seq
aiocb      aio_stage  (o)      (o)
=========  =====  ==========  =====

ARTC's default enables every supported constraint except
``program_seq``.  ``path_stage`` and ``path_name`` may only be applied
jointly (the paper's ``path_stage+``): stage without name ordering
would require substitute path names during replay.
"""

from repro.errors import ReproError


class RuleSet(object):
    """Which rule applies to which resource kind.

    Flags mirror the paper's mode names.  ``thread_seq`` is always
    enforced; it is listed for completeness but cannot be disabled.
    """

    __slots__ = (
        "program_seq",
        "thread_seq",
        "file_seq",
        "file_stage",
        "file_size",
        "path_stage",
        "path_name",
        "fd_stage",
        "fd_seq",
        "aio_stage",
        "aio_seq",
    )

    def __init__(
        self,
        program_seq=False,
        thread_seq=True,
        file_seq=True,
        file_stage=False,
        file_size=False,
        path_stage=True,
        path_name=True,
        fd_stage=True,
        fd_seq=True,
        aio_stage=True,
        aio_seq=False,
    ):
        if not thread_seq:
            raise ReproError("thread_seq is required (Table 2)")
        if path_stage != path_name:
            raise ReproError(
                "path_stage and path_name must be applied jointly "
                "(stage without name would need substitute path names)"
            )
        if file_size and file_seq:
            raise ReproError(
                "file_size is an alternative to file_seq "
                "(between stage and sequential in strength)"
            )
        self.program_seq = program_seq
        self.thread_seq = True
        self.file_seq = file_seq
        # file_size implies stage ordering on files plus size-exposure
        # dependencies (the paper's future-work refinement).
        self.file_stage = file_stage or file_size
        self.file_size = file_size
        self.path_stage = path_stage
        self.path_name = path_name
        self.fd_stage = fd_stage
        self.fd_seq = fd_seq
        self.aio_stage = aio_stage
        # Table 2 marks aio sequential ordering as reasonable but not
        # supported by ARTC ("could also be potentially useful"); we
        # implement it as an opt-in extension.
        self.aio_seq = aio_seq

    @classmethod
    def artc_default(cls):
        """Every supported constraint except program_seq (section 4.2)."""
        return cls()

    @classmethod
    def unconstrained(cls):
        """thread_seq only: the paper's 'unconstrained' baseline."""
        return cls(
            file_seq=False,
            file_stage=False,
            file_size=False,
            path_stage=False,
            path_name=False,
            fd_stage=False,
            fd_seq=False,
            aio_stage=False,
            aio_seq=False,
        )

    @classmethod
    def with_file_size(cls):
        """The future-work variant: replace file_seq with stage +
        size-exposure dependencies on files (section 8: "analysis of
        dependencies on file size rather than mere existence would
        allow a replay mode for file resources somewhere between stage
        and sequential ordering in strength")."""
        return cls(file_seq=False, file_size=True)

    def describe(self):
        enabled = []
        for flag in self.__slots__:
            if getattr(self, flag):
                enabled.append(flag)
        return "+".join(enabled)

    def __repr__(self):
        return "<RuleSet %s>" % self.describe()


def named_rulesets():
    """The canonical rule-set ladder, strongest to weakest.

    These are the compile modes the evaluation (Table 3 and the rule
    ablation) exercises and the ones ``artc lint --modes`` certifies
    statically.  Returned as an ordered ``{name: RuleSet}`` mapping;
    each value is a fresh instance.
    """
    return {
        "artc-default": RuleSet.artc_default(),
        "file-size": RuleSet.with_file_size(),
        "file-stage": RuleSet(file_seq=False, file_stage=True),
        "fd-stage": RuleSet(fd_seq=False, fd_stage=True),
        "stage-only": RuleSet(
            file_seq=False, file_stage=True, fd_seq=False, fd_stage=True
        ),
        "no-path": RuleSet(path_stage=False, path_name=False),
        "unconstrained": RuleSet.unconstrained(),
    }


class ReplayMode(object):
    """Top-level replay strategies compared in the paper's evaluation.

    - ``SINGLE``: one replay thread issues every call in trace order.
    - ``TEMPORAL``: one replay thread per traced thread; global *issue*
      order is preserved, so overlap is possible but no reordering.
    - ``UNCONSTRAINED``: one thread per traced thread, no inter-thread
      synchronization at all.
    - ``ARTC``: ROOT dependency enforcement under a :class:`RuleSet`.
    """

    SINGLE = "single-threaded"
    TEMPORAL = "temporally-ordered"
    UNCONSTRAINED = "unconstrained"
    ARTC = "artc"

    ALL = (SINGLE, TEMPORAL, UNCONSTRAINED, ARTC)
