"""The trace model: records -> actions with touches and annotations."""

from repro.core.fsstate import FsState


class Action(object):
    """One replayable action: a trace record plus everything the
    compiler inferred about it."""

    __slots__ = ("idx", "record", "touches", "ann", "predelay")

    def __init__(self, idx, record, touches, ann, predelay):
        self.idx = idx
        self.record = record
        self.touches = touches
        self.ann = ann
        self.predelay = predelay

    def __repr__(self):
        return "<Action #%d %s (%d touches)>" % (
            self.idx,
            self.record.name,
            len(self.touches),
        )


class ModelBuilder(object):
    """Incremental record -> action interpretation.

    The single implementation behind both compilation paths:
    :class:`TraceModel` feeds a whole trace through one builder with a
    precomputed global time origin; the streaming compiler feeds
    records as a live tail delivers them, defaulting the origin to the
    first record's entry time (identical to the global minimum for any
    issue-ordered trace, which live tails are by construction --
    tracers append in issue order within each thread and the origin
    only anchors each thread's first predelay).

    ``predelay`` (section 4.3.3) is the think-time gap between the
    previous call's return and this call's entry within one thread; the
    replayer optionally reproduces it (natural-speed mode).
    """

    def __init__(self, snapshot=None, origin=None):
        self.state = FsState(snapshot)
        self.origin = origin
        self._last_return = {}
        self.fed = 0

    def feed(self, record):
        """Interpret one record against the evolving FS state and
        return its :class:`Action`."""
        if self.origin is None:
            self.origin = record.t_enter
        touches, ann = self.state.apply(record)
        previous = self._last_return.get(record.tid, self.origin)
        predelay = max(0.0, record.t_enter - previous)
        self._last_return[record.tid] = record.t_return
        self.fed += 1
        return Action(record.idx, record, touches, ann, predelay)

    @property
    def model_misses(self):
        return self.state.model_misses


class TraceModel(object):
    """Symbolic interpretation of a whole trace: a batch wrapper over
    :class:`ModelBuilder` with the exact global time origin."""

    def __init__(self, trace, snapshot=None):
        self.trace = trace
        builder = ModelBuilder(
            snapshot,
            origin=min((r.t_enter for r in trace.records), default=0.0),
        )
        self.actions = [builder.feed(record) for record in trace.records]
        self.state = builder.state

    @property
    def model_misses(self):
        return self.state.model_misses

    def by_thread(self):
        out = {}
        for action in self.actions:
            out.setdefault(action.record.tid, []).append(action)
        return out

    def __len__(self):
        return len(self.actions)
