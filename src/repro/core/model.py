"""The trace model: records -> actions with touches and annotations."""

from repro.core.fsstate import FsState


class Action(object):
    """One replayable action: a trace record plus everything the
    compiler inferred about it."""

    __slots__ = ("idx", "record", "touches", "ann", "predelay")

    def __init__(self, idx, record, touches, ann, predelay):
        self.idx = idx
        self.record = record
        self.touches = touches
        self.ann = ann
        self.predelay = predelay

    def __repr__(self):
        return "<Action #%d %s (%d touches)>" % (
            self.idx,
            self.record.name,
            len(self.touches),
        )


class TraceModel(object):
    """Symbolic interpretation of a whole trace.

    ``predelay`` (section 4.3.3) is the think-time gap between the
    previous call's return and this call's entry within one thread; the
    replayer optionally reproduces it (natural-speed mode).
    """

    def __init__(self, trace, snapshot=None):
        self.trace = trace
        self.state = FsState(snapshot)
        self.actions = []
        last_return = {}
        origin = min((r.t_enter for r in trace.records), default=0.0)
        for record in trace.records:
            touches, ann = self.state.apply(record)
            previous = last_return.get(record.tid, origin)
            predelay = max(0.0, record.t_enter - previous)
            last_return[record.tid] = record.t_return
            self.actions.append(
                Action(record.idx, record, touches, ann, predelay)
            )

    @property
    def model_misses(self):
        return self.state.model_misses

    def by_thread(self):
        out = {}
        for action in self.actions:
            out.setdefault(action.record.tid, []).append(action)
        return out

    def __len__(self):
        return len(self.actions)
