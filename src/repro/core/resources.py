"""Resources, generations, and touches.

A resource is identified by a hashable key tuple whose first element is
its kind:

- ``("prog",)`` -- the whole program
- ``("thread", tid)`` -- one traced thread
- ``("file", uid)`` -- a file (or directory): data + metadata identity;
  ``uid`` is a compiler-assigned surrogate for the inode number, which
  never appears in traces
- ``("path", name, gen)`` -- one *generation* of a path name; odd uses
  of the same name at different times get different generations
  (the paper's ``name@generation`` notation)
- ``("fd", num, gen)`` -- one generation of a file-descriptor number
- ``("aiocb", id, gen)`` -- one generation of an AIO control block

Path generations alternate between *existence* and *absence* periods:
a failed ``stat`` participates in the current absence generation, which
is what lets ROOT order failing calls correctly relative to the
``unlink``/``rename`` that made them fail.
"""

PROG = "prog"
THREAD = "thread"
FILE = "file"
PATH = "path"
FD = "fd"
AIOCB = "aiocb"

KINDS = (PROG, THREAD, FILE, PATH, FD, AIOCB)


class Role(object):
    CREATE = "create"
    USE = "use"
    DELETE = "delete"


class Touch(object):
    """One (resource, role) interaction of an action."""

    __slots__ = ("key", "role")

    def __init__(self, key, role):
        self.key = key
        self.role = role

    @property
    def kind(self):
        return self.key[0]

    def __repr__(self):
        return "Touch(%r, %s)" % (self.key, self.role)

    def __eq__(self, other):
        return (
            isinstance(other, Touch)
            and self.key == other.key
            and self.role == other.role
        )

    def __hash__(self):
        return hash((self.key, self.role))


def prog_key():
    return (PROG,)


def thread_key(tid):
    return (THREAD, tid)


def file_key(uid):
    return (FILE, uid)


def path_key(name, gen):
    return (PATH, name, gen)


def fd_key(num, gen):
    return (FD, num, gen)


def aiocb_key(cb_id, gen):
    return (AIOCB, cb_id, gen)


def name_of(key):
    """The name component shared by all generations of a named resource
    (None for unnamed kinds)."""
    if key[0] in (PATH, FD, AIOCB):
        return (key[0], key[1])
    return None


def generation_of(key):
    if key[0] in (PATH, FD, AIOCB):
        return key[2]
    return None
