"""An in-memory POSIX file system with errno semantics.

The VFS provides *correctness* (EBADF after close, ENOENT after rename,
O_EXCL collisions, symlink resolution, hard links, deleted-but-open
files) while delegating all *timing* to a
:class:`repro.storage.stack.StorageStack`.  Replays that violate the
original trace's ordering fail here exactly as they would on a real
kernel, which is what Table 3 of the paper measures.
"""

from repro.vfs.errnos import Errno, VfsError
from repro.vfs.flags import O_APPEND, O_CREAT, O_EXCL, O_RDONLY, O_RDWR, O_TRUNC, O_WRONLY
from repro.vfs.filesystem import FileSystem
from repro.vfs.nodes import FileType, Inode

__all__ = [
    "FileSystem",
    "VfsError",
    "Errno",
    "FileType",
    "Inode",
    "O_RDONLY",
    "O_WRONLY",
    "O_RDWR",
    "O_CREAT",
    "O_EXCL",
    "O_TRUNC",
    "O_APPEND",
]
