"""Open flags and whence values, platform-neutral.

Numeric values are private to the simulation (real O_* constants vary
by platform); the strace parser maps symbolic names to these.
"""

O_RDONLY = 0x0000
O_WRONLY = 0x0001
O_RDWR = 0x0002
O_ACCMODE = 0x0003

O_CREAT = 0x0040
O_EXCL = 0x0080
O_NOCTTY = 0x0100
O_TRUNC = 0x0200
O_APPEND = 0x0400
O_NONBLOCK = 0x0800
O_SYNC = 0x1000
O_DIRECTORY = 0x2000
O_NOFOLLOW = 0x4000
O_CLOEXEC = 0x8000
O_DIRECT = 0x10000
O_SHLOCK = 0x20000  # BSD/Darwin
O_EXLOCK = 0x40000  # BSD/Darwin
O_SYMLINK = 0x80000  # Darwin: open the symlink itself
O_EVTONLY = 0x100000  # Darwin: watch-only descriptor

FLAG_NAMES = {
    "O_RDONLY": O_RDONLY,
    "O_WRONLY": O_WRONLY,
    "O_RDWR": O_RDWR,
    "O_CREAT": O_CREAT,
    "O_EXCL": O_EXCL,
    "O_NOCTTY": O_NOCTTY,
    "O_TRUNC": O_TRUNC,
    "O_APPEND": O_APPEND,
    "O_NONBLOCK": O_NONBLOCK,
    "O_NDELAY": O_NONBLOCK,
    "O_SYNC": O_SYNC,
    "O_FSYNC": O_SYNC,
    "O_DSYNC": O_SYNC,
    "O_DIRECTORY": O_DIRECTORY,
    "O_NOFOLLOW": O_NOFOLLOW,
    "O_CLOEXEC": O_CLOEXEC,
    "O_DIRECT": O_DIRECT,
    "O_SHLOCK": O_SHLOCK,
    "O_EXLOCK": O_EXLOCK,
    "O_SYMLINK": O_SYMLINK,
    "O_EVTONLY": O_EVTONLY,
    "O_LARGEFILE": 0,
    "O_NOATIME": 0,
}

SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2


def parse_flags(text):
    """Parse ``"O_RDWR|O_CREAT"`` into a flag word."""
    value = 0
    for part in text.split("|"):
        part = part.strip()
        if not part:
            continue
        if part.startswith("0"):  # octal mode leaked into flags field
            value |= int(part, 8)
        else:
            value |= FLAG_NAMES[part]
    return value


def format_flags(value):
    """Render a flag word back into strace-style ``A|B`` text."""
    accmode = value & O_ACCMODE
    names = [
        {O_RDONLY: "O_RDONLY", O_WRONLY: "O_WRONLY", O_RDWR: "O_RDWR"}.get(
            accmode, "O_RDONLY"
        )
    ]
    for name, bit in FLAG_NAMES.items():
        if bit and bit not in (O_RDONLY, O_WRONLY, O_RDWR) and value & bit:
            if name not in ("O_NDELAY", "O_FSYNC", "O_DSYNC") and name not in names:
                names.append(name)
    return "|".join(names)
