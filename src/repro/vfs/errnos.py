"""Symbolic errno values.

Traces store errno names symbolically (strace prints ``ENOENT``), so we
keep them as strings rather than platform-specific integers.
"""


class Errno(object):
    EPERM = "EPERM"
    ENOENT = "ENOENT"
    EIO = "EIO"
    EBADF = "EBADF"
    EACCES = "EACCES"
    EEXIST = "EEXIST"
    EXDEV = "EXDEV"
    ENOTDIR = "ENOTDIR"
    EISDIR = "EISDIR"
    EINVAL = "EINVAL"
    EMFILE = "EMFILE"
    ENOSPC = "ENOSPC"
    ESPIPE = "ESPIPE"
    EROFS = "EROFS"
    EMLINK = "EMLINK"
    ENAMETOOLONG = "ENAMETOOLONG"
    ENOSYS = "ENOSYS"
    ENOTEMPTY = "ENOTEMPTY"
    ELOOP = "ELOOP"
    ENODATA = "ENODATA"  # Linux: missing xattr
    ENOATTR = "ENOATTR"  # BSD/Darwin: missing xattr
    EINPROGRESS = "EINPROGRESS"
    ERANGE = "ERANGE"
    ENOTSUP = "ENOTSUP"


class VfsError(Exception):
    """Internal control flow for failed operations; callers convert it
    into a ``(-1, errno)`` system-call result."""

    def __init__(self, errno):
        super().__init__(errno)
        self.errno = errno
