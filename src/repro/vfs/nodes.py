"""Inodes, the directory tree, and path resolution."""

from repro.vfs.errnos import Errno, VfsError


class FileType(object):
    REG = "reg"
    DIR = "dir"
    SYMLINK = "symlink"
    CHAR = "char"
    FIFO = "fifo"
    SOCK = "sock"


class Inode(object):
    """One file-system object.

    ``ino`` doubles as the storage-stack ``file_id``; regular-file data
    timing is charged against it.  ``special`` names a character-device
    personality (``random``/``urandom``/``null``/``zero``) whose
    platform-dependent behaviour lives in the FileSystem.
    """

    __slots__ = (
        "ino",
        "ftype",
        "size",
        "nlink",
        "mode",
        "xattrs",
        "symlink_target",
        "special",
        "children",
        "open_count",
        "mtime",
    )

    def __init__(self, ino, ftype, mode=0o644):
        self.ino = ino
        self.ftype = ftype
        self.size = 0
        self.nlink = 1 if ftype != FileType.DIR else 2
        self.mode = mode
        self.xattrs = {}
        self.symlink_target = None
        self.special = None
        self.children = {} if ftype == FileType.DIR else None
        self.open_count = 0
        self.mtime = 0.0

    @property
    def is_dir(self):
        return self.ftype == FileType.DIR

    @property
    def is_symlink(self):
        return self.ftype == FileType.SYMLINK

    @property
    def is_reg(self):
        return self.ftype == FileType.REG

    def __repr__(self):
        return "<Inode %d %s size=%d nlink=%d>" % (
            self.ino,
            self.ftype,
            self.size,
            self.nlink,
        )


class InodeTable(object):
    ROOT_INO = 1

    def __init__(self):
        self._inodes = {}
        self._next_ino = InodeTable.ROOT_INO
        root = self.alloc(FileType.DIR, mode=0o755)
        assert root.ino == InodeTable.ROOT_INO

    def alloc(self, ftype, mode=0o644):
        inode = Inode(self._next_ino, ftype, mode)
        self._next_ino += 1
        self._inodes[inode.ino] = inode
        return inode

    def get(self, ino):
        return self._inodes[ino]

    @property
    def root(self):
        return self._inodes[InodeTable.ROOT_INO]

    def free(self, ino):
        del self._inodes[ino]

    def __len__(self):
        return len(self._inodes)

    def __contains__(self, ino):
        return ino in self._inodes


MAX_SYMLINK_DEPTH = 40


class Resolved(object):
    """Outcome of a path walk.

    ``inode`` is None when the final component does not exist but its
    parent does (the O_CREAT case).  ``visited`` lists every inode
    number touched during the walk, for metadata-cost charging.
    """

    __slots__ = ("parent", "name", "inode", "visited")

    def __init__(self, parent, name, inode, visited):
        self.parent = parent
        self.name = name
        self.inode = inode
        self.visited = visited


def split_path(path):
    return [c for c in path.split("/") if c and c != "."]


def resolve(table, cwd_ino, path, follow_last=True, _depth=0):
    """Walk ``path`` from ``cwd_ino`` (absolute paths restart at the
    root).  Raises :class:`VfsError` on any error except a missing final
    component, which returns ``Resolved(inode=None)``.
    """
    if _depth > MAX_SYMLINK_DEPTH:
        raise VfsError(Errno.ELOOP)
    if not path:
        raise VfsError(Errno.ENOENT)
    if len(path) > 4096:
        raise VfsError(Errno.ENAMETOOLONG)
    current = table.root if path.startswith("/") else table.get(cwd_ino)
    visited = [current.ino]
    components = split_path(path)
    if not components:
        # Path was "/" or "." -- resolves to the starting directory.
        return Resolved(current, None, current, visited)
    parents = []
    for index, name in enumerate(components):
        last = index == len(components) - 1
        if not current.is_dir:
            raise VfsError(Errno.ENOTDIR)
        if name == "..":
            current = parents.pop() if parents else current
            visited.append(current.ino)
            if last:
                return Resolved(current, None, current, visited)
            continue
        child_ino = current.children.get(name)
        if child_ino is None:
            if last:
                return Resolved(current, name, None, visited)
            raise VfsError(Errno.ENOENT)
        child = table.get(child_ino)
        visited.append(child.ino)
        if child.is_symlink and (not last or follow_last):
            target = child.symlink_target or ""
            rest = "/".join(components[index + 1 :])
            new_path = target if not rest else target.rstrip("/") + "/" + rest
            sub = resolve(
                table, current.ino, new_path, follow_last, _depth + 1
            )
            sub.visited[:0] = visited
            return sub
        if last:
            return Resolved(current, name, child, visited)
        parents.append(current)
        current = child
    raise AssertionError("unreachable")


def normalize(path):
    """Collapse duplicate slashes and '.' components (no '..' folding,
    which would be wrong in the presence of symlinks)."""
    if not path:
        return path
    absolute = path.startswith("/")
    parts = [c for c in path.split("/") if c and c != "."]
    out = "/".join(parts)
    return ("/" + out) if absolute else (out or ".")
