"""Namespace-state diffs: compare and graft final-state entry sets.

The sharded replay core runs each shard against a private forked
replica of the initialized file system; afterwards the parent needs
its own live FileSystem to hold the union of every worker's effects so
that ``--state-digest`` and downstream snapshots observe the merged
final state.  This module provides the two halves:

- :func:`diff_entries` -- what one replica changed relative to the
  shared pre-fork baseline (changed/added entries plus removed paths);
- :func:`apply_diff` -- graft such a diff onto a live FileSystem via
  the instant (``*_now``) namespace helpers, with no simulated time.

Entries are the ``Snapshot.capture`` dicts used by the state digest
(path, type, size, symlink target, xattr *names*).  Since snapshots
record xattr names but not values, grafted xattrs carry empty values;
the digest and all snapshot comparisons only ever consult names.
"""

from repro.vfs.nodes import FileType

__all__ = ["apply_diff", "diff_entries", "merge_diffs"]


def _by_path(entries):
    return {entry["path"]: entry for entry in entries}


def diff_entries(baseline_entries, final_entries):
    """``(changed, removed)`` taking ``baseline_entries`` to
    ``final_entries``: changed entry dicts (added or modified paths,
    final values) and removed paths with their baseline entries."""
    baseline = _by_path(baseline_entries)
    final = _by_path(final_entries)
    changed = [
        entry for path, entry in final.items() if baseline.get(path) != entry
    ]
    removed = [
        entry for path, entry in baseline.items() if path not in final
    ]
    changed.sort(key=lambda entry: entry["path"])
    removed.sort(key=lambda entry: entry["path"])
    return changed, removed


def merge_diffs(diffs):
    """Union of per-replica diffs (each a ``(changed, removed)`` pair).

    Replicas edit disjoint resource subtrees, so any two diffs naming
    one path must agree exactly; a contradiction means the partition
    was wrong and raises ValueError rather than guessing.
    """
    changed = {}
    removed = {}
    for changed_entries, removed_entries in diffs:
        for entry in changed_entries:
            path = entry["path"]
            if path in removed:
                raise ValueError(
                    "conflicting shard effects at %s: changed by one "
                    "replica, removed by another" % path
                )
            previous = changed.get(path)
            if previous is not None and previous != entry:
                raise ValueError(
                    "conflicting shard effects at %s: %r vs %r"
                    % (path, previous, entry)
                )
            changed[path] = entry
        for entry in removed_entries:
            path = entry["path"]
            if path in changed:
                raise ValueError(
                    "conflicting shard effects at %s: changed by one "
                    "replica, removed by another" % path
                )
            removed[path] = entry
    return (
        sorted(changed.values(), key=lambda entry: entry["path"]),
        sorted(removed.values(), key=lambda entry: entry["path"]),
    )


def _apply_entry(fs, entry):
    path = entry["path"]
    ftype = entry["type"]
    existing = fs.lookup(path, follow=False)
    if existing is not None:
        same_type = (
            (ftype == FileType.DIR and existing.is_dir)
            or (ftype == FileType.SYMLINK and existing.is_symlink)
            or (ftype == FileType.REG and existing.is_reg)
        )
        if not same_type:
            fs.unlink_now(path)
            existing = None
    if ftype == FileType.DIR:
        fs.mkdir_now(path)
        return
    if ftype == FileType.SYMLINK:
        if existing is not None:
            if existing.symlink_target == entry.get("target"):
                return
            fs.unlink_now(path)
        fs.symlink_now(entry.get("target") or "", path)
        return
    inode = fs.create_file_now(path, size=entry.get("size", 0))
    names = entry.get("xattrs") or []
    if names or inode.xattrs:
        for name in list(inode.xattrs):
            if name not in names:
                del inode.xattrs[name]
        for name in names:
            inode.xattrs.setdefault(name, b"")


def apply_diff(fs, changed, removed):
    """Graft a merged diff onto ``fs`` instantly.

    Removals run deepest-first (children before their directories),
    creations shallowest-first (parents before children).
    """
    for entry in sorted(
        removed, key=lambda e: (-e["path"].count("/"), e["path"])
    ):
        if fs.lookup(entry["path"], follow=False) is not None:
            fs.unlink_now(entry["path"])
    for entry in sorted(
        changed, key=lambda e: (e["path"].count("/"), e["path"])
    ):
        _apply_entry(fs, entry)
