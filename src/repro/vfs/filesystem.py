"""POSIX file-system semantics over the simulated storage stack.

Every operation is a generator (driven by the simulation engine) that
returns an ``(retval, errno)`` pair -- ``errno`` is ``None`` on success,
a symbolic name (``"ENOENT"``) on failure, mirroring what traces record.
Failed operations consume (almost) no simulated time, which is exactly
the under-constraint hazard the paper describes: a mis-ordered replay
whose calls fail "finishes instantly".

Timing is delegated to :class:`repro.storage.stack.StorageStack`; the
``platform`` string selects behavioural quirks (Darwin's cheap fsync,
Linux's blocking /dev/random, xattr errno spelling).
"""

from repro.errors import DeviceError
from repro.sim.events import Delay
from repro.vfs import flags as F
from repro.vfs.errnos import Errno, VfsError
from repro.vfs.fdtable import FDTable, OpenFile
from repro.vfs.nodes import FileType, InodeTable, resolve


class StatResult(object):
    __slots__ = ("ino", "ftype", "size", "nlink", "mode")

    def __init__(self, inode):
        self.ino = inode.ino
        self.ftype = inode.ftype
        self.size = inode.size
        self.nlink = inode.nlink
        self.mode = inode.mode

    def __repr__(self):
        return "<stat ino=%d %s size=%d>" % (self.ino, self.ftype, self.size)


class AioControlBlock(object):
    """State of one in-flight asynchronous request."""

    __slots__ = ("cb_id", "fd", "nbytes", "offset", "is_write", "status", "result", "done")

    def __init__(self, cb_id, fd, nbytes, offset, is_write, done):
        self.cb_id = cb_id
        self.fd = fd
        self.nbytes = nbytes
        self.offset = offset
        self.is_write = is_write
        self.status = Errno.EINPROGRESS
        self.result = None
        self.done = done


class FileSystem(object):
    """One mounted file system plus the process-wide fd table.

    Replay in the paper is single-process, so one FileSystem carries one
    fd table, one cwd, and one AIO registry shared by all (simulated)
    threads.
    """

    #: linux | darwin | freebsd | illumos
    def __init__(self, engine, stack, platform="linux"):
        self.engine = engine
        self.stack = stack
        self.platform = platform
        self.table = InodeTable()
        self.fdt = FDTable()
        self.cwd = InodeTable.ROOT_INO
        self._aiocbs = {}
        self.op_count = 0
        # Path-walk memo: (path, cwd, follow_last) -> (generation,
        # Resolved-or-None, errno-or-None).  Every namespace mutation
        # bumps the generation (see _ns_changed), lazily invalidating
        # all entries; between mutations, repeated walks of the same
        # path -- notably _resolve's post-charge re-walk -- are dict
        # hits instead of component-by-component tree walks.
        self._walk_gen = 0
        self._walk_cache = {}
        self._setup_devfs()

    # ------------------------------------------------------------------
    # setup helpers (instant, used before timing matters)
    # ------------------------------------------------------------------

    def _setup_devfs(self):
        self.mkdir_now("/dev")
        self.mkdir_now("/dev/shm")
        self.mknod_now("/dev/null", "null")
        self.mknod_now("/dev/zero", "zero")
        self.mknod_now("/dev/random", "random")
        self.mknod_now("/dev/urandom", "urandom")
        self.mknod_now("/dev/tty", "tty")
        self.mkdir_now("/tmp")

    def mkdir_now(self, path, mode=0o755):
        """Create a directory instantly (initialization helper)."""
        res = resolve(self.table, self.cwd, path)
        if res.inode is not None:
            if not res.inode.is_dir:
                raise VfsError(Errno.ENOTDIR)
            return res.inode
        child = self.table.alloc(FileType.DIR, mode)
        res.parent.children[res.name] = child.ino
        res.parent.nlink += 1
        self._ns_changed()
        return child

    def makedirs_now(self, path):
        parts = [p for p in path.split("/") if p]
        built = ""
        inode = self.table.root
        for part in parts:
            built += "/" + part
            inode = self.mkdir_now(built)
        return inode

    def create_file_now(self, path, size=0, mode=0o644):
        """Create (or resize) a regular file instantly.

        The file's extents are allocated immediately: a pre-existing
        file occupies its own contiguous region of the disk, it does
        not interleave with whatever happens to be read first.
        """
        res = resolve(self.table, self.cwd, path)
        if res.inode is not None:
            res.inode.size = size
            inode = res.inode
        else:
            inode = self.table.alloc(FileType.REG, mode)
            inode.size = size
            res.parent.children[res.name] = inode.ino
            self._ns_changed()
        if size > 0:
            self.stack.alloc.ensure_blocks(
                inode.ino, (size + 4095) // 4096
            )
        return inode

    def symlink_now(self, target, path):
        res = resolve(self.table, self.cwd, path, follow_last=False)
        if res.inode is not None:
            raise VfsError(Errno.EEXIST)
        child = self.table.alloc(FileType.SYMLINK, 0o777)
        child.symlink_target = target
        child.size = len(target)
        res.parent.children[res.name] = child.ino
        self._ns_changed()
        return child

    def mknod_now(self, path, special):
        res = resolve(self.table, self.cwd, path, follow_last=False)
        if res.inode is not None:
            return res.inode
        child = self.table.alloc(FileType.CHAR, 0o666)
        child.special = special
        res.parent.children[res.name] = child.ino
        self._ns_changed()
        return child

    def unlink_now(self, path):
        res = resolve(self.table, self.cwd, path, follow_last=False)
        if res.inode is None:
            raise VfsError(Errno.ENOENT)
        if res.inode.is_dir:
            res.parent.children.pop(res.name)
            res.parent.nlink -= 1
        else:
            res.parent.children.pop(res.name)
            res.inode.nlink -= 1
        self._ns_changed()
        self._maybe_free(res.inode)

    def exists(self, path, follow=True):
        try:
            res = self._walk(path, follow_last=follow)
        except VfsError:
            return False
        return res.inode is not None

    def lookup(self, path, follow=True):
        """Return the inode at ``path`` or None (initialization helper)."""
        try:
            res = self._walk(path, follow_last=follow)
        except VfsError:
            return None
        return res.inode

    # ------------------------------------------------------------------
    # internal plumbing
    # ------------------------------------------------------------------

    def _charge_walk(self, tid, visited):
        """Charge inode/dentry-cache lookups for a path walk.

        The cache-hit path is inlined: walks dominate metadata traffic,
        and creating a ``meta_read`` generator per visited inode is
        measurable.  Timing is unchanged -- the same effects are
        yielded in the same order as ``meta_read`` itself."""
        stack = self.stack
        lookup = stack.cache.lookup
        delay = stack.meta_delay
        for ino in visited:
            if lookup(("ino", ino)):
                yield delay
            else:
                yield from stack.meta_read_cold(tid, ino)

    def _ns_changed(self):
        """Invalidate memoized path walks after a namespace mutation
        (dentry attach/detach, symlink creation)."""
        self._walk_gen += 1

    def _walk(self, path, follow_last=True):
        """Memoized :func:`resolve` over the current namespace
        generation.  Walk errors are memoized too (re-raised fresh)."""
        key = (path, self.cwd, follow_last)
        gen = self._walk_gen
        hit = self._walk_cache.get(key)
        if hit is not None and hit[0] == gen:
            errno = hit[2]
            if errno is not None:
                raise VfsError(errno)
            return hit[1]
        try:
            res = resolve(self.table, self.cwd, path, follow_last=follow_last)
        except VfsError as exc:
            self._walk_cache[key] = (gen, None, exc.errno)
            raise
        self._walk_cache[key] = (gen, res, None)
        return res

    def _resolve(self, tid, path, follow_last=True):
        """Timed path resolution; raises VfsError on walk errors.

        Charging the walk yields, so other threads may run in between;
        namespace *mutations* must re-resolve with :meth:`_fresh`
        immediately before changing anything (the in-kernel equivalent
        holds directory locks across lookup+modify).
        """
        res = self._walk(path, follow_last=follow_last)
        gen = self._walk_gen
        yield from self._charge_walk(tid, res.visited)
        if self._walk_gen == gen:
            return res  # nobody mutated the namespace while we charged
        return self._walk(path, follow_last=follow_last)

    def _fresh(self, path, follow_last=True):
        """Atomic (non-yielding) resolution for use at mutation points."""
        return self._walk(path, follow_last=follow_last)

    def _maybe_free(self, inode):
        if inode.nlink <= 0 and inode.open_count == 0 and not inode.is_dir:
            if inode.ino in self.table:
                self.table.free(inode.ino)
            self.stack.drop_file(None, inode.ino)

    def _file_of(self, fd, kinds=("file",)):
        open_file = self.fdt.get(fd)
        if kinds is not None and open_file.kind not in kinds:
            raise VfsError(Errno.EBADF)
        return open_file

    def _xattr_missing_errno(self):
        return Errno.ENODATA if self.platform == "linux" else Errno.ENOATTR

    @staticmethod
    def _ok(value=0):
        return value, None

    @staticmethod
    def _fail(errno):
        return -1, errno

    def _run(self, gen):
        """Execute an op body, converting VfsError into (-1, errno).

        Failed calls still consume a little CPU: they "finish
        instantly" relative to I/O (the paper's underconstraint
        hazard), but zero-cost failures would let polling loops starve
        the rest of the simulation.
        """
        self.op_count += 1
        try:
            result = yield from gen
        except VfsError as exc:
            yield self.stack.meta_delay
            return self._fail(exc.errno)
        except DeviceError as exc:
            # An injected (or propagated) device fault: the syscall
            # fails with the mapped errno instead of crashing the run.
            yield self.stack.meta_delay
            return self._fail(exc.errno)
        return result

    # ------------------------------------------------------------------
    # open / close / dup
    # ------------------------------------------------------------------

    def open(self, tid, path, flags=F.O_RDONLY, mode=0o644):
        return self._run(self._open(tid, path, flags, mode))

    def _open(self, tid, path, flags, mode):
        follow = not (flags & (F.O_NOFOLLOW | F.O_SYMLINK))
        res = yield from self._resolve(tid, path, follow_last=follow)
        inode = res.inode
        accmode = flags & F.O_ACCMODE
        wants_write = accmode in (F.O_WRONLY, F.O_RDWR)
        if inode is None:
            if res.name is None:
                raise VfsError(Errno.EISDIR)
            if not (flags & F.O_CREAT):
                raise VfsError(Errno.ENOENT)
            inode = self.table.alloc(FileType.REG, mode)
            inode.mtime = self.engine.now
            yield from self.stack.namespace_op(
                tid, inode.ino, desc=("create", path)
            )
            # Attach the dentry at the return point (see _close).
            res = self._fresh(path, follow_last=follow)
            if res.inode is not None:
                # Lost the creation race during the journal charge.
                self.table.free(inode.ino)
                if flags & F.O_EXCL:
                    raise VfsError(Errno.EEXIST)
                inode = res.inode
                if inode.is_dir and wants_write:
                    raise VfsError(Errno.EISDIR)
            else:
                res.parent.children[res.name] = inode.ino
                self._ns_changed()
        else:
            if (flags & F.O_CREAT) and (flags & F.O_EXCL):
                raise VfsError(Errno.EEXIST)
            if inode.is_symlink and not follow:
                if flags & F.O_SYMLINK:
                    pass  # Darwin: operate on the link itself
                else:
                    raise VfsError(Errno.ELOOP)
            if inode.is_dir:
                if wants_write:
                    raise VfsError(Errno.EISDIR)
            elif flags & F.O_DIRECTORY:
                raise VfsError(Errno.ENOTDIR)
            if (flags & F.O_TRUNC) and wants_write and inode.is_reg:
                inode.size = 0
                self.stack.drop_file(tid, inode.ino)
                yield from self.stack.namespace_op(
                    tid, inode.ino, desc=("trunc", path)
                )
        kind = "dir" if inode.is_dir else "file"
        open_file = OpenFile(inode.ino, flags, kind=kind, path=path)
        inode.open_count += 1
        fd = self.fdt.alloc(open_file)
        return self._ok(fd)

    def creat(self, tid, path, mode=0o644):
        return self.open(tid, path, F.O_WRONLY | F.O_CREAT | F.O_TRUNC, mode)

    def close(self, tid, fd):
        return self._run(self._close(tid, fd))

    def _close(self, tid, fd):
        # Validate, charge time, then mutate at the return point: the
        # descriptor number must not be reusable before this call's
        # completion, or trace completion order would misattribute the
        # close to the wrong fd generation.
        self.fdt.get(fd)
        yield self.stack.meta_delay
        last = self.fdt.remove(fd)
        if last is not None and last.kind in ("file", "dir"):
            inode = self.table.get(last.ino)
            inode.open_count -= 1
            self._maybe_free(inode)
        return self._ok(0)

    def dup(self, tid, fd):
        return self._run(self._dup(tid, fd, None))

    def dup2(self, tid, fd, newfd):
        return self._run(self._dup2(tid, fd, newfd))

    def _dup(self, tid, fd, lowest):
        newfd = self.fdt.dup(fd, lowest)
        self._bump_open_count(newfd)
        yield self.stack.meta_delay
        return self._ok(newfd)

    def _dup2(self, tid, fd, newfd):
        if newfd in self.fdt:
            yield from self._close(tid, newfd)
        result = self.fdt.dup2(fd, newfd)
        self._bump_open_count(result)
        yield self.stack.meta_delay
        return self._ok(result)

    def _bump_open_count(self, fd):
        open_file = self.fdt.get(fd)
        if open_file.kind in ("file", "dir"):
            self.table.get(open_file.ino).open_count += 1

    # ------------------------------------------------------------------
    # data transfer
    # ------------------------------------------------------------------

    def read(self, tid, fd, nbytes):
        return self._run(self._rw(tid, fd, nbytes, None, False))

    def pread(self, tid, fd, nbytes, offset):
        return self._run(self._rw(tid, fd, nbytes, offset, False))

    def write(self, tid, fd, nbytes):
        return self._run(self._rw(tid, fd, nbytes, None, True))

    def pwrite(self, tid, fd, nbytes, offset):
        return self._run(self._rw(tid, fd, nbytes, offset, True))

    def _rw(self, tid, fd, nbytes, offset, is_write):
        open_file = self.fdt.get(fd)
        if open_file.kind == "dir":
            raise VfsError(Errno.EISDIR)
        if open_file.kind.startswith("pipe"):
            ok_dir = (open_file.kind == "pipe_w") == is_write
            if not ok_dir:
                raise VfsError(Errno.EBADF)
            yield Delay(self.stack.PAGE_CPU)
            return self._ok(nbytes)
        accmode = open_file.flags & F.O_ACCMODE
        if is_write and accmode == F.O_RDONLY:
            raise VfsError(Errno.EBADF)
        if not is_write and accmode == F.O_WRONLY:
            raise VfsError(Errno.EBADF)
        inode = self.table.get(open_file.ino)
        if inode.ftype == FileType.CHAR:
            value = yield from self._special_rw(inode, nbytes, is_write)
            return self._ok(value)
        at = open_file.offset if offset is None else offset
        if is_write:
            if (open_file.flags & F.O_APPEND) and offset is None:
                at = inode.size
            yield from self.stack.write(tid, inode.ino, at, nbytes)
            inode.size = max(inode.size, at + nbytes)
            inode.mtime = self.engine.now
            done = nbytes
        else:
            done = max(0, min(nbytes, inode.size - at))
            if done:
                yield from self.stack.read(tid, inode.ino, at, done)
            else:
                yield self.stack.meta_delay
        if offset is None:
            open_file.offset = at + done
        return self._ok(done)

    def _special_rw(self, inode, nbytes, is_write):
        if is_write:
            yield Delay(self.stack.PAGE_CPU)
            return nbytes
        if inode.special == "random" and self.platform == "linux":
            # Linux /dev/random blocks while the entropy pool refills:
            # tens of seconds for under a hundred bytes (paper section 5.1).
            yield Delay(0.25 * max(1, nbytes))
            return nbytes
        if inode.special == "null":
            yield self.stack.meta_delay
            return 0
        yield Delay(self.stack.PAGE_CPU)
        return nbytes

    def lseek(self, tid, fd, offset, whence=F.SEEK_SET):
        return self._run(self._lseek(tid, fd, offset, whence))

    def _lseek(self, tid, fd, offset, whence):
        open_file = self.fdt.get(fd)
        if open_file.kind.startswith("pipe"):
            raise VfsError(Errno.ESPIPE)
        inode = self.table.get(open_file.ino)
        if whence == F.SEEK_SET:
            new = offset
        elif whence == F.SEEK_CUR:
            new = open_file.offset + offset
        elif whence == F.SEEK_END:
            new = inode.size + offset
        else:
            raise VfsError(Errno.EINVAL)
        if new < 0:
            raise VfsError(Errno.EINVAL)
        open_file.offset = new
        yield self.stack.meta_delay
        return self._ok(new)

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------

    def fsync(self, tid, fd):
        return self._run(self._fsync(tid, fd, full=self.platform != "darwin"))

    def fdatasync(self, tid, fd):
        return self._run(self._fdatasync(tid, fd))

    def _fdatasync(self, tid, fd):
        """Flush the file's data with a device barrier, but skip the
        metadata journal commit (cheaper than fsync on a journaling
        file system)."""
        open_file = self._file_of(fd, kinds=("file", "dir"))
        inode = self.table.get(open_file.ino)
        yield from self.stack._flush_keys(
            tid, self.stack.cache.dirty_keys_of(inode.ino)
        )
        if self.platform != "darwin":
            yield Delay(self.stack.BARRIER_LATENCY)
        return self._ok(0)

    def full_fsync(self, tid, fd):
        """Darwin's fcntl(F_FULLFSYNC): flush all the way to media."""
        return self._run(self._fsync(tid, fd, full=True))

    def _fsync(self, tid, fd, full):
        open_file = self._file_of(fd, kinds=("file", "dir"))
        inode = self.table.get(open_file.ino)
        if full:
            yield from self.stack.fsync(tid, inode.ino, size=inode.size)
        else:
            # Darwin fsync: write dirty pages to the device's volatile
            # cache, without the barrier / journal commit.
            yield from self.stack._flush_keys(
                tid, self.stack.cache.dirty_keys_of(inode.ino)
            )
        return self._ok(0)

    def sync(self, tid):
        return self._run(self._sync(tid))

    def _sync(self, tid):
        yield from self.stack.sync_all(tid)
        return self._ok(0)

    # ------------------------------------------------------------------
    # metadata reads
    # ------------------------------------------------------------------

    def stat(self, tid, path):
        return self._run(self._stat(tid, path, follow=True))

    def lstat(self, tid, path):
        return self._run(self._stat(tid, path, follow=False))

    def _stat(self, tid, path, follow):
        res = yield from self._resolve(tid, path, follow_last=follow)
        if res.inode is None:
            raise VfsError(Errno.ENOENT)
        return self._ok(StatResult(res.inode))

    def fstat(self, tid, fd):
        return self._run(self._fstat(tid, fd))

    def _fstat(self, tid, fd):
        open_file = self.fdt.get(fd)
        if open_file.kind.startswith("pipe"):
            yield self.stack.meta_delay
            fake = self.table.alloc(FileType.FIFO)
            self.table.free(fake.ino)
            return self._ok(StatResult(fake))
        inode = self.table.get(open_file.ino)
        yield from self.stack.meta_read(tid, inode.ino)
        return self._ok(StatResult(inode))

    def access(self, tid, path, mode=0):
        return self._run(self._access(tid, path))

    def _access(self, tid, path):
        res = yield from self._resolve(tid, path)
        if res.inode is None:
            raise VfsError(Errno.ENOENT)
        return self._ok(0)

    def readlink(self, tid, path):
        return self._run(self._readlink(tid, path))

    def _readlink(self, tid, path):
        res = yield from self._resolve(tid, path, follow_last=False)
        if res.inode is None:
            raise VfsError(Errno.ENOENT)
        if not res.inode.is_symlink:
            raise VfsError(Errno.EINVAL)
        return self._ok(res.inode.symlink_target)

    def getdents(self, tid, fd):
        return self._run(self._getdents(tid, fd))

    def _getdents(self, tid, fd):
        open_file = self._file_of(fd, kinds=("dir",))
        inode = self.table.get(open_file.ino)
        yield from self.stack.meta_read(tid, inode.ino)
        return self._ok(sorted(inode.children))

    def statfs(self, tid, path):
        return self._run(self._statfs(tid, path))

    def _statfs(self, tid, path):
        res = yield from self._resolve(tid, path)
        if res.inode is None:
            raise VfsError(Errno.ENOENT)
        return self._ok({"type": self.stack.profile.name, "bfree": 1 << 30})

    def fstatfs(self, tid, fd):
        return self._run(self._fstatfs(tid, fd))

    def _fstatfs(self, tid, fd):
        self.fdt.get(fd)
        yield self.stack.meta_delay
        return self._ok({"type": self.stack.profile.name, "bfree": 1 << 30})

    # ------------------------------------------------------------------
    # namespace changes
    # ------------------------------------------------------------------

    def mkdir(self, tid, path, mode=0o755):
        return self._run(self._mkdir(tid, path, mode))

    def _mkdir(self, tid, path, mode):
        res = yield from self._resolve(tid, path, follow_last=False)
        if res.inode is not None or res.name is None:
            raise VfsError(Errno.EEXIST)
        child = self.table.alloc(FileType.DIR, mode)
        yield from self.stack.namespace_op(tid, child.ino, desc=("mkdir", path))
        res = self._fresh(path, follow_last=False)
        if res.inode is not None or res.name is None:
            raise VfsError(Errno.EEXIST)
        res.parent.children[res.name] = child.ino
        res.parent.nlink += 1
        self._ns_changed()
        return self._ok(0)

    def rmdir(self, tid, path):
        return self._run(self._rmdir(tid, path))

    def _rmdir(self, tid, path):
        res = yield from self._resolve(tid, path, follow_last=False)
        if res.inode is None:
            raise VfsError(Errno.ENOENT)
        if not res.inode.is_dir:
            raise VfsError(Errno.ENOTDIR)
        if res.inode.children:
            raise VfsError(Errno.ENOTEMPTY)
        if res.name is None:
            raise VfsError(Errno.EINVAL)
        yield from self.stack.namespace_op(tid, None, desc=("rmdir", path))
        res = self._fresh(path, follow_last=False)
        if res.inode is None or not res.inode.is_dir or res.inode.children:
            raise VfsError(Errno.ENOENT if res.inode is None else Errno.ENOTEMPTY)
        del res.parent.children[res.name]
        res.parent.nlink -= 1
        self._ns_changed()
        self.table.free(res.inode.ino)
        return self._ok(0)

    def unlink(self, tid, path):
        return self._run(self._unlink(tid, path))

    def _unlink(self, tid, path):
        res = yield from self._resolve(tid, path, follow_last=False)
        if res.inode is None:
            raise VfsError(Errno.ENOENT)
        if res.inode.is_dir:
            raise VfsError(Errno.EISDIR)
        victim = res.inode
        yield from self.stack.namespace_op(
            tid, None,
            desc=("unlink", path, victim.ftype, victim.size,
                  victim.symlink_target if victim.is_symlink else None),
        )
        res = self._fresh(path, follow_last=False)
        if res.inode is None:
            raise VfsError(Errno.ENOENT)
        if res.inode.is_dir:
            raise VfsError(Errno.EISDIR)
        del res.parent.children[res.name]
        res.inode.nlink -= 1
        self._ns_changed()
        self._maybe_free(res.inode)
        return self._ok(0)

    def rename(self, tid, old, new):
        return self._run(self._rename(tid, old, new))

    def _rename(self, tid, old, new):
        src = yield from self._resolve(tid, old, follow_last=False)
        if src.inode is None:
            raise VfsError(Errno.ENOENT)
        dst = yield from self._resolve(tid, new, follow_last=False)
        # Charge the journaled namespace change, then perform the whole
        # check-and-swap atomically at the return point on fresh state.
        yield from self.stack.namespace_op(
            tid, src.inode.ino, desc=("rename", old, new)
        )
        src = self._fresh(old, follow_last=False)
        if src.inode is None:
            raise VfsError(Errno.ENOENT)
        dst = self._fresh(new, follow_last=False)
        if dst.name is None and dst.inode is not src.inode:
            raise VfsError(Errno.EEXIST)
        if src.inode.is_dir:
            # Reject moving a directory into its own subtree.
            probe = dst.parent
            seen = set()
            while probe.ino not in seen:
                seen.add(probe.ino)
                if probe is src.inode:
                    raise VfsError(Errno.EINVAL)
                parent = self._parent_of(probe)
                if parent is None or parent is probe:
                    break
                probe = parent
        if dst.inode is not None:
            if dst.inode is src.inode:
                yield self.stack.meta_delay
                return self._ok(0)
            if dst.inode.is_dir:
                if not src.inode.is_dir:
                    raise VfsError(Errno.EISDIR)
                if dst.inode.children:
                    raise VfsError(Errno.ENOTEMPTY)
                del dst.parent.children[dst.name]
                dst.parent.nlink -= 1
                self.table.free(dst.inode.ino)
            else:
                if src.inode.is_dir:
                    raise VfsError(Errno.ENOTDIR)
                del dst.parent.children[dst.name]
                dst.inode.nlink -= 1
                self._maybe_free(dst.inode)
        del src.parent.children[src.name]
        dst.parent.children[dst.name] = src.inode.ino
        if src.inode.is_dir and src.parent is not dst.parent:
            src.parent.nlink -= 1
            dst.parent.nlink += 1
        self._ns_changed()
        return self._ok(0)

    def _parent_of(self, inode):
        """Find a directory's parent by scanning (slow path; renames of
        directories are rare)."""
        for candidate in list(self.table._inodes.values()):
            if candidate.is_dir and candidate.children:
                if inode.ino in candidate.children.values():
                    return candidate
        return None

    def link(self, tid, target, path):
        return self._run(self._link(tid, target, path))

    def _link(self, tid, target, path):
        src = yield from self._resolve(tid, target)
        if src.inode is None:
            raise VfsError(Errno.ENOENT)
        if src.inode.is_dir:
            raise VfsError(Errno.EPERM)
        dst = yield from self._resolve(tid, path, follow_last=False)
        yield from self.stack.namespace_op(tid, src.inode.ino, desc=("link", path))
        # All yields done; link atomically at the return point.
        src = self._fresh(target)
        if src.inode is None:
            raise VfsError(Errno.ENOENT)
        dst = self._fresh(path, follow_last=False)
        if dst.inode is not None:
            raise VfsError(Errno.EEXIST)
        dst.parent.children[dst.name] = src.inode.ino
        src.inode.nlink += 1
        self._ns_changed()
        return self._ok(0)

    def symlink(self, tid, target, path):
        return self._run(self._symlink(tid, target, path))

    def _symlink(self, tid, target, path):
        dst = yield from self._resolve(tid, path, follow_last=False)
        if dst.inode is not None:
            raise VfsError(Errno.EEXIST)
        child = self.table.alloc(FileType.SYMLINK, 0o777)
        child.symlink_target = target
        child.size = len(target)
        yield from self.stack.namespace_op(
            tid, child.ino, desc=("symlink", path, target)
        )
        dst = self._fresh(path, follow_last=False)
        if dst.inode is not None:
            raise VfsError(Errno.EEXIST)
        dst.parent.children[dst.name] = child.ino
        self._ns_changed()
        return self._ok(0)

    def truncate(self, tid, path, length):
        return self._run(self._truncate_path(tid, path, length))

    def _truncate_path(self, tid, path, length):
        res = yield from self._resolve(tid, path)
        if res.inode is None:
            raise VfsError(Errno.ENOENT)
        if res.inode.is_dir:
            raise VfsError(Errno.EISDIR)
        yield from self._do_truncate(tid, res.inode, length)
        return self._ok(0)

    def ftruncate(self, tid, fd, length):
        return self._run(self._ftruncate(tid, fd, length))

    def _ftruncate(self, tid, fd, length):
        open_file = self._file_of(fd)
        inode = self.table.get(open_file.ino)
        yield from self._do_truncate(tid, inode, length)
        return self._ok(0)

    def _do_truncate(self, tid, inode, length):
        if length < 0:
            raise VfsError(Errno.EINVAL)
        inode.size = length
        inode.mtime = self.engine.now
        yield from self.stack.namespace_op(tid, inode.ino)

    def chmod(self, tid, path, mode):
        return self._run(self._chmod_path(tid, path, mode))

    def _chmod_path(self, tid, path, mode):
        res = yield from self._resolve(tid, path)
        if res.inode is None:
            raise VfsError(Errno.ENOENT)
        res.inode.mode = mode
        yield from self.stack.namespace_op(tid, res.inode.ino)
        return self._ok(0)

    def fchmod(self, tid, fd, mode):
        return self._run(self._fchmod(tid, fd, mode))

    def _fchmod(self, tid, fd, mode):
        open_file = self.fdt.get(fd)
        self.table.get(open_file.ino).mode = mode
        yield from self.stack.namespace_op(tid, open_file.ino)
        return self._ok(0)

    def chown(self, tid, path, uid=0, gid=0):
        return self._run(self._touch_path_meta(tid, path))

    def utimes(self, tid, path):
        return self._run(self._touch_path_meta(tid, path))

    def _touch_path_meta(self, tid, path):
        res = yield from self._resolve(tid, path)
        if res.inode is None:
            raise VfsError(Errno.ENOENT)
        yield from self.stack.namespace_op(tid, res.inode.ino)
        return self._ok(0)

    def futimes(self, tid, fd):
        return self._run(self._futimes(tid, fd))

    def _futimes(self, tid, fd):
        open_file = self.fdt.get(fd)
        yield from self.stack.namespace_op(tid, open_file.ino)
        return self._ok(0)

    def chdir(self, tid, path):
        return self._run(self._chdir(tid, path))

    def _chdir(self, tid, path):
        res = yield from self._resolve(tid, path)
        if res.inode is None:
            raise VfsError(Errno.ENOENT)
        if not res.inode.is_dir:
            raise VfsError(Errno.ENOTDIR)
        self.cwd = res.inode.ino
        return self._ok(0)

    # ------------------------------------------------------------------
    # hints and allocation
    # ------------------------------------------------------------------

    def fadvise(self, tid, fd, offset, length, advice="willneed"):
        return self._run(self._fadvise(tid, fd, offset, length))

    def _fadvise(self, tid, fd, offset, length):
        open_file = self._file_of(fd)
        inode = self.table.get(open_file.ino)
        # Kick off asynchronous readahead of the advised range.
        span = min(length or inode.size, 1 << 20)
        if span > 0 and inode.is_reg:
            from repro.storage.alloc import bytes_to_blocks

            first, nblocks = bytes_to_blocks(offset, span)
            blocks = [
                b
                for b in range(first, first + nblocks)
                if not self.stack.cache.contains((inode.ino, b))
            ]
            for block in blocks:
                self.stack.cache.insert((inode.ino, block), dirty=False)
            for lba, run in self.stack._physical_runs(inode.ino, blocks):
                self.stack.submit(tid, lba, run, is_write=False)
        yield self.stack.meta_delay
        return self._ok(0)

    def fallocate(self, tid, fd, offset, length):
        return self._run(self._fallocate(tid, fd, offset, length))

    def _fallocate(self, tid, fd, offset, length):
        open_file = self._file_of(fd)
        inode = self.table.get(open_file.ino)
        from repro.storage.alloc import bytes_to_blocks

        first, nblocks = bytes_to_blocks(offset, length)
        self.stack.alloc.ensure_blocks(inode.ino, first + nblocks)
        inode.size = max(inode.size, offset + length)
        yield from self.stack.namespace_op(tid, inode.ino)
        return self._ok(0)

    def flock(self, tid, fd, op=0):
        return self._run(self._flock(tid, fd))

    def _flock(self, tid, fd):
        self.fdt.get(fd)
        yield self.stack.meta_delay
        return self._ok(0)

    def mmap(self, tid, fd, offset, length):
        return self._run(self._mmap(tid, fd, offset, length))

    def _mmap(self, tid, fd, offset, length):
        if fd == -1:  # anonymous mapping
            yield self.stack.meta_delay
            return self._ok(0x7F0000000000)
        open_file = self._file_of(fd)
        inode = self.table.get(open_file.ino)
        # Model the fault-in of the mapped region as a read.
        span = max(0, min(length, inode.size - offset))
        if span and inode.is_reg:
            yield from self.stack.read(tid, inode.ino, offset, span)
        return self._ok(0x7F0000000000 + inode.ino)

    def munmap(self, tid, addr, length):
        return self._run(self._trivial())

    def msync(self, tid, addr, length):
        return self._run(self._trivial())

    def _trivial(self):
        yield self.stack.meta_delay
        return self._ok(0)

    # ------------------------------------------------------------------
    # pipes and shared memory
    # ------------------------------------------------------------------

    def pipe(self, tid):
        return self._run(self._pipe(tid))

    def _pipe(self, tid):
        read_end = self.fdt.alloc(OpenFile(None, F.O_RDONLY, kind="pipe_r"))
        write_end = self.fdt.alloc(OpenFile(None, F.O_WRONLY, kind="pipe_w"))
        yield self.stack.meta_delay
        return self._ok((read_end, write_end))

    def shm_open(self, tid, name, flags=F.O_RDWR | F.O_CREAT, mode=0o600):
        path = "/dev/shm/" + name.lstrip("/")
        return self.open(tid, path, flags, mode)

    def shm_unlink(self, tid, name):
        path = "/dev/shm/" + name.lstrip("/")
        return self.unlink(tid, path)

    # ------------------------------------------------------------------
    # extended attributes
    # ------------------------------------------------------------------

    def getxattr(self, tid, path, name, follow=True):
        return self._run(self._getxattr_path(tid, path, name, follow))

    def _getxattr_path(self, tid, path, name, follow):
        res = yield from self._resolve(tid, path, follow_last=follow)
        if res.inode is None:
            raise VfsError(Errno.ENOENT)
        return self._xattr_get(res.inode, name)

    def fgetxattr(self, tid, fd, name):
        return self._run(self._fgetxattr(tid, fd, name))

    def _fgetxattr(self, tid, fd, name):
        open_file = self._file_of(fd, kinds=("file", "dir"))
        yield from self.stack.meta_read(tid, open_file.ino)
        return self._xattr_get(self.table.get(open_file.ino), name)

    def _xattr_get(self, inode, name):
        if name not in inode.xattrs:
            return self._fail(self._xattr_missing_errno())
        return self._ok(inode.xattrs[name])

    def setxattr(self, tid, path, name, size=16, follow=True):
        return self._run(self._setxattr_path(tid, path, name, size, follow))

    def _setxattr_path(self, tid, path, name, size, follow):
        res = yield from self._resolve(tid, path, follow_last=follow)
        if res.inode is None:
            raise VfsError(Errno.ENOENT)
        res.inode.xattrs[name] = size
        yield from self.stack.namespace_op(tid, res.inode.ino)
        return self._ok(0)

    def fsetxattr(self, tid, fd, name, size=16):
        return self._run(self._fsetxattr(tid, fd, name, size))

    def _fsetxattr(self, tid, fd, name, size):
        open_file = self._file_of(fd, kinds=("file", "dir"))
        self.table.get(open_file.ino).xattrs[name] = size
        yield from self.stack.namespace_op(tid, open_file.ino)
        return self._ok(0)

    def listxattr(self, tid, path, follow=True):
        return self._run(self._listxattr_path(tid, path, follow))

    def _listxattr_path(self, tid, path, follow):
        res = yield from self._resolve(tid, path, follow_last=follow)
        if res.inode is None:
            raise VfsError(Errno.ENOENT)
        return self._ok(sorted(res.inode.xattrs))

    def flistxattr(self, tid, fd):
        return self._run(self._flistxattr(tid, fd))

    def _flistxattr(self, tid, fd):
        open_file = self._file_of(fd, kinds=("file", "dir"))
        yield from self.stack.meta_read(tid, open_file.ino)
        return self._ok(sorted(self.table.get(open_file.ino).xattrs))

    def removexattr(self, tid, path, name, follow=True):
        return self._run(self._removexattr_path(tid, path, name, follow))

    def _removexattr_path(self, tid, path, name, follow):
        res = yield from self._resolve(tid, path, follow_last=follow)
        if res.inode is None:
            raise VfsError(Errno.ENOENT)
        if name not in res.inode.xattrs:
            return self._fail(self._xattr_missing_errno())
        del res.inode.xattrs[name]
        yield from self.stack.namespace_op(tid, res.inode.ino)
        return self._ok(0)

    def fremovexattr(self, tid, fd, name):
        return self._run(self._fremovexattr(tid, fd, name))

    def _fremovexattr(self, tid, fd, name):
        open_file = self._file_of(fd, kinds=("file", "dir"))
        inode = self.table.get(open_file.ino)
        if name not in inode.xattrs:
            yield self.stack.meta_delay
            return self._fail(self._xattr_missing_errno())
        del inode.xattrs[name]
        yield from self.stack.namespace_op(tid, open_file.ino)
        return self._ok(0)

    # ------------------------------------------------------------------
    # Darwin-specific primitives
    # ------------------------------------------------------------------

    def exchangedata(self, tid, path1, path2):
        """Darwin's atomic data-fork swap: each file's inode ends up
        pointing at the other file's data, metadata preserved."""
        return self._run(self._exchangedata(tid, path1, path2))

    def _exchangedata(self, tid, path1, path2):
        a = yield from self._resolve(tid, path1)
        b = yield from self._resolve(tid, path2)
        if a.inode is None or b.inode is None:
            raise VfsError(Errno.ENOENT)
        if not (a.inode.is_reg and b.inode.is_reg):
            raise VfsError(Errno.EINVAL)
        a.inode.size, b.inode.size = b.inode.size, a.inode.size
        yield from self.stack.namespace_op(tid, a.inode.ino)
        yield from self.stack.namespace_op(tid, b.inode.ino)
        return self._ok(0)

    def getattrlist(self, tid, path, follow=True):
        """Darwin bulk-metadata read; modeled as a stat-family call."""
        return self._run(self._getattrlist(tid, path, follow))

    def _getattrlist(self, tid, path, follow):
        res = yield from self._resolve(tid, path, follow_last=follow)
        if res.inode is None:
            raise VfsError(Errno.ENOENT)
        return self._ok(StatResult(res.inode))

    def setattrlist(self, tid, path, follow=True):
        return self._run(self._touch_path_meta(tid, path))

    # ------------------------------------------------------------------
    # asynchronous I/O
    # ------------------------------------------------------------------

    def aio_submit(self, tid, cb_id, fd, nbytes, offset, is_write):
        return self._run(self._aio_submit(tid, cb_id, fd, nbytes, offset, is_write))

    def _aio_submit(self, tid, cb_id, fd, nbytes, offset, is_write):
        open_file = self._file_of(fd)
        inode = self.table.get(open_file.ino)
        from repro.sim.events import Event

        done = Event()
        block = AioControlBlock(cb_id, fd, nbytes, offset, is_write, done)
        self._aiocbs[cb_id] = block

        def _runner():
            if is_write:
                yield from self.stack.write(tid, inode.ino, offset, nbytes)
                inode.size = max(inode.size, offset + nbytes)
                block.result = nbytes
            else:
                span = max(0, min(nbytes, inode.size - offset))
                if span:
                    yield from self.stack.read(tid, inode.ino, offset, span)
                block.result = span
            block.status = None  # 0 / success
            done.set(block.result)

        self.engine.spawn(_runner(), name="aio-%s" % (cb_id,))
        yield self.stack.meta_delay
        return self._ok(0)

    def aio_error(self, tid, cb_id):
        return self._run(self._aio_error(tid, cb_id))

    def _aio_error(self, tid, cb_id):
        block = self._aiocbs.get(cb_id)
        yield self.stack.meta_delay
        if block is None:
            return self._fail(Errno.EINVAL)
        if block.status == Errno.EINPROGRESS:
            return self._ok(Errno.EINPROGRESS)
        return self._ok(0)

    def aio_return(self, tid, cb_id):
        return self._run(self._aio_return(tid, cb_id))

    def _aio_return(self, tid, cb_id):
        block = self._aiocbs.pop(cb_id, None)
        yield self.stack.meta_delay
        if block is None:
            return self._fail(Errno.EINVAL)
        return self._ok(block.result if block.result is not None else -1)

    def aio_suspend(self, tid, cb_ids):
        return self._run(self._aio_suspend(tid, cb_ids))

    def _aio_suspend(self, tid, cb_ids):
        for cb_id in cb_ids:
            block = self._aiocbs.get(cb_id)
            if block is not None and block.status == Errno.EINPROGRESS:
                yield block.done
        return self._ok(0)
