"""File descriptors and open-file descriptions.

As on a real kernel, ``dup`` shares one open-file description (and thus
one offset) between descriptors, while two independent ``open`` calls
on the same file get independent offsets.
"""

from repro.vfs.errnos import Errno, VfsError


class OpenFile(object):
    """An open-file description (struct file)."""

    __slots__ = ("ino", "offset", "flags", "kind", "refcount", "path")

    def __init__(self, ino, flags, kind="file", path=None):
        self.ino = ino
        self.offset = 0
        self.flags = flags
        self.kind = kind  # "file" | "dir" | "pipe_r" | "pipe_w"
        self.refcount = 1
        self.path = path  # the path it was opened by, for diagnostics

    def __repr__(self):
        return "<OpenFile ino=%s kind=%s off=%d>" % (self.ino, self.kind, self.offset)


class FDTable(object):
    FIRST_FD = 3  # 0-2 are the std streams, which traces rarely touch
    MAX_FDS = 65536

    def __init__(self):
        self._fds = {}

    def alloc(self, open_file, lowest=None):
        fd = FDTable.FIRST_FD if lowest is None else lowest
        while fd in self._fds:
            fd += 1
        if fd >= FDTable.MAX_FDS:
            raise VfsError(Errno.EMFILE)
        self._fds[fd] = open_file
        return fd

    def get(self, fd):
        try:
            return self._fds[fd]
        except KeyError:
            raise VfsError(Errno.EBADF) from None

    def dup(self, fd, lowest=None):
        open_file = self.get(fd)
        open_file.refcount += 1
        return self.alloc(open_file, lowest)

    def dup2(self, fd, newfd):
        open_file = self.get(fd)
        if newfd == fd:
            return newfd
        if newfd in self._fds:
            self.remove(newfd)
        open_file.refcount += 1
        self._fds[newfd] = open_file
        return newfd

    def remove(self, fd):
        """Drop ``fd``; returns the description if this was its last
        reference (the caller then releases the inode)."""
        open_file = self.get(fd)
        del self._fds[fd]
        open_file.refcount -= 1
        return open_file if open_file.refcount == 0 else None

    def open_fds(self):
        return sorted(self._fds)

    def __contains__(self, fd):
        return fd in self._fds

    def __len__(self):
        return len(self._fds)
