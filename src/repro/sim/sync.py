"""Higher-level synchronization built on one-shot events.

These mirror the pthread primitives ARTC's replayer uses (condition
variables, mutexes) so the replayer code reads like the C original.
All are generator-based: ``yield from cond.wait()`` etc.
"""

from collections import deque

from repro.sim.events import Event, WaitEvent


class Condition(object):
    """A broadcast-capable condition variable.

    Unlike :class:`~repro.sim.events.Event`, a condition may be waited
    on and notified repeatedly.  There is no associated lock: the
    simulation is cooperatively scheduled, so code between yields is
    atomic and the usual lost-wakeup races cannot occur as long as the
    predicate is re-checked in a ``while`` loop (as with pthreads).
    """

    __slots__ = ("_waiters",)

    def __init__(self):
        self._waiters = []

    def wait(self):
        event = Event()
        self._waiters.append(event)
        yield WaitEvent(event)

    def notify_all(self):
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.set()

    def notify_one(self):
        if self._waiters:
            self._waiters.pop(0).set()

    @property
    def waiter_count(self):
        return len(self._waiters)


class Mutex(object):
    """A fair (FIFO) mutual-exclusion lock."""

    __slots__ = ("_locked", "_queue")

    def __init__(self):
        self._locked = False
        self._queue = deque()

    def acquire(self):
        if self._locked:
            event = Event()
            self._queue.append(event)
            yield WaitEvent(event)
        # Ownership is transferred by release(); when woken, the lock is
        # already ours.
        self._locked = True

    def release(self):
        if not self._locked:
            raise RuntimeError("release of unlocked mutex")
        if self._queue:
            # Hand off directly; stays locked.
            self._queue.popleft().set()
        else:
            self._locked = False

    @property
    def locked(self):
        return self._locked


class Semaphore(object):
    """A counting semaphore with FIFO wakeups."""

    __slots__ = ("_count", "_queue")

    def __init__(self, count=0):
        if count < 0:
            raise ValueError("negative initial count")
        self._count = count
        self._queue = deque()

    def acquire(self):
        if self._count == 0:
            event = Event()
            self._queue.append(event)
            yield WaitEvent(event)
        else:
            self._count -= 1

    def release(self):
        if self._queue:
            self._queue.popleft().set()
        else:
            self._count += 1

    @property
    def count(self):
        return self._count
