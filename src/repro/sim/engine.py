"""The discrete-event engine and its process abstraction."""

import heapq
import random

from repro.errors import AbortSimulation, ProcessCrashed, SimulationError
from repro.sim.events import Delay, Effect, Event, Gate, Hold, WaitEvent


class Process(object):
    """A simulated thread of control wrapping a generator.

    The generator yields :class:`~repro.sim.events.Effect` objects (or
    bare :class:`~repro.sim.events.Event` instances, treated as
    ``WaitEvent``).  When the generator returns, the returned value is
    stored in :attr:`result` and :attr:`done` fires with it, so other
    processes can join with ``yield proc.done``.
    """

    __slots__ = ("name", "engine", "_gen", "_send", "done", "result", "alive")

    def __init__(self, engine, gen, name):
        self.engine = engine
        self._gen = gen
        # Bound once: _step runs for every effect of every simulated
        # process, so the send attribute lookup is measurable.
        self._send = gen.send
        self.name = name
        self.done = Event()
        self.result = None
        self.alive = True

    def _step(self, value):
        engine = self.engine
        try:
            effect = self._send(value)
        except StopIteration as stop:
            self.alive = False
            self.result = getattr(stop, "value", None)
            self.done.set(self.result)
            return
        except AbortSimulation:
            # Deliberate whole-simulation unwind (machine crash,
            # watchdog abort): propagate unchanged so the driver can
            # catch the precise type above ``engine.run``.
            self.alive = False
            raise
        except Exception as exc:  # surface crashes with context
            self.alive = False
            raise ProcessCrashed(self.name, exc) from exc
        # Dispatch order follows effect frequency: Delay is yielded for
        # every CPU charge and dominates, bare Events (a convenience
        # spelling of WaitEvent) are rarest.
        if isinstance(effect, Delay):
            engine._schedule(effect.seconds, self._step, None)
        elif isinstance(effect, WaitEvent):
            effect.event._add_waiter(self._resume_soon)
        elif isinstance(effect, Gate):
            effect._arm(self._resume_soon)
        elif isinstance(effect, Event):
            effect._add_waiter(self._resume_soon)
        elif isinstance(effect, Hold):
            # Freeze-the-world parking (streaming replay): no event is
            # scheduled; the driver resumes the process synchronously
            # via Hold.release once its input is available.
            effect._process = self
        elif isinstance(effect, Effect):
            raise SimulationError("engine cannot handle effect %r" % (effect,))
        else:
            raise SimulationError(
                "process %r yielded a non-effect: %r (forgot 'yield from'?)"
                % (self.name, effect)
            )

    def _resume_soon(self, value):
        # Resume at the current instant but through the event queue, so
        # that multiple waiters of one event wake in deterministic order
        # without reentrancy.
        self.engine._schedule(0.0, self._step, value)

    def __repr__(self):
        state = "alive" if self.alive else "done"
        return "<Process %s (%s)>" % (self.name, state)


class Engine(object):
    """A deterministic discrete-event scheduler.

    Events at equal timestamps run in FIFO order of scheduling, which
    keeps every simulation reproducible for a given seed.  ``seed``
    feeds :attr:`rng`, the single source of randomness for jitter,
    workload content, and race exploration.
    """

    def __init__(self, seed=0, obs=None):
        self.now = 0.0
        self._queue = []
        self._seq = 0
        self._nproc = 0
        self.rng = random.Random(seed)
        # Optional observability context (see repro.obs.context):
        # components discover it here via ``of_engine``.  ``None`` keeps
        # every instrumentation site disabled at zero cost.
        self.obs = obs if (obs is None or obs.enabled) else None

    # -- scheduling -------------------------------------------------

    def _schedule(self, delay, callback, value):
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, callback, value))

    def call_at(self, when, callback, value=None):
        """Run ``callback(value)`` at absolute simulated time ``when``."""
        if when < self.now:
            raise SimulationError("cannot schedule in the past")
        self._schedule(when - self.now, callback, value)

    def spawn(self, gen, name=None):
        """Start a new simulated process running generator ``gen``."""
        self._nproc += 1
        if name is None:
            name = "proc-%d" % self._nproc
        process = Process(self, gen, name)
        self._schedule(0.0, process._step, None)
        return process

    def timer(self, delay):
        """Return an event that fires ``delay`` seconds from now."""
        event = Event()
        self._schedule(delay, event.set, None)
        return event

    def wake_at(self, when, event):
        """Fire ``event`` at simulated time ``max(now, when)``.

        The cross-engine clock-reconciliation primitive (Lamport-style
        max): a timestamp carried in from *another* engine's clock may
        sit before or after this engine's ``now``, and a plain
        :meth:`call_at` would refuse the past.  Returns True when
        ``when`` was ahead of this clock (the receiver's clock jumped
        forward -- a reconciliation), False when local time already
        covered it.  Used by the sharded replay core at cross-shard
        completion gates.
        """
        if when > self.now:
            self._schedule(when - self.now, event.set, None)
            return True
        self._schedule(0.0, event.set, None)
        return False

    # -- execution --------------------------------------------------

    def run(self, until=None):
        """Run until the queue drains (or simulated time passes ``until``).

        Returns the final simulated time.
        """
        queue = self._queue
        pop = heapq.heappop
        if until is None:
            if self.obs is not None:
                return self._run_observed()
            # Hot path (every replay and every traced run): no bound
            # check, locals only.
            while queue:
                entry = pop(queue)
                self.now = entry[0]
                entry[2](entry[3])
            return self.now
        while queue:
            when, _seq, callback, value = pop(queue)
            if when > until:
                heapq.heappush(queue, (when, _seq, callback, value))
                self.now = until
                break
            self.now = when
            callback(value)
        return self.now

    def _run_observed(self):
        """The unbounded run loop with engine-level metrics: dispatch
        count, spawned processes, and final simulated time.  A separate
        loop so the disabled path stays branch-free."""
        queue = self._queue
        pop = heapq.heappop
        dispatched = 0
        while queue:
            entry = pop(queue)
            self.now = entry[0]
            entry[2](entry[3])
            dispatched += 1
        metrics = self.obs.metrics
        metrics.counter("sim.events_dispatched").inc(dispatched)
        metrics.gauge("sim.processes_spawned").set(self._nproc)
        metrics.gauge("sim.now_seconds").set(self.now)
        return self.now

    def run_while(self, cond):
        """Run queued events only while ``cond()`` holds.

        The streaming replay driver's stepping primitive: ``cond`` is
        re-evaluated before every dispatch, so the loop stops the
        instant a dispatched callback parks a process on a
        :class:`~repro.sim.events.Hold` (freeze-the-world).  Apart from
        the bound check the dispatch is identical to :meth:`run`, which
        is what keeps a sliced run's heap/sequence state bit-identical
        to an unsliced one.  Returns the final simulated time.
        """
        queue = self._queue
        pop = heapq.heappop
        while queue and cond():
            entry = pop(queue)
            self.now = entry[0]
            entry[2](entry[3])
        return self.now

    def run_process(self, gen, name=None):
        """Convenience: spawn ``gen``, run to completion, return its result."""
        process = self.spawn(gen, name)
        self.run()
        if process.alive:
            raise SimulationError(
                "process %r deadlocked: queue drained while still blocked"
                % (process.name,)
            )
        return process.result
