"""Discrete-event simulation kernel.

Replaces the real multithreaded execution environment of the paper.
Simulated "threads" are generator coroutines driven by :class:`Engine`;
blocking operations are expressed by yielding effects (:class:`Delay`,
:class:`WaitEvent`) or by delegating to other generator-based operations
with ``yield from``.  All timing is virtual, which makes the feedback
loops the paper studies (queue depth, cache hits, scheduler slices)
deterministic and GIL-free.
"""

from repro.sim.engine import Engine, Process
from repro.sim.events import Delay, Event, WaitEvent
from repro.sim.sync import Condition, Mutex, Semaphore

__all__ = [
    "Engine",
    "Process",
    "Delay",
    "Event",
    "WaitEvent",
    "Condition",
    "Mutex",
    "Semaphore",
]
