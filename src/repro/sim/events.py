"""Leaf effects understood by the simulation engine.

A simulated process is a generator.  Whenever it needs to block, it
yields one of the effect objects defined here; the engine resumes the
generator when the effect is satisfied.  Compound blocking operations
(e.g. a VFS ``read`` that may wait on several disk requests) are plain
generators composed with ``yield from``, so the engine only ever sees
these leaf effects.
"""


class Effect(object):
    """Base class for objects a simulated process may yield."""

    __slots__ = ()


class Delay(Effect):
    """Suspend the yielding process for ``seconds`` of simulated time."""

    __slots__ = ("seconds",)

    def __init__(self, seconds):
        if seconds < 0:
            raise ValueError("negative delay: %r" % (seconds,))
        self.seconds = seconds

    def __repr__(self):
        return "Delay(%g)" % (self.seconds,)


class Event(object):
    """A one-shot, broadcast synchronization point.

    Processes block on an event by yielding ``WaitEvent(event)`` (or the
    event itself, as a convenience).  Once :meth:`set` is called every
    current and future waiter proceeds immediately.  Events carry an
    optional ``value`` delivered to waiters, which is how completed I/O
    requests and joined processes return results.
    """

    __slots__ = ("_fired", "value", "_waiters")

    def __init__(self):
        self._fired = False
        self.value = None
        self._waiters = []

    @property
    def is_set(self):
        return self._fired

    def set(self, value=None):
        """Fire the event, waking all waiters.  Idempotent-hostile:
        firing twice is a logic error and raises."""
        if self._fired:
            raise RuntimeError("event already fired")
        self._fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            callback(value)

    def _add_waiter(self, callback):
        if self._fired:
            callback(self.value)
        else:
            self._waiters.append(callback)

    def __repr__(self):
        state = "set" if self._fired else "pending(%d)" % len(self._waiters)
        return "<Event %s>" % state


class WaitEvent(Effect):
    """Block until ``event`` fires; the wait resumes with ``event.value``."""

    __slots__ = ("event",)

    def __init__(self, event):
        self.event = event

    def __repr__(self):
        return "WaitEvent(%r)" % (self.event,)


class Gate(Effect):
    """A reusable single-waiter wakeup latch.

    Scoreboard-style replay cores park each thread on one long-lived
    gate instead of allocating a fresh one-shot :class:`Event` per
    blocking wait: ``yield gate`` parks the process until someone calls
    :meth:`open`; an :meth:`open` with nobody parked is remembered and
    consumed by the next wait.  Unlike :class:`Event`, a gate can be
    waited on and signalled any number of times, and it never builds a
    waiter list -- it is a per-thread doorbell, not a broadcast.
    """

    __slots__ = ("_open", "_waiter")

    def __init__(self):
        self._open = False
        self._waiter = None

    def open(self):
        """Signal the gate: wake the parked process (through the engine
        queue, like an event fire), or remember the signal for the next
        wait."""
        waiter = self._waiter
        if waiter is not None:
            self._waiter = None
            waiter(None)
        else:
            self._open = True

    def _arm(self, callback):
        if self._waiter is not None:
            raise RuntimeError("gate already has a waiter")
        if self._open:
            self._open = False
            callback(None)
        else:
            self._waiter = callback

    def __repr__(self):
        if self._waiter is not None:
            state = "parked"
        elif self._open:
            state = "open"
        else:
            state = "closed"
        return "<Gate %s>" % state


class Hold(Effect):
    """Park the yielding process *outside* the engine queue.

    Streaming (``--follow``) replay freezes the simulated world the
    moment a thread needs an action that has not been ingested yet:
    the thread yields a ``Hold`` and the engine simply records the
    process on it -- no wakeup event is scheduled, so the heap, the
    sequence counter, and simulated time are all left exactly as they
    were.  Once the producer catches up, the driver calls
    :meth:`release`, which resumes the generator *synchronously* --
    reproducing, bit for bit, the inline continuation a batch replay
    would have executed, which is what makes ``--follow`` replay
    byte-identical to batch replay.

    Unlike :class:`Gate`, a hold must only be released while the
    engine is not stepping (between :meth:`Engine.run_while` slices).
    """

    __slots__ = ("_process",)

    def __init__(self):
        self._process = None

    @property
    def held(self):
        return self._process is not None

    def release(self):
        """Resume the parked process synchronously (reentrant with
        respect to nothing: call only while the engine is idle)."""
        process, self._process = self._process, None
        if process is None:
            raise RuntimeError("hold has no parked process")
        process._step(None)

    def __repr__(self):
        return "<Hold %s>" % ("held" if self._process is not None else "idle")


def wait_all(events):
    """Generator helper: wait for every event in ``events`` (any order)."""
    for event in events:
        if not event.is_set:
            yield WaitEvent(event)
