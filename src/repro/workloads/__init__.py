"""Workloads: the applications that get traced and replayed.

- :mod:`repro.workloads.base` -- the Application abstraction
- :mod:`repro.workloads.microbench` -- the section 5.2.1 feedback-loop
  microbenchmarks (workload parallelism, cache-sensitive reader,
  competing sequential readers)
- :mod:`repro.workloads.magritte` -- 34 synthetic Apple-desktop-style
  traces forming the Magritte suite
"""

from repro.workloads.base import Application
from repro.workloads.microbench import (
    CacheSensitiveReaders,
    CompetingSequentialReaders,
    ParallelRandomReaders,
)

__all__ = [
    "Application",
    "ParallelRandomReaders",
    "CacheSensitiveReaders",
    "CompetingSequentialReaders",
]
