"""The Magritte application engine.

Each application is generated from a :class:`Profile`: a seeded planner
draws *activities* (library scans, plist churn, media streaming,
database commits, atomic saves, descriptor handoffs, xattr probes...)
according to the profile's mix and distributes them across the
profile's threads.  Cross-thread activities synchronize through
simulation events -- internal synchronization that is invisible to the
trace, exactly the hazard ROOT infers around.
"""

import random
import zlib

from repro.sim.events import Event, WaitEvent
from repro.sim.sync import Mutex
from repro.workloads.base import Application, must

#: Approximate system calls issued per activity, used by the planner to
#: hit the profile's event target.
ACTIVITY_COST = {
    "library_scan": 20,
    "plist_churn": 14,
    "media_read": 22,
    "db_commit": 7,
    "thumb_write": 11,
    "handoff_chain": 11,
    "tmp_save": 9,
    "exchange_save": 11,
    "xattr_probe": 5,
    "dir_list": 5,
    "shm_dance": 5,
    "aio_burst": 9,
}


class MagritteApp(Application):
    roots = ("/data",)
    #: iBench-style traces lack xattr initialization info (section 5.1)
    snapshot_xattrs = False

    def __init__(self, profile):
        self.profile = profile
        self.name = profile.name
        self.base = "/data/" + profile.name

    # ------------------------------------------------------------------
    # initial library state
    # ------------------------------------------------------------------

    def setup(self, fs):
        profile = self.profile
        rng = random.Random(zlib.crc32(profile.name.encode()) & 0xFFFF)
        base = self.base
        for sub in ("Library", "Library/Plists", "Thumbs", "Media", "Documents"):
            fs.makedirs_now("%s/%s" % (base, sub))
        lo, hi = profile.file_kb
        for index in range(profile.nfiles):
            node = fs.create_file_now(
                "%s/Library/item%04d" % (base, index),
                size=rng.randint(lo, hi) * 1024,
            )
            node.xattrs["com.apple.FinderInfo"] = 32
        for index in range(max(1, profile.artc_errors)):
            node = fs.create_file_now(
                "%s/Library/special%02d" % (base, index), size=8192
            )
            # The xattr the original app reads successfully but whose
            # initialization info the snapshot will not carry.
            node.xattrs["com.apple.metadata:kMDItemWhereFroms"] = 64
        for index in range(profile.media_files):
            fs.create_file_now(
                "%s/Media/clip%02d.mov" % (base, index),
                size=profile.media_mb << 20,
            )
        for index in range(12):
            fs.create_file_now(
                "%s/Library/Plists/pref%02d.plist" % (base, index),
                size=rng.randint(1, 8) * 1024,
            )
        fs.create_file_now("%s/Library/Database.db" % base, size=2 << 20)
        fs.create_file_now("%s/Documents/current.doc" % base, size=512 * 1024)

    # ------------------------------------------------------------------
    # activities
    # ------------------------------------------------------------------

    def _act_library_scan(self, osapi, tid, rng, ctx):
        base = self.base
        for _ in range(6):
            index = rng.randrange(self.profile.nfiles)
            path = "%s/Library/item%04d" % (base, index)
            yield from osapi.call(tid, "stat", path=path)
            yield from osapi.call(tid, "getattrlist", path=path)
        # Probing paths that do not exist (.DS_Store and friends).
        for name in (".DS_Store", "Library/.localized", "Library/Cache.db"):
            yield from osapi.call(tid, "stat", path="%s/%s" % (base, name))
        yield from osapi.call(tid, "access", path=base, mode=0)

    def _act_plist_churn(self, osapi, tid, rng, ctx):
        base = self.base
        index = rng.randrange(12)
        path = "%s/Library/Plists/pref%02d.plist" % (base, index)
        fd, err = yield from osapi.call(tid, "open", path=path, flags="O_RDONLY")
        if err is None:
            yield from osapi.call(tid, "fstat", fd=fd)
            yield from osapi.call(tid, "read", fd=fd, nbytes=4096)
            yield from osapi.call(tid, "close", fd=fd)
        # Atomic rewrite of the same plist (name reuse).
        # Atomic rename without fsync, as CFPreferences-style plist
        # rewrites actually behave.
        tmp = path + ".tmp"
        fd, err = yield from osapi.call(
            tid, "open", path=tmp, flags="O_WRONLY|O_CREAT|O_EXCL", mode=0o644
        )
        if err is None:
            yield from osapi.call(tid, "write", fd=fd, nbytes=2048)
            yield from osapi.call(tid, "close", fd=fd)
            yield from osapi.call(tid, "rename", old=tmp, new=path)

    def _act_media_read(self, osapi, tid, rng, ctx):
        base = self.base
        index = rng.randrange(self.profile.media_files)
        path = "%s/Media/clip%02d.mov" % (base, index)
        fd, err = yield from osapi.call(tid, "open", path=path, flags="O_RDONLY")
        if err is not None:
            return
        yield from osapi.call(tid, "fstat", fd=fd)
        for _ in range(16):
            yield from osapi.call(tid, "read", fd=fd, nbytes=262144)
        yield from osapi.call(tid, "close", fd=fd)

    def _act_db_commit(self, osapi, tid, rng, ctx):
        if not ctx["db_ready"].is_set:
            yield WaitEvent(ctx["db_ready"])
        fd = ctx["db_fd"]
        offset = rng.randrange(500) * 4096
        yield from osapi.call(tid, "pwrite", fd=fd, nbytes=4096, offset=offset)
        yield from osapi.call(tid, "pwrite", fd=fd, nbytes=4096, offset=offset + 4096)
        yield from osapi.call(tid, "fsync", fd=fd)

    def _act_thumb_write(self, osapi, tid, rng, ctx):
        path = "%s/Thumbs/thumb%05d.jpg" % (self.base, ctx["thumb_seq"])
        ctx["thumb_seq"] += 1
        fd, err = yield from osapi.call(
            tid, "open", path=path, flags="O_WRONLY|O_CREAT", mode=0o644
        )
        if err is not None:
            return
        for _ in range(3):
            yield from osapi.call(tid, "write", fd=fd, nbytes=16384)
        yield from osapi.call(tid, "fchmod", fd=fd, mode=0o644)
        yield from osapi.call(tid, "close", fd=fd)
        yield from osapi.call(tid, "setxattr", path=path, xname="com.apple.quarantine", size=16)

    def _act_tmp_save(self, osapi, tid, rng, ctx):
        doc = "%s/Documents/current.doc" % self.base
        tmp = doc + ".sb-save"
        fd, err = yield from osapi.call(
            tid, "open", path=tmp, flags="O_WRONLY|O_CREAT|O_EXCL", mode=0o644
        )
        if err is not None:
            yield from osapi.call(tid, "stat", path=tmp)
            return
        for _ in range(4):
            yield from osapi.call(tid, "write", fd=fd, nbytes=65536)
        yield from osapi.call(tid, "fsync", fd=fd)
        yield from osapi.call(tid, "close", fd=fd)
        yield from osapi.call(tid, "rename", old=tmp, new=doc)

    def _act_exchange_save(self, osapi, tid, rng, ctx):
        # Saves are serialized by an application-internal lock (as real
        # document apps do); the lock is invisible to the trace, so the
        # dependency must be inferred from the reused temp-file name.
        yield from ctx["save_lock"].acquire()
        try:
            doc = "%s/Documents/current.doc" % self.base
            tmp = doc + ".exch-save"
            fd, err = yield from osapi.call(
                tid, "open", path=tmp, flags="O_WRONLY|O_CREAT", mode=0o644
            )
            if err is not None:
                return
            for _ in range(4):
                yield from osapi.call(tid, "write", fd=fd, nbytes=65536)
            yield from osapi.call(tid, "fsync", fd=fd)
            yield from osapi.call(tid, "close", fd=fd)
            yield from osapi.call(tid, "exchangedata", path1=doc, path2=tmp)
            yield from osapi.call(tid, "unlink", path=tmp)
        finally:
            ctx["save_lock"].release()

    def _act_xattr_probe(self, osapi, tid, rng, ctx):
        index = rng.randrange(self.profile.nfiles)
        path = "%s/Library/item%04d" % (self.base, index)
        yield from osapi.call(tid, "listxattr", path=path)
        # Attributes the file does not have: fails in trace and replay.
        yield from osapi.call(
            tid, "getxattr", path=path, xname="com.apple.ResourceFork"
        )
        yield from osapi.call(
            tid, "setxattr", path=path, xname="com.apple.lastuseddate", size=16
        )

    def _act_secret_xattr_read(self, osapi, tid, rng, ctx):
        """One xattr read that succeeds in the trace but cannot succeed
        at replay (the snapshot lacks xattr contents)."""
        index = ctx["secret_seq"] % max(1, self.profile.artc_errors)
        ctx["secret_seq"] += 1
        path = "%s/Library/special%02d" % (self.base, index)
        yield from osapi.call(
            tid,
            "getxattr",
            path=path,
            xname="com.apple.metadata:kMDItemWhereFroms",
        )

    def _act_dir_list(self, osapi, tid, rng, ctx):
        sub = rng.choice(("Library", "Thumbs", "Media", "Library/Plists"))
        path = "%s/%s" % (self.base, sub)
        fd, err = yield from osapi.call(
            tid, "open", path=path, flags="O_RDONLY|O_DIRECTORY"
        )
        if err is None:
            yield from osapi.call(tid, "getdents", fd=fd)
            yield from osapi.call(tid, "close", fd=fd)

    def _act_shm_dance(self, osapi, tid, rng, ctx):
        name = "%s-shm%d" % (self.profile.family, rng.randrange(4))
        fd, err = yield from osapi.call(
            tid, "shm_open", name=name, flags="O_RDWR|O_CREAT", mode=0o600
        )
        if err is None:
            yield from osapi.call(tid, "write", fd=fd, nbytes=4096)
            yield from osapi.call(tid, "close", fd=fd)

    def _act_aio_burst(self, osapi, tid, rng, ctx):
        index = rng.randrange(self.profile.media_files)
        path = "%s/Media/clip%02d.mov" % (self.base, index)
        fd, err = yield from osapi.call(tid, "open", path=path, flags="O_RDONLY")
        if err is not None:
            return
        cbs = []
        for slot in range(3):
            cb = "aio%d" % (ctx["aio_seq"] + slot)
            cbs.append(cb)
            yield from osapi.call(
                tid, "aio_read", aiocb=cb, fd=fd, nbytes=65536,
                offset=slot * 1048576,
            )
        ctx["aio_seq"] += 3
        yield from osapi.call(tid, "aio_suspend", aiocbs=cbs)
        for cb in cbs:
            yield from osapi.call(tid, "aio_return", aiocb=cb)
        yield from osapi.call(tid, "close", fd=fd)

    # -- the cross-thread handoff (open in A, write in B, close in C) ---

    def _handoff_parts(self, osapi, rng, ctx, tids):
        path = "%s/Thumbs/handoff%05d" % (self.base, ctx["handoff_seq"])
        ctx["handoff_seq"] += 1
        slot = {"fd": None, "opened": Event(), "written": Event()}

        def opener(tid):
            fd, err = yield from osapi.call(
                tid, "open", path=path, flags="O_WRONLY|O_CREAT", mode=0o644
            )
            slot["fd"] = fd if err is None else None
            slot["opened"].set()

        def writer(tid):
            if not slot["opened"].is_set:
                yield WaitEvent(slot["opened"])
            if slot["fd"] is not None:
                for _ in range(3):
                    yield from osapi.call(tid, "write", fd=slot["fd"], nbytes=8192)
            slot["written"].set()

        def closer(tid):
            if not slot["written"].is_set:
                yield WaitEvent(slot["written"])
            if slot["fd"] is not None:
                yield from osapi.call(tid, "fsync", fd=slot["fd"])
                yield from osapi.call(tid, "close", fd=slot["fd"])

        return [(tids[0], opener), (tids[1], writer), (tids[2], closer)]

    # ------------------------------------------------------------------
    # planning and execution
    # ------------------------------------------------------------------

    def _open_database(self, osapi, ctx):
        def act(tid):
            fd = must(
                (
                    yield from osapi.call(
                        tid,
                        "open",
                        path="%s/Library/Database.db" % self.base,
                        flags="O_RDWR",
                    )
                )
            )
            ctx["db_fd"] = fd
            ctx["db_ready"].set()

        return act

    def main(self, osapi):
        profile = self.profile
        rng = random.Random(zlib.crc32(profile.name.encode()))
        ctx = {
            "db_fd": None,
            "db_ready": Event(),
            "thumb_seq": 0,
            "handoff_seq": 0,
            "secret_seq": 0,
            "aio_seq": 0,
            "save_lock": Mutex(),
        }
        nthreads = profile.nthreads
        plan = [[] for _ in range(nthreads)]
        plan[0].append((self._open_database(osapi, ctx), rng.random()))

        kinds = sorted(profile.mix)
        weights = [profile.mix[k] for k in kinds]
        # Activities issue fewer calls than their planning estimates on
        # average (error paths return early); 1.45 calibrates actual
        # trace sizes to the profile's event target.
        budget = int(profile.events * 1.45)
        events = ACTIVITY_COST["db_commit"]

        def assign(thread_index, factory):
            plan[thread_index].append((factory, rng.random()))

        # Exactly artc_errors secret-xattr reads, spread across threads.
        for _ in range(profile.artc_errors):
            tid_index = rng.randrange(nthreads)
            assign(tid_index, self._bind("_act_secret_xattr_read", osapi, rng, ctx))
            events += ACTIVITY_COST["xattr_probe"]

        while events < budget:
            kind = rng.choices(kinds, weights)[0]
            events += ACTIVITY_COST[kind]
            if kind == "handoff_chain":
                if nthreads < 3:
                    continue
                tids = rng.sample(range(nthreads), 3)
                for thread_index, body in self._handoff_parts(
                    osapi, rng, ctx, [t + 1 for t in tids]
                ):
                    plan[thread_index - 1].append((_fixed(body), rng.random()))
            else:
                assign(rng.randrange(nthreads), self._bind("_act_" + kind, osapi, rng, ctx))

        bodies = []
        for thread_index in range(nthreads):
            bodies.append(self._worker(thread_index + 1, plan[thread_index], ctx, osapi))
        return (yield from self.spawn_threads(osapi, bodies))

    def _bind(self, method_name, osapi, rng, ctx):
        method = getattr(self, method_name)
        act_rng = random.Random(rng.getrandbits(32))

        def factory(tid):
            return method(osapi, tid, act_rng, ctx)

        return factory

    def _worker(self, tid, acts, ctx, osapi):
        for factory, _jitter in acts:
            yield from factory(tid)
        # The database stays open until the last thread is done; thread
        # 1 closes it at the end.
        if tid == 1 and ctx["db_fd"] is not None:
            yield from osapi.call(tid, "close", fd=ctx["db_fd"])

    def __repr__(self):
        return "<MagritteApp %s>" % self.name


def _fixed(body):
    def factory(tid):
        return body(tid)

    return factory
