"""Suite assembly helpers."""

from repro.workloads.magritte.app import MagritteApp
from repro.workloads.magritte.profiles import PROFILES

#: Table 3 display order.
_ORDER = [
    "iphoto_start400",
    "iphoto_import400",
    "iphoto_duplicate400",
    "iphoto_edit400",
    "iphoto_delete400",
    "iphoto_view400",
    "itunes_startsmall1",
    "itunes_importsmall1",
    "itunes_importmovie1",
    "itunes_album1",
    "itunes_movie1",
    "imovie_start1",
    "imovie_import1",
    "imovie_add1",
    "imovie_export1",
    "pages_start15",
    "pages_create15",
    "pages_createphoto15",
    "pages_open15",
    "pages_pdf15",
    "pages_pdfphoto15",
    "pages_doc15",
    "pages_docphoto15",
    "numbers_start5",
    "numbers_createcol5",
    "numbers_open5",
    "numbers_xls5",
    "keynote_start20",
    "keynote_create20",
    "keynote_createphoto20",
    "keynote_play20",
    "keynote_playphoto20",
    "keynote_ppt20",
    "keynote_pptphoto20",
]


def suite_names():
    """All 34 trace names in Table 3 order."""
    return list(_ORDER)


def build_suite(names=None):
    """Instantiate Magritte applications (all, or the given subset)."""
    selected = _ORDER if names is None else list(names)
    return {name: MagritteApp(PROFILES[name]) for name in selected}
