"""The 34 Magritte application profiles (Table 3).

``events`` targets are the paper's trace sizes scaled down ~25x (large
traces capped) so the whole suite traces and replays in reasonable
time; relative ordering between applications is preserved.  ``mix``
weights choose activities (see :mod:`repro.workloads.magritte.app`).
``artc_errors`` is the number of extended-attribute reads whose
initialization info the snapshot deliberately lacks -- the paper's
explanation for ARTC's residual failures, reproduced mechanically.
"""


class Profile(object):
    __slots__ = (
        "name",
        "family",
        "events",
        "nthreads",
        "mix",
        "nfiles",
        "file_kb",
        "artc_errors",
        "media_files",
        "media_mb",
    )

    def __init__(
        self,
        name,
        family,
        events,
        nthreads,
        mix,
        nfiles=80,
        file_kb=(4, 64),
        artc_errors=0,
        media_files=4,
        media_mb=8,
    ):
        self.name = name
        self.family = family
        self.events = events
        self.nthreads = nthreads
        self.mix = mix
        self.nfiles = nfiles
        self.file_kb = file_kb
        self.artc_errors = artc_errors
        self.media_files = media_files
        self.media_mb = media_mb

    def __repr__(self):
        return "<Profile %s (%d events, %d threads)>" % (
            self.name,
            self.events,
            self.nthreads,
        )


# Activity-mix shorthands per application family.
_IPHOTO = {
    "library_scan": 2,
    "db_commit": 5,
    "thumb_write": 4,
    "handoff_chain": 3,
    "tmp_save": 2,
    "xattr_probe": 2,
    "media_read": 1,
    "plist_churn": 2,
}
_ITUNES = {
    "library_scan": 2,
    "db_commit": 4,
    "media_read": 3,
    "plist_churn": 2,
    "handoff_chain": 2,
    "tmp_save": 1,
    "dir_list": 1,
}
_IMOVIE = {
    "media_read": 4,
    "thumb_write": 3,
    "handoff_chain": 2,
    "db_commit": 2,
    "library_scan": 1,
    "tmp_save": 1,
    "aio_burst": 1,
    "xattr_probe": 1,
}
_IWORK_LOAD = {
    "library_scan": 3,
    "plist_churn": 3,
    "dir_list": 2,
    "media_read": 1,
    "xattr_probe": 1,
    "shm_dance": 1,
}
_IWORK_SAVE = {
    "library_scan": 2,
    "plist_churn": 2,
    "tmp_save": 3,
    "exchange_save": 2,
    "thumb_write": 2,
    "handoff_chain": 2,
    "xattr_probe": 1,
}
_IWORK_PHOTO = {
    "library_scan": 2,
    "plist_churn": 2,
    "tmp_save": 2,
    "thumb_write": 3,
    "media_read": 3,
    "handoff_chain": 2,
    "xattr_probe": 1,
}
# Numbers and Keynote are dominated by reads and stat-family calls on
# disk (Figure 10): document loads stream assets, saves are rarer.
_SHEETS_LOAD = {
    "library_scan": 4,
    "plist_churn": 2,
    "dir_list": 2,
    "media_read": 5,
    "xattr_probe": 1,
    "shm_dance": 1,
}
_SHEETS_SAVE = {
    "library_scan": 3,
    "plist_churn": 2,
    "dir_list": 1,
    "media_read": 5,
    "tmp_save": 1,
    "thumb_write": 1,
    "handoff_chain": 1,
    "xattr_probe": 1,
}


def _p(name, family, events, nthreads, mix, **kwargs):
    return Profile(name, family, events, nthreads, dict(mix), **kwargs)


PROFILES = {
    profile.name: profile
    for profile in [
        # ---- iPhoto (fsync-dominated photo library) -------------------
        _p("iphoto_start400", "iphoto", 1400, 8, _IPHOTO, nfiles=400, artc_errors=2),
        _p("iphoto_import400", "iphoto", 8000, 10, _IPHOTO, nfiles=400, artc_errors=7),
        _p("iphoto_duplicate400", "iphoto", 4000, 8, _IPHOTO, nfiles=400, artc_errors=2),
        _p("iphoto_edit400", "iphoto", 8000, 10, _IPHOTO, nfiles=400, artc_errors=2),
        _p("iphoto_delete400", "iphoto", 4000, 8, _IPHOTO, nfiles=400, artc_errors=2),
        _p("iphoto_view400", "iphoto", 3000, 8, _IPHOTO, nfiles=400, artc_errors=2),
        # ---- iTunes (library database + media streaming) --------------
        _p("itunes_startsmall1", "itunes", 600, 5, _ITUNES),
        _p("itunes_importsmall1", "itunes", 800, 6, _ITUNES),
        _p("itunes_importmovie1", "itunes", 600, 5, _ITUNES, media_mb=24),
        _p("itunes_album1", "itunes", 800, 6, _ITUNES),
        _p("itunes_movie1", "itunes", 800, 6, _ITUNES, media_mb=24),
        # ---- iMovie (media-heavy, some AIO) ----------------------------
        _p("imovie_start1", "imovie", 1000, 6, _IMOVIE, artc_errors=2),
        _p("imovie_import1", "imovie", 1400, 7, _IMOVIE, media_mb=24, artc_errors=2),
        _p("imovie_add1", "imovie", 1000, 6, _IMOVIE, artc_errors=3),
        _p("imovie_export1", "imovie", 1600, 7, _IMOVIE, media_mb=24, artc_errors=5),
        # ---- Pages -----------------------------------------------------
        _p("pages_start15", "pages", 800, 5, _IWORK_LOAD, artc_errors=4),
        _p("pages_create15", "pages", 800, 5, _IWORK_SAVE, artc_errors=4),
        _p("pages_createphoto15", "pages", 1800, 6, _IWORK_PHOTO, artc_errors=4),
        _p("pages_open15", "pages", 800, 5, _IWORK_LOAD, artc_errors=4),
        _p("pages_pdf15", "pages", 800, 5, _IWORK_SAVE, artc_errors=4),
        _p("pages_pdfphoto15", "pages", 1800, 6, _IWORK_PHOTO, artc_errors=4),
        _p("pages_doc15", "pages", 800, 5, _IWORK_SAVE, artc_errors=4),
        _p("pages_docphoto15", "pages", 3000, 6, _IWORK_PHOTO, artc_errors=4),
        # ---- Numbers ---------------------------------------------------
        _p("numbers_start5", "numbers", 800, 5, _SHEETS_LOAD),
        _p("numbers_createcol5", "numbers", 800, 5, _SHEETS_SAVE),
        _p("numbers_open5", "numbers", 800, 5, _SHEETS_LOAD),
        _p("numbers_xls5", "numbers", 800, 5, _SHEETS_SAVE),
        # ---- Keynote ---------------------------------------------------
        _p("keynote_start20", "keynote", 900, 5, _SHEETS_LOAD),
        _p("keynote_create20", "keynote", 1400, 6, _SHEETS_SAVE),
        _p("keynote_createphoto20", "keynote", 1400, 6, _SHEETS_SAVE, artc_errors=2),
        _p("keynote_play20", "keynote", 1200, 6, _SHEETS_LOAD),
        _p("keynote_playphoto20", "keynote", 1200, 6, _SHEETS_LOAD),
        _p("keynote_ppt20", "keynote", 1700, 6, _SHEETS_SAVE),
        _p("keynote_pptphoto20", "keynote", 2500, 6, _SHEETS_SAVE),
    ]
}

assert len(PROFILES) == 34, "the Magritte suite has 34 traces (Table 3)"
