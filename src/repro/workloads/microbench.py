"""The section 5.2.1 microbenchmark programs.

Each one is "a simple program" constructing a specific feedback loop
between workload and storage stack:

- :class:`ParallelRandomReaders` (Figures 5a, 5b): N threads, each
  reading random 4 KB blocks from its own large file -- queue depth
  grows with N, letting the scheduler/disk shorten seeks.
- :class:`CacheSensitiveReaders` (Figure 5c): thread 1 sequentially
  reads its whole file before random-reading it; thread 2 random-reads
  its own file throughout.  Whether thread 1's random reads hit cache
  depends on the target's memory size.
- :class:`CompetingSequentialReaders` (Figures 5d, 6): two threads
  stream separate large files with 4 KB reads; throughput depends on
  the CFQ ``slice_sync`` anticipation window.
"""

import random

from repro.workloads.base import Application, must


class ParallelRandomReaders(Application):
    """N threads x R random 4 KB preads from per-thread files."""

    def __init__(self, nthreads=2, reads_per_thread=1000, file_bytes=1 << 30, seed=11):
        self.nthreads = nthreads
        self.reads_per_thread = reads_per_thread
        self.file_bytes = file_bytes
        self.seed = seed
        self.name = "randreads%d" % nthreads

    def setup(self, fs):
        fs.makedirs_now("/data")
        for index in range(1, self.nthreads + 1):
            fs.create_file_now("/data/reader%d" % index, size=self.file_bytes)

    def _reader(self, osapi, tid):
        path = "/data/reader%d" % tid
        fd = must((yield from osapi.call(tid, "open", path=path, flags="O_RDONLY")))
        rng = random.Random(self.seed * 1000 + tid)
        nblocks = self.file_bytes // 4096
        for _ in range(self.reads_per_thread):
            offset = rng.randrange(nblocks) * 4096
            yield from osapi.call(tid, "pread", fd=fd, nbytes=4096, offset=offset)
        must((yield from osapi.call(tid, "close", fd=fd)))

    def main(self, osapi):
        bodies = [
            self._reader(osapi, tid) for tid in range(1, self.nthreads + 1)
        ]
        return (yield from self.spawn_threads(osapi, bodies))


class CacheSensitiveReaders(Application):
    """Thread 1 scans its file then random-reads it; thread 2
    random-reads its own file the whole time."""

    def __init__(self, file_bytes=1 << 30, random_reads=1000, seed=23):
        self.file_bytes = file_bytes
        self.random_reads = random_reads
        self.seed = seed
        self.name = "cachereaders"

    def setup(self, fs):
        fs.makedirs_now("/data")
        fs.create_file_now("/data/scan", size=self.file_bytes)
        fs.create_file_now("/data/other", size=self.file_bytes)

    def _scanner(self, osapi, tid=1):
        fd = must(
            (yield from osapi.call(tid, "open", path="/data/scan", flags="O_RDONLY"))
        )
        chunk = 1 << 20
        for offset in range(0, self.file_bytes, chunk):
            yield from osapi.call(tid, "pread", fd=fd, nbytes=chunk, offset=offset)
        rng = random.Random(self.seed)
        nblocks = self.file_bytes // 4096
        for _ in range(self.random_reads):
            offset = rng.randrange(nblocks) * 4096
            yield from osapi.call(tid, "pread", fd=fd, nbytes=4096, offset=offset)
        must((yield from osapi.call(tid, "close", fd=fd)))

    def _random_reader(self, osapi, tid=2):
        fd = must(
            (yield from osapi.call(tid, "open", path="/data/other", flags="O_RDONLY"))
        )
        rng = random.Random(self.seed + 1)
        nblocks = self.file_bytes // 4096
        for _ in range(self.random_reads):
            offset = rng.randrange(nblocks) * 4096
            yield from osapi.call(tid, "pread", fd=fd, nbytes=4096, offset=offset)
        must((yield from osapi.call(tid, "close", fd=fd)))

    def main(self, osapi):
        return (
            yield from self.spawn_threads(
                osapi, [self._scanner(osapi, 1), self._random_reader(osapi, 2)]
            )
        )


class CompetingSequentialReaders(Application):
    """Two threads issuing sequential 4 KB reads from separate files."""

    def __init__(self, nthreads=2, reads_per_thread=2000, file_bytes=256 << 20, seed=5):
        self.nthreads = nthreads
        self.reads_per_thread = reads_per_thread
        self.file_bytes = file_bytes
        self.seed = seed
        self.name = "seqreaders%d" % nthreads

    def setup(self, fs):
        fs.makedirs_now("/data")
        for index in range(1, self.nthreads + 1):
            fs.create_file_now("/data/stream%d" % index, size=self.file_bytes)

    def _streamer(self, osapi, tid):
        path = "/data/stream%d" % tid
        fd = must((yield from osapi.call(tid, "open", path=path, flags="O_RDONLY")))
        for _ in range(self.reads_per_thread):
            yield from osapi.call(tid, "read", fd=fd, nbytes=4096)
        must((yield from osapi.call(tid, "close", fd=fd)))

    def main(self, osapi):
        bodies = [
            self._streamer(osapi, tid) for tid in range(1, self.nthreads + 1)
        ]
        return (yield from self.spawn_threads(osapi, bodies))

    @property
    def total_bytes(self):
        return self.nthreads * self.reads_per_thread * 4096
