"""The Application abstraction.

An application owns two things: ``setup`` (the pre-trace file-tree
state, applied instantly before tracing begins) and ``main`` (a
generator that spawns the app's simulated threads through the traced
syscall interface and returns when they all finish).

Applications may synchronize internally with the simulation's own
primitives (conditions, events); that synchronization is invisible to
the trace, exactly like the pthread locking a passively-collected
syscall trace cannot see (paper section 2.1).
"""

from repro.sim.events import wait_all


class Application(object):
    name = "app"
    #: snapshot roots: which subtrees initialization must restore
    roots = ("/data",)

    def setup(self, fs):
        """Create the initial file tree (instant helpers)."""
        fs.makedirs_now("/data")

    def main(self, osapi):
        """Run the application; a generator driven by the engine."""
        raise NotImplementedError

    # -- helpers for subclasses ----------------------------------------

    def spawn_threads(self, osapi, bodies):
        """Spawn one simulated thread per generator in ``bodies`` and
        wait for all of them; returns the elapsed time."""
        engine = osapi.fs.engine
        start = engine.now
        processes = [
            engine.spawn(body, name="%s-T%d" % (self.name, index + 1))
            for index, body in enumerate(bodies)
        ]
        yield from wait_all([p.done for p in processes])
        return engine.now - start

    def __repr__(self):
        return "<Application %s>" % self.name


def must(result):
    """Unwrap a (ret, err) syscall result, asserting success."""
    ret, err = result
    if err is not None:
        raise AssertionError("workload syscall failed: %s" % err)
    return ret
