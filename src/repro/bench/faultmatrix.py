"""Fault-matrix experiment: replay robustness vs. injected fault rate.

The robustness analogue of the paper's accuracy matrix: sweep a seeded
fault plan's intensity across replay modes and measure how semantics
(mismatch count) and timing (slowdown vs. the fault-free run) degrade
-- and how much of that degradation the hardened replayer
(:mod:`repro.faults.harden`) claws back via transient-EIO retry and
graceful degradation.

The plan shape is fixed (seeded read-EIO plus latency spikes, scaled
by ``rate``) so cells differ only in intensity, mode, and hardening.
Stalls are deliberately excluded: a stalled classic replayer never
terminates, which is a property for the watchdog tests, not a sweep.
"""

from repro.artc.replayer import ReplayConfig
from repro.core.modes import ReplayMode
from repro.faults.plan import FaultPlan, FaultRule
from repro.faults.recovery import replay_with_faults

#: Default intensity sweep: per-request firing probability scale.
RATES = (0.0, 0.02, 0.05, 0.10)


def fault_plan(rate, seed=0):
    """The sweep's plan at one intensity; None when rate is zero (so
    the zero cell is exactly the plain replayer)."""
    if rate <= 0:
        return None
    return FaultPlan(
        [
            FaultRule("eio", rate=rate * 0.3, op="read"),
            FaultRule("latency", rate=rate, factor=10.0),
        ],
        seed=seed,
    )


def fault_matrix(
    benchmark,
    platform,
    rates=RATES,
    modes=ReplayMode.ALL,
    seed=0,
    harden=None,
):
    """Sweep ``rates`` x ``modes``; returns one row dict per cell.

    Each row carries ``mode``, ``rate``, ``elapsed``, ``failures``,
    ``faults`` (injected events), ``retries``/``retries_recovered``/
    ``skipped`` (hardening counters), and ``slowdown`` relative to the
    same mode's zero-rate cell.
    """
    rows = []
    baseline = {}
    for mode in modes:
        for rate in rates:
            config = ReplayConfig(mode=mode, harden=harden)
            result = replay_with_faults(
                benchmark,
                platform,
                config=config,
                plan=fault_plan(rate, seed=seed),
                seed=seed,
            )
            report = result.report
            if rate == 0 or mode not in baseline:
                baseline.setdefault(mode, report.elapsed)
            base = baseline[mode]
            rows.append(
                {
                    "mode": mode,
                    "rate": rate,
                    "elapsed": report.elapsed,
                    "failures": report.failures,
                    "faults": len(result.fault_events),
                    "fault_counts": dict(result.fault_counts),
                    "retries": report.retries,
                    "retries_recovered": report.retries_recovered,
                    "skipped": report.skipped,
                    "slowdown": (report.elapsed / base) if base > 0 else 1.0,
                }
            )
    return rows
