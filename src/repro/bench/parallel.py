"""Parallel experiment harness with an on-disk result cache.

The paper's evaluation replays many independent source/target cells
(Figure 7 alone is a 7x7 matrix; Table 3 and Figure 10 drive 34
Magritte traces).  Every cell is a pure function of its inputs -- the
simulator is deterministic for a given seed -- so cells can fan out
across worker processes and their results can be memoized on disk.

Usage::

    cells = [Cell(fn, kwargs) for kwargs in ...]
    results = run_cells(cells, workers=4, cache_dir=".cache")
    values = [r.value for r in results]   # submission order

``fn`` must be a module-level callable (picklable by reference) whose
keyword arguments and return value are JSON-serializable; that is also
what makes a cell hashable for the cache.  Results always come back in
submission order, whatever order workers finish in.

Caching: each completed cell is written to ``<cache_dir>/<key>.json``
via a temp file + ``os.replace`` (atomic on POSIX), keyed by a SHA-256
content hash of the callable's qualified name and its arguments --
which is why apps, platforms, modes, seeds, and rulesets must all be
*in* the arguments, not baked into closures.  A second run of the same
bench loads finished cells instead of recomputing them.  Clear the
cache by deleting the directory.
"""

import hashlib
import json
import os
import tempfile
import time

try:
    import multiprocessing
except ImportError:  # pragma: no cover - CPython always has it
    multiprocessing = None


#: Salt folded into every cell key (and into artifact keys, see
#: :mod:`repro.bench.artifacts`).  Bump it whenever trace, compile, or
#: replay semantics change in a way that invalidates cached results --
#: otherwise a stale cache silently serves numbers the current code
#: would not produce.  2: scoreboard replay core + persistent
#: compiled-benchmark artifacts.
BENCH_FORMAT_VERSION = 2


def default_cache_dir():
    """``$ARTC_CACHE_DIR`` or ``~/.cache/artc-bench``."""
    env = os.environ.get("ARTC_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "artc-bench")


def _qualified_name(fn):
    return "%s:%s" % (getattr(fn, "__module__", "?"), fn.__qualname__)


def cell_key(fn, kwargs):
    """Content hash identifying one cell: format version + callable +
    arguments."""
    payload = json.dumps(
        [BENCH_FORMAT_VERSION, _qualified_name(fn), kwargs],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def derive_seed(key):
    """A deterministic 31-bit seed from a cell key (used when the
    caller asks for ``auto_seed``)."""
    return int(key[:8], 16) & 0x7FFFFFFF


class Cell(object):
    """One schedulable unit: ``fn(**kwargs)``.

    - ``auto_seed``: inject ``kwargs['seed'] = derive_seed(...)`` from
      the content hash of the *other* arguments, so every cell gets a
      distinct but reproducible seed.
    - ``cache=False``: always recompute (e.g. when the result depends
      on files the arguments do not capture).
    """

    __slots__ = ("fn", "kwargs", "cache", "key")

    def __init__(self, fn, kwargs=None, auto_seed=False, cache=True):
        self.fn = fn
        self.kwargs = dict(kwargs or {})
        self.cache = cache
        if auto_seed and "seed" not in self.kwargs:
            self.kwargs["seed"] = derive_seed(cell_key(fn, self.kwargs))
        self.key = cell_key(fn, self.kwargs)


class CellResult(object):
    """A completed cell: ``value`` plus provenance."""

    __slots__ = ("index", "key", "value", "cached", "seconds")

    def __init__(self, index, key, value, cached, seconds):
        self.index = index
        self.key = key
        self.value = value
        self.cached = cached
        self.seconds = seconds

    def __repr__(self):
        return "<CellResult #%d %s %.2fs%s>" % (
            self.index, self.key[:10], self.seconds,
            " (cached)" if self.cached else "",
        )


def _invoke(payload):
    """Worker body: run one cell, timing it.  Module-level so it is
    picklable under every multiprocessing start method."""
    index, fn, kwargs = payload
    started = time.perf_counter()
    value = fn(**kwargs)
    return index, value, time.perf_counter() - started


def atomic_write_text(path, text):
    """Write ``text`` to ``path`` via temp file + rename, so a crashed
    writer never leaves a truncated file behind."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-", suffix="~")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _cache_path(cache_dir, key):
    return os.path.join(cache_dir, key + ".json")


def _cache_load(cache_dir, cell):
    if cache_dir is None or not cell.cache:
        return None
    path = _cache_path(cache_dir, cell.key)
    try:
        with open(path) as handle:
            entry = json.load(handle)
    except (OSError, ValueError):
        return None
    if entry.get("key") != cell.key:
        return None
    # Count the hit in the entry itself, so the cache directory records
    # how much each memoized cell has been worth.  Best-effort: a
    # read-only cache still serves hits, it just stops counting.
    entry["hits"] = entry.get("hits", 0) + 1
    try:
        atomic_write_text(path, json.dumps(entry))
    except OSError:
        pass
    return entry


def _cache_store(cache_dir, cell, value, seconds):
    if cache_dir is None or not cell.cache:
        return
    entry = {
        "key": cell.key,
        "fn": _qualified_name(cell.fn),
        "kwargs": cell.kwargs,
        "value": value,
        "seconds": seconds,
        "hits": 0,
    }
    atomic_write_text(_cache_path(cache_dir, cell.key), json.dumps(entry))


def summarize(results):
    """Aggregate a ``run_cells`` result list for reporting.

    ``compute_seconds`` is wall time actually spent this run;
    ``saved_seconds`` is the recorded cost of the cells the cache
    answered instead (what a cold run would have added).
    """
    cached = [r for r in results if r.cached]
    computed = [r for r in results if not r.cached]
    return {
        "cells": len(results),
        "cached": len(cached),
        "computed": len(computed),
        "compute_seconds": sum(r.seconds for r in computed),
        "saved_seconds": sum(r.seconds for r in cached),
    }


def _fork_context():
    """The fork start method keeps bench-module callables picklable
    (children inherit the parent's modules); without it -- or inside a
    daemonic worker, which may not have children -- run serially."""
    if multiprocessing is None:
        return None
    try:
        if multiprocessing.current_process().daemon:
            return None
        return multiprocessing.get_context("fork")
    except ValueError:  # platform without fork
        return None


def run_cells(cells, workers=None, cache_dir=None, progress=None):
    """Run every cell, returning ``CellResult`` objects in submission
    order.

    - ``workers``: process count; defaults to ``os.cpu_count()``
      capped at the number of uncached cells.  ``workers <= 1`` (or an
      unavailable fork context) runs in-process.
    - ``cache_dir``: directory for the result cache; ``None`` disables
      caching entirely (:func:`default_cache_dir` is the conventional
      location, but opting in is explicit).
    - ``progress``: optional callable invoked with each
      :class:`CellResult` as it is collected (submission order).
    """
    cells = list(cells)
    results = [None] * len(cells)
    pending = []
    for index, cell in enumerate(cells):
        entry = _cache_load(cache_dir, cell)
        if entry is not None:
            results[index] = CellResult(
                index, cell.key, entry["value"], True,
                entry.get("seconds", 0.0),
            )
            if progress is not None:
                progress(results[index])
        else:
            pending.append(index)

    if pending:
        if workers is None:
            workers = os.cpu_count() or 1
        workers = max(1, min(workers, len(pending)))
        context = _fork_context() if workers > 1 else None

        def _finish(index, value, seconds):
            cell = cells[index]
            _cache_store(cache_dir, cell, value, seconds)
            results[index] = CellResult(index, cell.key, value, False, seconds)
            if progress is not None:
                progress(results[index])

        if context is None or workers == 1:
            for index in pending:
                _finish(*_invoke((index, cells[index].fn, cells[index].kwargs)))
        else:
            pool = context.Pool(processes=workers)
            try:
                handles = [
                    pool.apply_async(
                        _invoke, ((index, cells[index].fn, cells[index].kwargs),)
                    )
                    for index in pending
                ]
                for handle in handles:
                    _finish(*handle.get())
            finally:
                pool.close()
                pool.join()
    return results
