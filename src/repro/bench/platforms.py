"""Platform configurations: the paper's source/target systems.

A Platform bundles device, cache size, scheduler, file-system
personality, and OS flavor, and can manufacture a fresh
engine+stack+VFS triple.  The section 5.2.2 matrix uses seven target
configurations: ext4/ext3/JFS/XFS on a disk, plus RAID-0, a
small-cache machine, and an SSD.
"""

from repro.sim import Engine
from repro.storage import HDD, RAID0, SSD, StorageStack
from repro.vfs import FileSystem

GB = 1 << 30


class Platform(object):
    def __init__(
        self,
        name,
        device_factory,
        cache_bytes=4 * GB,
        scheduler="cfq",
        scheduler_kwargs=None,
        fs_profile="ext4",
        os_flavor="linux",
    ):
        self.name = name
        self.device_factory = device_factory
        self.cache_bytes = cache_bytes
        self.scheduler = scheduler
        self.scheduler_kwargs = dict(scheduler_kwargs or {})
        self.fs_profile = fs_profile
        self.os_flavor = os_flavor

    def make_fs(self, seed=0, obs=None, faults=None, tracker=None):
        """A fresh engine+stack+VFS triple.

        ``obs`` optionally attaches a :class:`~repro.obs.Observability`
        context before the stack is built, so storage-level
        instrumentation is live from the first request (components
        discover the context at construction time).  ``faults`` and
        ``tracker`` optionally attach a fault injector and durability
        tracker (:mod:`repro.faults`) the same way.
        """
        engine = Engine(seed, obs=obs)
        stack = StorageStack(
            engine,
            self.device_factory(),
            self.cache_bytes,
            fs_profile=self.fs_profile,
            scheduler=self.scheduler,
            scheduler_kwargs=self.scheduler_kwargs,
        )
        if faults is not None:
            stack.attach_faults(faults)
        if tracker is not None:
            stack.attach_tracker(tracker)
        return FileSystem(engine, stack, self.os_flavor)

    def variant(self, name=None, **overrides):
        """A copy with some fields overridden (e.g. slice_sync sweeps)."""
        fields = {
            "device_factory": self.device_factory,
            "cache_bytes": self.cache_bytes,
            "scheduler": self.scheduler,
            "scheduler_kwargs": dict(self.scheduler_kwargs),
            "fs_profile": self.fs_profile,
            "os_flavor": self.os_flavor,
        }
        fields.update(overrides)
        return Platform(name or self.name, **fields)

    def __repr__(self):
        return "<Platform %s>" % self.name


#: The macrobenchmark matrix (section 5.2.2): "various file systems
#: (ext4, ext3, JFS, and XFS) and hardware configurations (HDD, 2-disk
#: RAID 0, small cache, and SSD)".
PLATFORMS = {
    "hdd-ext4": Platform("hdd-ext4", HDD, fs_profile="ext4"),
    "hdd-ext3": Platform("hdd-ext3", HDD, fs_profile="ext3"),
    "hdd-xfs": Platform("hdd-xfs", HDD, fs_profile="xfs"),
    "hdd-jfs": Platform("hdd-jfs", HDD, fs_profile="jfs"),
    "raid0": Platform("raid0", lambda: RAID0(2), fs_profile="ext4"),
    # The paper pins 2.5 GB of a 4 GB machine, "leaving only 1.5GB for
    # the cache and other OS needs"; the page cache's effective share
    # is roughly a third of that once the OS takes its part.
    "smallcache": Platform(
        "smallcache", HDD, cache_bytes=GB // 2, fs_profile="ext4"
    ),
    "ssd": Platform("ssd", SSD, scheduler="fifo", fs_profile="ext4"),
    # Source platform for Magritte-style traces.
    "mac-hdd": Platform("mac-hdd", HDD, os_flavor="darwin", fs_profile="ext4"),
    "mac-ssd": Platform(
        "mac-ssd", SSD, scheduler="fifo", os_flavor="darwin", fs_profile="ext4"
    ),
    # The paper's other replay targets ("supporting replay on Linux,
    # Mac OS X, FreeBSD, and Illumos").  File-system personalities are
    # approximations: UFS/ZFS journaling costs modeled with the nearest
    # existing profile.
    "freebsd-hdd": Platform(
        "freebsd-hdd", HDD, os_flavor="freebsd", fs_profile="jfs"
    ),
    "illumos-hdd": Platform(
        "illumos-hdd", HDD, os_flavor="illumos", fs_profile="xfs"
    ),
}
