"""Experiment harness: platforms, trace/replay drivers, and table
formatting used by the ``benchmarks/`` suite to regenerate every table
and figure from the paper."""

from repro.bench.platforms import PLATFORMS, Platform
from repro.bench.harness import (
    ground_truth_run,
    replay_benchmark,
    replay_matrix,
    trace_application,
)

__all__ = [
    "Platform",
    "PLATFORMS",
    "trace_application",
    "ground_truth_run",
    "replay_benchmark",
    "replay_matrix",
]
