"""Experiment harness: platforms, trace/replay drivers, and table
formatting used by the ``benchmarks/`` suite to regenerate every table
and figure from the paper."""

from repro.bench.platforms import PLATFORMS, Platform
from repro.bench.faultmatrix import fault_matrix, fault_plan
from repro.bench.harness import (
    ground_truth_run,
    replay_benchmark,
    replay_matrix,
    trace_application,
)
from repro.bench.parallel import Cell, CellResult, run_cells

__all__ = [
    "Platform",
    "PLATFORMS",
    "trace_application",
    "ground_truth_run",
    "replay_benchmark",
    "replay_matrix",
    "Cell",
    "CellResult",
    "run_cells",
    "fault_matrix",
    "fault_plan",
]
