"""Trace/replay experiment drivers.

The standard experiment shape (paper section 5.2):

1. run the application on the *source* platform with tracing on;
2. run the application on the *target* platform (ground truth);
3. compile the trace and replay it on the target under each mode;
4. compare replay elapsed time to ground truth (timing error) and
   replay results to trace results (semantic failures).
"""

from repro.artc.compiler import compile_trace
from repro.artc.init import initialize
from repro.artc.replayer import ReplayConfig, replay
from repro.artc.report import timing_error
from repro.core.modes import ReplayMode
from repro.tracing.snapshot import Snapshot
from repro.tracing.tracer import TracedOS


class TraceResult(object):
    def __init__(self, trace, snapshot, elapsed, app):
        self.trace = trace
        self.snapshot = snapshot
        self.elapsed = elapsed
        self.app = app


def trace_application(app, platform, seed=0, warm_cache=False):
    """Run ``app`` on ``platform`` with passive tracing.

    Returns a :class:`TraceResult` carrying the trace, the pre-run
    snapshot (captured before the app runs, as ARTC requires), and the
    traced run's elapsed time.
    """
    fs = platform.make_fs(seed)
    app.setup(fs)
    snapshot = Snapshot.capture(
        fs,
        roots=app.roots,
        include_xattrs=getattr(app, "snapshot_xattrs", True),
        label=app.name,
    )
    if not warm_cache:
        fs.stack.drop_caches()
    osapi = TracedOS(fs)
    trace = osapi.start_tracing(label=app.name, platform=platform.os_flavor)
    elapsed = fs.engine.run_process(app.main(osapi), name="%s-main" % app.name)
    # Records stay in completion order (what strace emits): descriptor
    # numbers are assigned at completion, so that order keeps fd
    # generations consistent.  The rare inversions this leaves (e.g. a
    # failed O_EXCL open completing before its creator) are the same
    # trace ambiguities the paper reports working around.
    return TraceResult(trace, snapshot, elapsed, app)


def ground_truth_run(app, platform, seed=0, warm_cache=False):
    """The application's real elapsed time on ``platform``."""
    fs = platform.make_fs(seed)
    app.setup(fs)
    if not warm_cache:
        fs.stack.drop_caches()
    osapi = TracedOS(fs)  # untraced: no trace attached
    return fs.engine.run_process(app.main(osapi), name="%s-truth" % app.name)


def replay_benchmark(
    benchmark,
    platform,
    mode=ReplayMode.ARTC,
    seed=0,
    timing="afap",
    jitter=0.0,
    warm_cache=False,
    emulation=None,
):
    """Initialize a fresh target and replay ``benchmark`` on it."""
    fs = platform.make_fs(seed)
    if benchmark.snapshot is not None:
        initialize(fs, benchmark.snapshot)
    if not warm_cache:
        fs.stack.drop_caches()
    kwargs = {"mode": mode, "timing": timing, "jitter": jitter}
    if emulation is not None:
        kwargs["emulation"] = emulation
    return replay(benchmark, fs, ReplayConfig(**kwargs))


def profile_benchmark(
    benchmark,
    platform,
    mode=ReplayMode.ARTC,
    seed=0,
    timing="afap",
    warm_cache=False,
    reduced_deps=True,
    emulation=None,
):
    """Replay ``benchmark`` under full instrumentation.

    Like :func:`replay_benchmark`, but attaches an
    :class:`~repro.obs.Observability` (metrics + spans) to the target's
    engine and computes the critical path of the replay over the
    dependencies the chosen mode actually enforced, weighted by the
    latencies this run measured.  Returns ``(report, obs, critpath)``.
    """
    from repro.obs import Observability, replay_critical_path

    obs = Observability()
    fs = platform.make_fs(seed, obs=obs)
    if benchmark.snapshot is not None:
        initialize(fs, benchmark.snapshot)
    if not warm_cache:
        fs.stack.drop_caches()
    kwargs = {"mode": mode, "timing": timing, "reduced_deps": reduced_deps}
    if emulation is not None:
        kwargs["emulation"] = emulation
    report = replay(benchmark, fs, ReplayConfig(**kwargs))
    critpath = replay_critical_path(
        benchmark, report, mode=mode, reduced=reduced_deps
    )
    return report, obs, critpath


def replay_matrix(
    app,
    source,
    target,
    modes=(ReplayMode.SINGLE, ReplayMode.TEMPORAL, ReplayMode.ARTC),
    seed=0,
    timing="afap",
    ruleset=None,
    warm_cache=False,
    artifact_cache=None,
):
    """The standard accuracy experiment for one source/target pair.

    Returns a dict with the original's target elapsed time and, per
    mode, the replay elapsed time and signed/absolute error.

    ``artifact_cache`` short-circuits the trace+compile through the
    content-addressed ``.artcb`` store (:mod:`repro.bench.artifacts`):
    pass a cache (or ``True`` for the default one) and every cell
    sharing this (app, source, seed, ruleset) reuses one compiled
    benchmark.  The default ``None`` consults the cache only when
    ``$ARTC_ARTIFACT_DIR`` opts the process in; ``False`` disables it.
    """
    from repro.bench import artifacts

    # Distinct seeds per run: separate boots of a machine do not share
    # device state (rotational phase), so the traced run, the ground
    # truth, and each replay get their own.
    cache = artifacts.resolve(artifact_cache)
    artifact_info = None
    if cache is not None:
        benchmark, artifact_info = cache.get_or_build(
            app, source, seed, ruleset=ruleset, warm_cache=warm_cache
        )
        source_elapsed = benchmark.stats.get("source_elapsed", 0.0)
        trace_events = benchmark.stats.get("trace_events", len(benchmark))
    else:
        traced = trace_application(app, source, seed, warm_cache=warm_cache)
        benchmark = compile_trace(traced.trace, traced.snapshot, ruleset=ruleset)
        source_elapsed = traced.elapsed
        trace_events = len(traced.trace)
    original = ground_truth_run(app, target, seed + 101, warm_cache=warm_cache)
    rows = {}
    for index, mode in enumerate(modes):
        report = replay_benchmark(
            benchmark, target, mode, seed + 202 + index, timing,
            warm_cache=warm_cache,
        )
        rows[mode] = {
            "elapsed": report.elapsed,
            "error": timing_error(report.elapsed, original),
            "signed_error": (report.elapsed - original) / original if original else 0.0,
            "failures": report.failures,
            "report": report,
        }
    result = {
        "app": app.name,
        "source": source.name,
        "target": target.name,
        "original": original,
        "source_elapsed": source_elapsed,
        "trace_events": trace_events,
        "modes": rows,
        "benchmark": benchmark,
    }
    if artifact_info is not None:
        result["artifact"] = artifact_info
    return result


def matrix_summary(result):
    """A JSON-serializable view of a :func:`replay_matrix` result.

    Drops the live ``report`` / ``benchmark`` objects but keeps every
    number the paper's tables consume, so matrix cells can cross
    process boundaries and live in the parallel harness's disk cache
    (:mod:`repro.bench.parallel`).
    """
    out = {k: v for k, v in result.items() if k not in ("modes", "benchmark")}
    out["compile_stats"] = dict(result["benchmark"].stats)
    out["modes"] = {
        mode: {
            "elapsed": row["elapsed"],
            "error": row["error"],
            "signed_error": row["signed_error"],
            "failures": row["failures"],
            "warnings": len(row["report"].warnings),
        }
        for mode, row in result["modes"].items()
    }
    return out
