"""Content-addressed cache of compiled-benchmark artifacts.

Tracing and compiling a Magritte application is the expensive half of
every experiment cell; the replays themselves are cheap by comparison.
Yet cells that differ only in target platform, replay mode, or timing
policy all share the same (app, source, seed, ruleset) tuple -- the
same trace, the same compiled benchmark.  This cache files that
benchmark once, as an ``.artcb`` artifact (:mod:`repro.artc.artifact`)
named by a content hash of exactly those inputs, and every later cell
loads it instead of re-tracing.

The key is salted with :data:`repro.bench.parallel.BENCH_FORMAT_VERSION`
and the artifact format version, so artifacts written by an older
benchmark format can never be served to a newer one -- bump the
version when trace or compile semantics change.

``$ARTC_ARTIFACT_DIR`` names the cache directory and, when set, also
switches the cache on for :func:`repro.bench.harness.replay_matrix`
callers that did not pass one explicitly (the bench suite sets it in
``benchmarks/conftest.py``).  Without the variable the default
location is ``<default_cache_dir()>/artifacts``.

Alongside each ``<key>.artcb`` sits a ``<key>.json`` sidecar with
build provenance, mirroring the result cache's bookkeeping: the cache
directory itself records how often each compile was reused.  Hits are
journaled to a ``<key>.hits`` file with one ``O_APPEND`` byte per hit
-- a single-byte append is atomic on POSIX, so concurrent processes
(the ``artc serve`` worker pool is exactly that) never lose counts and
a crash mid-bump never corrupts the sidecar.  :meth:`ArtifactCache.
durable_hits` totals the journal plus any legacy ``hits`` field left
in old sidecars.
"""

import json
import os

from repro.artc import artifact
from repro.bench.parallel import (
    BENCH_FORMAT_VERSION,
    atomic_write_text,
    default_cache_dir,
)
from repro.core.modes import RuleSet


def default_artifact_dir():
    """``$ARTC_ARTIFACT_DIR`` or ``<default_cache_dir()>/artifacts``."""
    env = os.environ.get("ARTC_ARTIFACT_DIR")
    if env:
        return env
    return os.path.join(default_cache_dir(), "artifacts")


def describe_app(app):
    """The identity an application contributes to an artifact key."""
    return {"name": app.name, "class": type(app).__qualname__}


def describe_platform(platform):
    """Every platform field that shapes a traced run.  ``variant()``
    copies can share a name, so the name alone is not identifying."""
    factory = platform.device_factory
    return {
        "name": platform.name,
        "device": getattr(factory, "__qualname__", None) or repr(factory),
        "cache_bytes": platform.cache_bytes,
        "scheduler": platform.scheduler,
        "scheduler_kwargs": platform.scheduler_kwargs,
        "fs_profile": platform.fs_profile,
        "os_flavor": platform.os_flavor,
    }


def describe_ruleset(ruleset):
    """The effective compile ruleset (``None`` means the ARTC default)."""
    if ruleset is None:
        ruleset = RuleSet.artc_default()
    return {flag: getattr(ruleset, flag) for flag in RuleSet.__slots__}


def artifact_key(app, source, seed=0, ruleset=None, warm_cache=False):
    """Content hash identifying one trace+compile."""
    import hashlib

    payload = json.dumps(
        {
            "bench_format": BENCH_FORMAT_VERSION,
            "artifact_format": artifact.FORMAT_VERSION,
            "app": describe_app(app),
            "source": describe_platform(source),
            "seed": seed,
            "ruleset": describe_ruleset(ruleset),
            "warm_cache": bool(warm_cache),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ArtifactCache(object):
    """On-disk ``.artcb`` store keyed by :func:`artifact_key`.

    ``hits`` / ``misses`` / ``stores`` count this process's traffic;
    the per-artifact sidecars accumulate hits durably across runs.
    """

    def __init__(self, root=None):
        self.root = root or default_artifact_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path_for(self, key):
        return os.path.join(self.root, key + ".artcb")

    def _sidecar(self, key):
        return os.path.join(self.root, key + ".json")

    def _journal(self, key):
        return os.path.join(self.root, key + ".hits")

    def get(self, key):
        """The cached benchmark for ``key``, or ``None``.  A missing,
        truncated, corrupted, or version-mismatched artifact is a miss
        (the next :meth:`put` overwrites it)."""
        path = self.path_for(key)
        try:
            benchmark = artifact.load(path)
        except (OSError, artifact.ArtifactError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        self.record_hit(key)
        return benchmark

    def put(self, key, benchmark, meta=None):
        """File ``benchmark`` under ``key``; returns the artifact path."""
        os.makedirs(self.root, exist_ok=True)
        path = self.path_for(key)
        artifact.save(benchmark, path)
        entry = {"key": key}
        entry.update(meta or {})
        try:
            atomic_write_text(self._sidecar(key), json.dumps(entry))
            # A rebuild starts the hit count over: the artifact the old
            # journal counted no longer exists.
            try:
                os.unlink(self._journal(key))
            except FileNotFoundError:
                pass
        except OSError:
            pass
        self.stores += 1
        return path

    def record_hit(self, key):
        """Durably count one reuse of ``key``.

        One ``O_APPEND`` byte per hit: atomic under concurrency (no
        read-modify-write window for parallel serve workers to race)
        and crash-safe (a torn append of a single byte is impossible).
        Best-effort, like the result cache: a read-only cache still
        serves hits, it just stops counting.
        """
        try:
            fd = os.open(
                self._journal(key), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            try:
                os.write(fd, b"+")
            finally:
                os.close(fd)
        except OSError:
            pass

    def durable_hits(self, key):
        """Total recorded reuses of ``key`` across every process that
        ever served it: the hit journal, plus the legacy ``hits`` field
        of sidecars written before the journal existed."""
        total = 0
        try:
            total += os.path.getsize(self._journal(key))
        except OSError:
            pass
        try:
            with open(self._sidecar(key)) as handle:
                total += int(json.load(handle).get("hits", 0))
        except (OSError, ValueError):
            pass
        return total

    def get_or_build(self, app, source, seed=0, ruleset=None, warm_cache=False):
        """The compiled benchmark for (app, source, seed, ruleset),
        tracing and compiling only on a miss.

        Returns ``(benchmark, info)`` where ``info`` records the key,
        whether the artifact was reused, and the file it lives in.  On
        a build, the traced run's elapsed time and event count are
        stashed into ``benchmark.stats`` (``source_elapsed``,
        ``trace_events``) so cache hits can serve them without
        re-tracing.
        """
        key = artifact_key(app, source, seed, ruleset, warm_cache)
        benchmark = self.get(key)
        if benchmark is not None:
            return benchmark, {"key": key, "cached": True, "path": self.path_for(key)}
        from repro.artc.compiler import compile_trace
        from repro.bench.harness import trace_application

        traced = trace_application(app, source, seed, warm_cache=warm_cache)
        benchmark = compile_trace(traced.trace, traced.snapshot, ruleset=ruleset)
        benchmark.stats["source_elapsed"] = traced.elapsed
        benchmark.stats["trace_events"] = len(traced.trace)
        path = self.put(key, benchmark, meta={"app": app.name, "source": source.name})
        return benchmark, {"key": key, "cached": False, "path": path}

    def stats(self):
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}

    def __repr__(self):
        return "<ArtifactCache %s: %d hits, %d misses, %d stores>" % (
            self.root, self.hits, self.misses, self.stores,
        )


_default = None


def get_default_cache():
    """The process-wide cache at :func:`default_artifact_dir`."""
    global _default
    if _default is None or _default.root != default_artifact_dir():
        _default = ArtifactCache()
    return _default


def resolve(artifact_cache):
    """Resolve a caller's ``artifact_cache`` argument.

    - an :class:`ArtifactCache`: used as-is;
    - ``True``: the default cache;
    - ``False``: no caching;
    - ``None`` (the usual default): the default cache *if*
      ``$ARTC_ARTIFACT_DIR`` opts this process in, else no caching.
    """
    if artifact_cache is None:
        if os.environ.get("ARTC_ARTIFACT_DIR"):
            return get_default_cache()
        return None
    if artifact_cache is True:
        return get_default_cache()
    if artifact_cache is False:
        return None
    return artifact_cache
