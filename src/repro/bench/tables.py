"""Plain-text table/series rendering for benchmark output."""


def format_table(headers, rows, title=None):
    """Render rows (lists of cells) as an aligned text table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(title, pairs, value_format="%.3f"):
    """Render an (x, y) series as aligned text (for 'figures')."""
    lines = [title]
    for x, y in pairs:
        lines.append("  %-24s %s" % (x, value_format % y))
    return "\n".join(lines)


def percent(value):
    return "%+.1f%%" % (value * 100.0)


def cdf(values):
    """Return (value, fraction<=value) pairs for a CDF plot."""
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


def percentile(values, fraction):
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]
